"""Repo-wide pytest configuration.

``VASE_EXPLOG`` smoke mode: when the environment variable is set, the
whole suite runs with a process-wide exploration recorder active, so
every synthesis run in every test exercises the instrumented decision
paths (CI uses this to prove the explog layer stays healthy under
load).  Set it to ``1`` to record in memory, or to a path ending in
``.jsonl`` to also stream the events to disk.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _no_default_ledger(monkeypatch):
    """Keep test runs from appending to a ``.vase-ledger/`` in the cwd.

    The CLI's run ledger is on by default; tests that want one pass an
    explicit ``--ledger`` path (which overrides the environment).
    """
    monkeypatch.setenv("VASE_LEDGER", "off")


@pytest.fixture
def fault_injector():
    """Deterministic fault injection with guaranteed teardown.

    Yields a :class:`repro.robust.faultinject.FaultInjector`; any sites
    still armed when the test ends (including on failure) are cleared so
    no fault leaks into the rest of the suite.
    """
    from repro.robust.faultinject import pytest_fixture

    yield from pytest_fixture()


class _BoundedLog:
    """Session-wide recorder that trims its in-memory buffer.

    The suite performs thousands of synthesis runs; streaming keeps the
    full record on disk while the in-memory event list stays bounded.
    """

    LIMIT = 20_000

    @staticmethod
    def make(stream):
        from repro.instrument import ExplorationLog

        class Bounded(ExplorationLog):
            def emit(self, event, **fields):
                record = super().emit(event, **fields)
                if len(self.events) > _BoundedLog.LIMIT:
                    del self.events[: _BoundedLog.LIMIT // 2]
                return record

        return Bounded(stream=stream)


@pytest.fixture(scope="session", autouse=True)
def _explog_smoke():
    target = os.environ.get("VASE_EXPLOG")
    if not target:
        yield
        return
    from repro.instrument import disable_explog, enable_explog

    handle = None
    if target != "1" and target.endswith(".jsonl"):
        handle = open(target, "w", encoding="utf-8")
    enable_explog(_BoundedLog.make(handle))
    try:
        yield
    finally:
        disable_explog()
        if handle is not None:
            handle.close()
