"""Mismatch yield analysis and the markdown design report.

Run with::

    python examples/yield_report.py

Synthesizes the receiver, runs a Monte-Carlo component-mismatch
analysis at several matching grades (the classic precision-vs-cost
knob of analog layout), and prints the generated design report.
"""

import math

from repro.apps import receiver
from repro.estimation import mismatch_analysis
from repro.flow import synthesize
from repro.report import generate_report
from repro.spice import sin_wave
from repro.verify import verify_equivalence


def main() -> None:
    result = synthesize(receiver.VASS_SOURCE)

    inputs = {
        "line": lambda t: 0.5 * math.sin(2 * math.pi * 1e3 * t),
        "local": lambda t: 0.1,
    }

    print("Monte-Carlo mismatch analysis (50 trials per grade):")
    for grade, tolerance in (
        ("precision (0.1 %)", 0.001),
        ("matched   (1 %)", 0.01),
        ("loose     (5 %)", 0.05),
        ("untrimmed (20 %)", 0.20),
    ):
        report = mismatch_analysis(
            result,
            inputs=inputs,
            tolerance=tolerance,
            n_trials=50,
            error_budget=0.05,
        )
        bar = "#" * int(report.yield_fraction * 40)
        print(f"  {grade:<18} {report.yield_fraction*100:5.0f} %  {bar}")

    verification = verify_equivalence(
        result, inputs=inputs, t_end=1e-3, tolerance=0.10
    )

    print()
    print(
        generate_report(
            result,
            title="telephone receiver",
            verification=verification,
            include_spice=False,
        )
    )


if __name__ == "__main__":
    main()
