"""Synthesize and scope the ramp-signal function generator.

Run with::

    python examples/function_generator_scope.py

The specification (after Grimm/Waldschmidt [6]) describes a triangle
oscillator behaviorally: an integrator slews between two thresholds and
an event-driven process flips the slope.  The flow realizes the control
FSM as a Schmitt trigger — "1 integ., 1 MUX, 1 Schmitt trigger" in the
paper's Table 1 — and the behavioral simulation shows the oscillation.
"""

import numpy as np

from repro.apps import function_generator as fgen
from repro.spice import waveform
from repro.vhif import Interpreter


def main() -> None:
    result = fgen.synthesize_function_generator()
    print(result.describe())
    print()
    print(result.netlist.describe())

    interp = Interpreter(result.design, dt=1e-6)
    traces = interp.run(5e-3, probes=["ramp"])
    ramp = traces["ramp"]

    measured = waveform.fundamental_frequency(traces.time, ramp)
    expected = 1.0 / fgen.expected_period()
    print(f"\nramp swing: {ramp.min():+.3f} V .. {ramp.max():+.3f} V "
          f"(thresholds {fgen.V_LOW:+.1f} / {fgen.V_HIGH:+.1f})")
    print(f"oscillation: measured {measured:.0f} Hz, ideal {expected:.0f} Hz")

    # A coarse terminal rendering of one period.
    period_samples = int(fgen.expected_period() / 1e-6)
    segment = ramp[-2 * period_samples:]
    width = 64
    for row in range(10, -1, -1):
        level = fgen.V_LOW + (fgen.V_HIGH - fgen.V_LOW) * row / 10
        line = "".join(
            "*"
            if abs(segment[int(i / width * (len(segment) - 1))] - level)
            < 0.12
            else " "
            for i in range(width)
        )
        print(f"{level:+5.1f} |{line}")


if __name__ == "__main__":
    main()
