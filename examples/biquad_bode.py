"""Synthesize a biquad filter from DAEs and plot its Bode response.

Run with::

    python examples/biquad_bode.py

Demonstrates the filter use case the paper's Section 3 motivates: the
state-variable equations of a 1 kHz Butterworth low-pass compile into a
two-integrator loop, map onto summing integrators, and the synthesized
circuit's AC response (from the MNA substrate's ``.AC`` analysis)
matches the ideal transfer function.
"""

import numpy as np

from repro.apps import biquad_filter
from repro.spice import ac_sweep, dc, elaborate


def main() -> None:
    result = biquad_filter.synthesize_biquad()
    print(result.describe())
    print()
    print(result.netlist.describe())

    circuit = elaborate(result.netlist, input_waves={"vin": dc(0.0)})
    out = circuit.output_nodes["vlp"]
    response = ac_sweep(
        circuit.circuit, 10.0, 100e3, points_per_decade=10,
        probes=[out], ac_source="VIN_vin",
    )

    print("\nBode magnitude (synthesized circuit vs ideal H(s)):")
    print(f"{'f [Hz]':>10} {'measured [dB]':>14} {'ideal [dB]':>11}  ")
    bars_scale = 2.0  # dB per character
    for f, v in zip(response.frequencies, response.voltages[out]):
        measured_db = 20 * np.log10(max(abs(v), 1e-12))
        ideal_db = 20 * np.log10(
            max(biquad_filter.reference_magnitude(float(f)), 1e-12)
        )
        bar = "#" * max(0, int((measured_db + 60) / bars_scale))
        print(f"{f:>10.1f} {measured_db:>14.2f} {ideal_db:>11.2f}  {bar}")

    f3db = response.cutoff_frequency(out)
    print(f"\n-3 dB corner: {f3db:.1f} Hz "
          f"(specified f0 = {biquad_filter.F0_HZ:.0f} Hz)")


if __name__ == "__main__":
    main()
