"""The missile equation solver: nonlinear DAEs on an analog computer.

Run with::

    python examples/missile_trajectory.py

Shows the part of the paper most unlike digital synthesis: a set of
*implicit* differential-algebraic equations is causalized symbolically
(integral causality for the states, path inversion for the drag law) and
emitted as an integrator/log/antilog signal-flow structure, then mapped
to "2 integ., 1 anti-log.amplif., ... 1 log.amplif." of library
components.  The compiled solver's trajectory is compared against a
plain numerical integration of the same equations.
"""

from repro.apps import missile_solver as ms
from repro.compiler import enumerate_solvers
from repro.vhif import Interpreter


def main() -> None:
    result = ms.synthesize_missile_solver()
    print(result.describe())
    print()
    print(result.netlist.describe())

    # The DAE set admits multiple causalizations ("solvers"); show them.
    solvers = enumerate_solvers(ms.VASS_SOURCE)
    print(f"\n{len(solvers)} DAE causalization(s) found:")
    for index, solver in enumerate(solvers):
        print(f"solver {index}:")
        print(solver.describe())

    # Fly the missile: compiled signal-flow solver vs direct integration.
    thrust = 3.0
    interp = Interpreter(result.design, dt=1e-3,
                         inputs={"thrust": lambda t: thrust})
    traces = interp.run(2.0, probes=["vel", "alt"])
    v_ref, h_ref = ms.reference_trajectory(thrust, 2.0, 1e-3)
    print(f"\nafter 2 s at thrust={thrust}:")
    print(f"  velocity: synthesized {traces.final('vel'):+.4f}  "
          f"reference {v_ref:+.4f}")
    print(f"  altitude: synthesized {traces.final('alt'):+.4f}  "
          f"reference {h_ref:+.4f}")


if __name__ == "__main__":
    main()
