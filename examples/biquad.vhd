-- Second-order low-pass filter, state-variable form.
ENTITY biquad_filter IS
PORT (
  QUANTITY vin : IN real IS voltage FREQUENCY 0.0 TO 1000.0
                 RANGE -1.0 TO 1.0;
  QUANTITY vlp : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE state_variable OF biquad_filter IS
  CONSTANT w0 : real := 6283.185307;
  CONSTANT q  : real := 0.707;
  QUANTITY xbp : real := 0.0;  -- band-pass state
  QUANTITY xlp : real := 0.0;  -- low-pass state
BEGIN
  xbp'dot == w0 * (vin - xbp / q - xlp);
  xlp'dot == w0 * xbp;
  vlp == xlp;
END ARCHITECTURE;
