"""Exploring the design space: constraints and custom libraries.

Run with::

    python examples/custom_library_constraints.py

The architecture generator searches for the minimum-area netlist *that
satisfies all imposed performance constraints*.  This example shows the
two levers a user has:

1. tightening the constraint set — a high bandwidth requirement makes
   the single-op-amp high-gain amplifier infeasible, so the mapper's
   functional transformation (cascade of two lower-gain stages) wins;
2. swapping the component library — removing a component class forces
   different coverings.
"""

from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, synthesize
from repro.library import ComponentLibrary, default_library

SOURCE = """
ENTITY gain_block IS
PORT (
  QUANTITY vin  : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE behavioral OF gain_block IS
  CONSTANT gain : real := -40.0;
BEGIN
  vout == gain * vin;
END ARCHITECTURE;
"""


def run(label: str, options: FlowOptions, library=None) -> None:
    result = synthesize(SOURCE, options=options, library=library)
    instances = ", ".join(
        f"{inst.spec.name}"
        + (f"[{inst.transform}]" if inst.transform else "")
        for inst in result.netlist.instances
    )
    print(f"{label}:")
    print(f"  {instances}")
    print(f"  {result.estimate.describe()}")


def main() -> None:
    # Relaxed constraints: one inverting amplifier suffices.
    relaxed = FlowOptions(constraints=ConstraintSet(
        signal_bandwidth_hz=5.0e3))
    run("relaxed (5 kHz band)", relaxed)

    # Demanding bandwidth: gain 40 at 200 kHz would need an 80 MHz op
    # amp — beyond the 2 µm process; the cascade transformation splits
    # the gain across two op amps of ~13 MHz each.
    demanding = FlowOptions(constraints=ConstraintSet(
        signal_bandwidth_hz=200.0e3))
    run("demanding (200 kHz band)", demanding)

    # Custom library without the cascade: the estimator rejects the
    # one-op-amp mapping under the same constraints and synthesis fails
    # feasibly only if something else can cover the block.
    stripped = ComponentLibrary(
        [s for s in default_library().specs() if s.name != "inverting_cascade"],
        name="no-cascade",
    )
    try:
        run("demanding, library without cascades", demanding, library=stripped)
    except Exception as err:  # noqa: BLE001 - demonstration output
        print("demanding, library without cascades:")
        print(f"  synthesis fails as expected: {err}")


if __name__ == "__main__":
    main()
