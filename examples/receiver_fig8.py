"""The paper's flagship experiment: the telephone receiver (Figures 7 & 8).

Run with::

    python examples/receiver_fig8.py

Synthesizes the Figure-2 receiver specification down to an op-amp-level
netlist (Figure 7b), prints the generated SPICE deck, then simulates the
circuit with a deliberately high-amplitude input — as the paper does —
to show the output-stage limiting: the earphone signal clips at 1.5 V
(Figure 8's v(9)).
"""

import numpy as np

from repro.apps import receiver
from repro.spice import elaborate, sin_wave, to_spice_deck, waveform


def ascii_plot(t, v, width=72, height=14, label=""):
    """Tiny ASCII oscilloscope for terminal output."""
    lo, hi = float(np.min(v)), float(np.max(v))
    span = (hi - lo) or 1.0
    rows = [[" "] * width for _ in range(height)]
    for col in range(width):
        idx = int(col / width * (len(v) - 1))
        row = int((hi - v[idx]) / span * (height - 1))
        rows[row][col] = "*"
    print(f"--- {label} [{lo:+.2f} V .. {hi:+.2f} V] ---")
    for row in rows:
        print("".join(row))


def main() -> None:
    result = receiver.synthesize_receiver()
    print(result.describe())
    print()
    print(result.netlist.describe())
    print()
    print("SPICE deck:")
    print(to_spice_deck(result.netlist, title="receiver module"))

    # High-amplitude stimulus so the limiting is visible (paper: "We
    # deliberately considered an input signal with a high amplitude").
    line = sin_wave(1.0, 1000.0)
    circuit = elaborate(
        result.netlist,
        input_waves={"line": line, "local": lambda t: 0.1},
    )
    out = circuit.output_nodes["earph"]
    sim = circuit.transient(2e-3, 2e-6, probes=[out])
    v9 = sim[out]

    print()
    ascii_plot(sim.time, v9, label="v(9) = earph (clipped)")
    report = waveform.detect_clipping(v9)
    print(
        f"\nclipping: {'YES' if report.clipped else 'no'} at "
        f"{report.level:.3f} V "
        f"(paper: clipped at {receiver.LIMIT_LEVEL} V)"
    )


if __name__ == "__main__":
    main()
