"""Quickstart: synthesize a small analog system from VHDL-AMS.

Run with::

    python examples/quickstart.py

Writes a behavioral specification (a two-input weighted combiner with a
limited output), runs the complete VASE flow — compile to VHIF,
branch-and-bound architecture generation, performance estimation — and
simulates both the technology-independent representation and the
synthesized op-amp netlist to show they agree.
"""

import math

from repro import synthesize
from repro.spice import elaborate, sin_wave
from repro.vhif import Interpreter

SOURCE = """
ENTITY combiner IS
PORT (
  QUANTITY a : IN real IS voltage;
  QUANTITY b : IN real IS voltage;
  QUANTITY y : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;

ARCHITECTURE behavioral OF combiner IS
  CONSTANT ka : real := 3.0;
  CONSTANT kb : real := 0.5;
BEGIN
  y == ka * a + kb * b;
END ARCHITECTURE;
"""


def main() -> None:
    # 1. The whole flow in one call.
    result = synthesize(SOURCE)
    print(result.describe())
    print()
    print(result.netlist.describe())

    # 2. Execute the VHIF representation (the compiler's output).
    interp = Interpreter(
        result.design,
        dt=1e-6,
        inputs={
            "a": lambda t: 0.4 * math.sin(2 * math.pi * 1e3 * t),
            "b": lambda t: 0.2,
        },
    )
    traces = interp.run(2e-3, probes=["y"])
    print(f"\nbehavioral peak |y|: {abs(traces['y']).max():.3f} V")

    # 3. Simulate the synthesized netlist at circuit level (op-amp
    #    macromodels, resistor networks) and compare.
    circuit = elaborate(
        result.netlist,
        input_waves={
            "a": sin_wave(0.4, 1e3),
            "b": lambda t: 0.2,
        },
    )
    out_node = circuit.output_nodes["y"]
    sim = circuit.transient(2e-3, 2e-6, probes=[out_node])
    print(f"circuit    peak |y|: {abs(sim[out_node]).max():.3f} V")
    print("\nSynthesized from", len(SOURCE.splitlines()), "lines of VHDL-AMS.")


if __name__ == "__main__":
    main()
