"""Table 1: behavioral synthesis results for the 5 real-life applications.

Regenerates every row of the paper's Table 1: the VHIF statistics
(number of blocks, FSM states, data-path elements) and the synthesized
component list, comparing measured values against the published row.
Absolute structural counts depend on the authors' unpublished VASS
sources; the component *classes* are required to match exactly.
"""

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.flow import synthesize
from repro.instrument import metrics

from conftest import banner


def spec_stats(source: str):
    """VASS specification statistics (columns 2-5 of Table 1)."""
    lines = [line.strip() for line in source.splitlines()]
    continuous = sum(
        1 for line in lines if "==" in line and not line.startswith("--")
    )
    event = sum(
        1
        for line in lines
        if "<=" in line and not line.startswith("--") and "PORT" not in line
    )
    quantities = sum(1 for line in lines if line.upper().startswith("QUANTITY"))
    signals = sum(1 for line in lines if line.upper().startswith("SIGNAL"))
    return continuous, quantities, event, signals


def print_row(name, module, result):
    stats = result.design.statistics()
    paper = module.PAPER_ROW
    continuous, quantities, event, signals = spec_stats(module.VASS_SOURCE)
    print(f"\n{name}")
    print(
        f"  VASS spec      measured: ct={continuous} q={quantities} "
        f"ed={event} sig={signals} | paper: ct={paper['vass_continuous']} "
        f"q={paper['vass_quantities']} ed={paper['vass_event']} "
        f"sig={paper['vass_signals']}"
    )
    print(
        f"  VHIF           measured: blocks={stats.n_blocks} "
        f"states={stats.n_states} dp={stats.n_datapath} | paper: "
        f"blocks={paper['vhif_blocks']} states={paper['vhif_states']} "
        f"dp={paper['vhif_datapath']}"
    )
    print(f"  synthesized    {result.summary}")
    print(f"  paper          {paper['components']}")
    print(f"  estimate       {result.estimate.describe()}")


def run_app(name):
    module = ALL_APPLICATIONS[name]
    return module, synthesize(module.VASS_SOURCE)


@pytest.mark.parametrize("name", list(ALL_APPLICATIONS))
def test_table1_row(benchmark, name):
    module = ALL_APPLICATIONS[name]
    result = benchmark(lambda: synthesize(module.VASS_SOURCE))
    banner(f"Table 1 row: {name}")
    print_row(name, module, result)

    # Component-class assertions (the reproduction's acceptance bar).
    cats = dict(result.netlist.category_counts())
    if name == "receiver":
        assert cats["amplif."] == 2 and cats["zero-cross det."] == 1
    elif name == "power_meter":
        assert cats["zero-cross det."] == 2
        assert cats["S/H"] == 2 and cats["ADC"] == 2
    elif name == "missile_solver":
        assert cats["integ."] == 2 and cats["log.amplif."] == 1
        assert cats["anti-log.amplif."] == 1 and cats["amplif."] == 4
    elif name == "iterative_solver":
        assert cats["integ."] == 3 and cats["S/H"] == 1
        assert cats["diff. amplif."] == 1
    elif name == "function_generator":
        assert cats["integ."] == 1 and cats["MUX"] == 1
        assert cats["Schmitt trigger"] == 1


def test_table1_full(benchmark, bench_metrics):
    """The whole table in one run (the paper's experiment set)."""

    def run_all():
        return {
            name: synthesize(module.VASS_SOURCE)
            for name, module in ALL_APPLICATIONS.items()
        }

    results = benchmark(run_all)
    # The timed rounds above inflate the process-wide counters by a
    # machine-dependent round count; re-run once on a fresh registry so
    # the dumped snapshot (which ``vase bench-check`` gates against the
    # committed baselines) covers exactly one deterministic pass.
    metrics().reset()
    results = run_all()
    bench_metrics["search"] = {
        name: result.mapping.statistics.as_dict()
        for name, result in results.items()
    }
    banner("Table 1 (complete)")
    header = (
        f"{'Application':<20} {'blocks':>6} {'states':>6} {'datapath':>8}  "
        "Synthesis Results"
    )
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        stats = result.design.statistics()
        print(
            f"{name:<20} {stats.n_blocks:>6} {stats.n_states:>6} "
            f"{stats.n_datapath:>8}  {result.summary}"
        )
    assert len(results) == 5
    assert all(r.estimate.feasible for r in results.values())
