"""Figure 6: architecture synthesis with branch-and-bound.

Reproduces the paper's decision-tree example: a small weighted-sum
signal-flow graph mapped with a pattern library containing

* ``comp1`` — a block structure amplifying one input by k and adding a
  second input (one op amp);
* ``comp2`` — an amplifier multiplying an input by a constant (one op
  amp);
* ``comp3`` — an adder of two inputs (two op amps).

The paper's fragment shows complete mappings with 4, 3 and 2 op amps;
the branching rule introduces an extra comp2 for block1's sibling when
finding the 2-op-amp optimum, and the sharing branch produces the
3-op-amp solution.  The benchmark prints the decision tree and asserts
all three solution sizes appear when bounding is off, and that bounding
prunes part of the tree while preserving the optimum.
"""

import pytest

from repro.library import ComponentLibrary, ComponentSpec, PatternMatcher
from repro.synth import MapperOptions, map_sfg
from repro.vhif.sfg import BlockKind, SignalFlowGraph

from conftest import banner


def figure6_sfg():
    """v1 -> block1(xk) -> block3(+) <- block2(xk) <- v1 (shared input)."""
    g = SignalFlowGraph("fig6")
    v1 = g.add(BlockKind.INPUT, name="v1")
    block1 = g.add(BlockKind.SCALE, gain=2.0, name="block1")
    block2 = g.add(BlockKind.SCALE, gain=2.0, name="block2")
    block3 = g.add(BlockKind.ADD, n_inputs=2, name="block3")
    vo = g.add(BlockKind.OUTPUT, name="vo")
    g.connect(v1, block1)
    g.connect(v1, block2)
    g.connect(block1, block3, port=0)
    g.connect(block2, block3, port=1)
    g.connect(block3, vo)
    return g


def figure6_library():
    return ComponentLibrary(
        [
            ComponentSpec(
                name="weighted_summing_amplifier",  # comp1
                category="amplif.",
                opamps=1,
                gain_param="weights",
                description="amplifies v1 by k and adds v2 (Figure 6b)",
            ),
            ComponentSpec(
                name="noninverting_amplifier",  # comp2
                category="amplif.",
                opamps=1,
                gain_param="gain",
            ),
            ComponentSpec(
                name="inverting_amplifier",
                category="amplif.",
                opamps=1,
                gain_param="gain",
            ),
            ComponentSpec(
                name="summing_amplifier",  # comp3
                category="amplif.",
                opamps=2,
                gain_param="weights",
            ),
        ],
        name="fig6",
    )


def figure6_matcher():
    return PatternMatcher(
        figure6_library(), max_weighted_scales=1, enable_transforms=False
    )


def test_figure6_decision_tree(benchmark):
    result = benchmark(
        lambda: map_sfg(
            figure6_sfg(),
            library=figure6_library(),
            matcher=figure6_matcher(),
            options=MapperOptions(collect_tree=True, enable_bounding=False),
        )
    )
    banner("Figure 6: decision tree fragment")
    for node in result.tree:
        indent = 0
        parent = node.parent
        while parent is not None:
            indent += 1
            parent = result.tree[parent].parent
        print("  " * indent + str(node))
    print(f"\ncomplete mappings found (op amps): {result.solution_opamps}")
    print(f"best: {result.netlist.total_opamps()} op amps — "
          f"{result.netlist.summary()}")

    # The paper's tree passes through 4-, 3- and 2-op-amp mappings.
    counts = set(result.solution_opamps)
    assert {2, 3, 4} <= counts
    assert result.netlist.total_opamps() == 2

    # The 2-op-amp optimum uses comp1 plus the extra comp2 for block2
    # (the dashed box of Figure 6a).
    components = sorted(i.spec.name for i in result.netlist.instances)
    assert components == [
        "noninverting_amplifier",
        "weighted_summing_amplifier",
    ]


def test_figure6_bounding_effect(benchmark):
    def run_both():
        bounded = map_sfg(
            figure6_sfg(),
            library=figure6_library(),
            matcher=figure6_matcher(),
            options=MapperOptions(enable_bounding=True),
        )
        unbounded = map_sfg(
            figure6_sfg(),
            library=figure6_library(),
            matcher=figure6_matcher(),
            options=MapperOptions(enable_bounding=False),
        )
        return bounded, unbounded

    bounded, unbounded = benchmark(run_both)
    banner("Figure 6: bounding-rule effect")
    print(
        f"without bounding: {unbounded.statistics.nodes_visited} nodes, "
        f"{unbounded.statistics.nodes_pruned} pruned"
    )
    print(
        f"with bounding:    {bounded.statistics.nodes_visited} nodes, "
        f"{bounded.statistics.nodes_pruned} pruned"
    )
    assert bounded.statistics.nodes_pruned > 0
    assert bounded.netlist.total_opamps() == unbounded.netlist.total_opamps()


def test_figure6_sharing_solution(benchmark):
    """The 3-op-amp mapping shares one comp2 between block1 and block2."""
    result = benchmark(
        lambda: map_sfg(
            figure6_sfg(),
            library=figure6_library(),
            matcher=figure6_matcher(),
            options=MapperOptions(collect_tree=True, enable_bounding=False),
        )
    )
    banner("Figure 6: hardware-sharing branch")
    shares = [n for n in result.tree if n.decision.startswith("share")]
    for node in shares:
        print(f"  {node}")
    assert result.statistics.shared_branches > 0
    assert 3 in set(result.solution_opamps)
