"""Figure 8: simulation of the synthesized receiver module.

The paper describes the receiver in SPICE (2-stage op amps, MOSIS
SCN-2.0um) and simulates it with a deliberately high-amplitude input so
the output stage's limiting is visible: "Signal v(9) was clipped at
1.5V."  This benchmark elaborates the synthesized netlist into the MNA
substrate, runs the transient, and reproduces the three traces:

* v(11) — the input of the op amp of block 1 (the line input),
* v(5)  — its output (the amplified weighted sum),
* v(9)  — signal earph after the output stage (clipped at 1.5 V).
"""

import numpy as np
import pytest

from repro.apps import receiver
from repro.flow import synthesize
from repro.spice import elaborate, sin_wave, to_spice_deck, waveform

from conftest import banner


@pytest.fixture(scope="module")
def synthesized():
    return synthesize(receiver.VASS_SOURCE)


def simulate(result, amplitude=1.0, t_end=2e-3, dt=2e-6):
    circuit = elaborate(
        result.netlist,
        input_waves={
            "line": sin_wave(amplitude, 1000.0),
            "local": lambda t: 0.1,
        },
    )
    v11 = circuit.input_nodes["line"]
    summer = result.netlist.by_component("summing_amplifier")[0]
    v5 = f"n{summer.output}"
    v9 = circuit.output_nodes["earph"]
    sim = circuit.transient(t_end, dt, probes=[v11, v5, v9])
    return sim, (v11, v5, v9)


def test_figure8_clipping(benchmark, synthesized):
    sim, (v11, v5, v9) = benchmark(lambda: simulate(synthesized))
    banner("Figure 8: simulation of the receiver module")
    for label, node in (("v(11) line input", v11),
                        ("v(5) weighted sum", v5),
                        ("v(9) earph output", v9)):
        trace = sim[node]
        print(f"{label:<20} min {trace.min():+.3f} V   max "
              f"{trace.max():+.3f} V")
    report = waveform.detect_clipping(sim[v9])
    print(
        f"\nv(9) clipping: {'YES' if report.clipped else 'no'} at "
        f"{report.level:.3f} V (paper: clipped at 1.5 V), "
        f"rail dwell {report.dwell_fraction*100:.1f} % of samples"
    )
    assert report.clipped
    assert report.level == pytest.approx(1.5, rel=0.05)


def test_figure8_signal_path_gain(benchmark, synthesized):
    """Below the clip level the circuit follows the specified math."""

    def run():
        return simulate(synthesized, amplitude=0.1)

    sim, (v11, v5, v9) = benchmark(run)
    banner("Figure 8: linear-region check (low amplitude)")
    # line = 0.1 sin: always below Vth except tiny crest? 0.1 < 0.2 so
    # rvar = 1.25 throughout: earph = (2*line + 0.1)*1.25.
    expected_peak = (2 * 0.1 + 0.1) * 1.25
    measured_peak = float(np.max(sim[v9][len(sim[v9]) // 2:]))
    print(f"expected positive peak {expected_peak:.3f} V, measured "
          f"{measured_peak:.3f} V")
    assert measured_peak == pytest.approx(expected_peak, rel=0.08)


def test_figure8_functional_correctness(benchmark, synthesized):
    """Pointwise comparison against the behavioral specification."""

    def run():
        return simulate(synthesized, amplitude=1.0, t_end=1e-3)

    sim, (v11, v5, v9) = benchmark(run)
    banner("Figure 8: circuit vs specification (pointwise)")
    line = sim[v11]
    out = sim[v9]
    reference = np.array(
        [receiver.expected_earph(l, 0.1) for l in line]
    )
    # Ignore the samples right at the compensation switching instants
    # (the comparator decision has finite slope in the macromodel).
    error = np.abs(out - reference)
    tolerance = np.percentile(error, 90)
    print(f"90th-percentile |error| = {tolerance*1e3:.1f} mV")
    assert tolerance < 0.12

    deck = to_spice_deck(synthesized.netlist, title="receiver (Figure 8)")
    print("\ngenerated SPICE deck (first lines):")
    for line_text in deck.splitlines()[:10]:
        print("  " + line_text)
