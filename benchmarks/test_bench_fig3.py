"""Figure 3: structural representation of a mixed VASS program.

The paper's Figure 3 shows (a) a VASS fragment with a procedural whose
instruction sequence must be preserved through data dependence, and a
process whose statements are grouped into states by concurrency; (b)
the corresponding VHIF: interconnected blocks for the continuous part
and a start/state1/state2 FSM resumed by an OR of two 'above events.

This benchmark compiles an equivalent program and checks both rules.
"""

import pytest

from repro.compiler import compile_design
from repro.vhif import BlockKind, START_STATE

from conftest import banner

FIGURE3_SOURCE = """
ENTITY figure3 IS
PORT (
  QUANTITY a : IN real IS voltage;
  QUANTITY b : IN real IS voltage;
  QUANTITY y : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE mixed OF figure3 IS
  CONSTANT th1 : real := 0.5;
  CONSTANT th2 : real := -0.5;
  SIGNAL c : bit;
BEGIN
  -- Continuous part: instruction 1 feeds instruction 2 through t.
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    t := a + b;          -- instruction 1
    y := t * 2.0;        -- instruction 2 (data-dependent on 1)
  END PROCEDURAL;

  -- Event-driven part: resumed by events on a'ABOVE(th1), b'ABOVE(th2).
  PROCESS (a'ABOVE(th1), b'ABOVE(th2)) IS
    VARIABLE m : real;
    VARIABLE n : real;
  BEGIN
    m := 1.0;            -- assignment 4 \\ same state (no dependence)
    n := 2.0;            -- assignment 5 /
    m := n + 1.0;        -- assignment 6: depends on 5 -> new state
    c <= '1';
  END PROCESS;
END ARCHITECTURE;
"""


def test_figure3_translation(benchmark):
    design = benchmark(lambda: compile_design(FIGURE3_SOURCE))
    banner("Figure 3: VASS -> VHIF translation")
    print(design.describe())

    # (1) Instruction sequencing through dataflow: the block of
    # instruction 1 (the adder) feeds the block of instruction 2.
    sfg = design.main_sfg
    (adder,) = sfg.blocks_of_kind(BlockKind.ADD)
    (scale,) = sfg.blocks_of_kind(BlockKind.SCALE)
    assert sfg.driver_of(scale, 0) is adder

    # (2) The FSM resumes from start by an OR of the two events.
    fsm = design.fsm
    resume_arcs = fsm.transitions_from(START_STATE)
    assert len(resume_arcs) == 1
    events = resume_arcs[0].condition.event_names()
    assert "a'above(0.5)" in events
    assert "b'above(-0.5)" in events

    # (3) Concurrency grouping: assignments 4 and 5 share state 1;
    # assignment 6 opens state 2 (paper's exact example).
    state1 = fsm.state("state1")
    assert {op.target for op in state1.operations} == {"m", "n"}
    state2 = fsm.state("state2")
    assert any(op.target == "m" for op in state2.operations)

    print("\nsequencing rule: adder -> scaler connection PRESENT")
    print("state grouping:  {m:=1, n:=2} in state1; m:=n+1 in state2 "
          "(matches Figure 3b)")
