"""Section 6 methodology: synthesized circuits vs their specifications.

"The produced circuits were simulated, and their output signals were
observed."  This benchmark runs the packaged equivalence check on the
applications that exercise distinct circuit classes and reports the
spec-vs-circuit deviation for each — the reproduction's functional
acceptance gate.
"""

import pytest

from repro.apps import biquad_filter, receiver
from repro.flow import synthesize
from repro.spice import sin_wave
from repro.verify import verify_equivalence

from conftest import banner


def test_verification_receiver(benchmark):
    result = synthesize(receiver.VASS_SOURCE)

    def run():
        return verify_equivalence(
            result,
            inputs={"line": sin_wave(0.8, 1e3), "local": lambda t: 0.1},
            t_end=2e-3,
            tolerance=0.10,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Verification: receiver module (switched gain + limiting)")
    print(report.describe())
    assert report.passed


def test_verification_biquad(benchmark):
    result = biquad_filter.synthesize_biquad()

    def run():
        return verify_equivalence(
            result,
            inputs={"vin": sin_wave(0.5, 200.0)},
            t_end=10e-3,
            dt=5e-6,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Verification: biquad filter (integrator loop dynamics)")
    print(report.describe())
    assert report.passed


def test_verification_nonlinear(benchmark):
    source = """
ENTITY squarer IS
PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE a OF squarer IS
BEGIN
  y == 0.5 * u * u + 0.1;
END ARCHITECTURE;
"""
    result = synthesize(source)

    def run():
        return verify_equivalence(
            result, inputs={"u": sin_wave(0.8, 1e3)}, t_end=2e-3
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Verification: nonlinear design (multiplier core)")
    print(report.describe())
    assert report.passed
