"""Benchmarks of the staged pipeline: cache warm-up and parallel batch.

Two measurements the refactor promises, both recorded in the metrics
JSON for the perf trajectory:

1. cold-vs-warm synthesis: the same design through a shared on-disk
   artifact cache — the warm run should skip every stage;
2. executor-backend batch wall-clock (serial vs thread vs process) over
   a corpus heavy enough for the GIL to matter, with the report content
   proven byte-identical across all three backends.
"""

import os
import time
from pathlib import Path

from repro.apps import ALL_APPLICATIONS
from repro.flow import FlowOptions, synthesize
from repro.pipeline import ArtifactCache, ParallelOptions
from repro.robust.batch import run_batch
from repro.synth.mapper import MapperOptions

from conftest import banner

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()


def test_bench_cache_cold_vs_warm(benchmark, bench_metrics, tmp_path):
    store = tmp_path / "vase-cache"

    def run():
        cold_cache = ArtifactCache(disk_dir=store)
        t0 = time.perf_counter()
        synthesize(BIQUAD, options=FlowOptions(cache=cold_cache))
        cold_s = time.perf_counter() - t0

        warm_cache = ArtifactCache(disk_dir=store)
        t0 = time.perf_counter()
        synthesize(BIQUAD, options=FlowOptions(cache=warm_cache))
        warm_s = time.perf_counter() - t0
        return cold_s, warm_s, cold_cache.stats, warm_cache.stats

    cold_s, warm_s, cold_stats, warm_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    banner("Pipeline cache: cold vs warm synthesis")
    print(f"cold run : {cold_s * 1e3:8.2f} ms "
          f"({cold_stats.misses} stage misses)")
    print(f"warm run : {warm_s * 1e3:8.2f} ms "
          f"({warm_stats.hits} stage hits, {warm_stats.misses} misses)")
    print(f"speedup  : {cold_s / warm_s:8.2f}x")
    bench_metrics["cold_s"] = cold_s
    bench_metrics["warm_s"] = warm_s
    bench_metrics["warm_hits"] = warm_stats.hits
    bench_metrics["warm_misses"] = warm_stats.misses
    assert warm_stats.misses == 0


def test_bench_batch_executors(benchmark, bench_metrics, tmp_path):
    """Serial vs thread vs process backends over a CPU-heavy corpus.

    The corpus replicates the Table-1 applications and disables the
    mapper's cost bounding, so every file spends real CPU time in the
    branch-and-bound search — the regime where threads serialize on the
    GIL and spawned worker processes actually buy multi-core speedup.
    The ``>= 1.4x`` process-over-serial assertion only fires on hosts
    with at least 4 usable cores (CI runners qualify; a single-core
    container cannot speed anything up).
    """
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    # iterative_solver is the heavyweight once bounding is off
    # (~0.3 s of pure branch-and-bound per file); replicating it keeps
    # the serial baseline in the multi-second range so executor
    # overheads (worker spawn, pickling) cannot mask the comparison.
    for copy in range(30):
        (corpus / f"iterative_solver_{copy:02d}.vhd").write_text(
            ALL_APPLICATIONS["iterative_solver"].VASS_SOURCE
        )
    (corpus / "biquad.vhd").write_text(BIQUAD)
    for name in ("power_meter", "function_generator", "missile_solver"):
        (corpus / f"{name}.vhd").write_text(
            ALL_APPLICATIONS[name].VASS_SOURCE
        )
    files = sorted(corpus.iterdir())
    options = FlowOptions(mapper=MapperOptions(enable_bounding=False))

    def timed(executor, workers):
        t0 = time.perf_counter()
        report = run_batch(
            files, options=options,
            parallel=ParallelOptions(executor=executor, workers=workers),
        )
        return report, time.perf_counter() - t0

    def run():
        serial, serial_s = timed("serial", 1)
        thread, thread_s = timed("thread", 4)
        process, process_s = timed("process", 4)
        return serial, serial_s, thread, thread_s, process, process_s

    serial, serial_s, thread, thread_s, process, process_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    cores = len(os.sched_getaffinity(0))
    banner("Executor backends: serial vs thread vs process (--workers 4)")
    print(f"files    : {len(files)}  (usable cores: {cores})")
    print(f"serial   : {serial_s * 1e3:8.2f} ms")
    print(f"thread 4 : {thread_s * 1e3:8.2f} ms "
          f"({serial_s / thread_s:.2f}x)")
    print(f"process 4: {process_s * 1e3:8.2f} ms "
          f"({serial_s / process_s:.2f}x)")
    bench_metrics["files"] = len(files)
    bench_metrics["cores"] = cores
    bench_metrics["serial_s"] = serial_s
    bench_metrics["thread4_s"] = thread_s
    bench_metrics["process4_s"] = process_s
    assert serial.as_dict(timing=False) == thread.as_dict(timing=False)
    assert serial.as_dict(timing=False) == process.as_dict(timing=False)
    assert serial.failed == 0
    if cores >= 4:
        # The acceptance bar: real multi-core speedup once the host
        # actually has the cores to spend.
        assert serial_s / process_s >= 1.4
