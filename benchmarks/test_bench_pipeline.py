"""Benchmarks of the staged pipeline: cache warm-up and parallel batch.

Two measurements the refactor promises, both recorded in the metrics
JSON for the perf trajectory:

1. cold-vs-warm synthesis: the same design through a shared on-disk
   artifact cache — the warm run should skip every stage;
2. serial-vs-``--jobs`` batch wall-clock over a small corpus, with the
   report content proven identical.
"""

import time
from pathlib import Path

from repro.apps import ALL_APPLICATIONS
from repro.flow import FlowOptions, synthesize
from repro.pipeline import ArtifactCache
from repro.robust.batch import run_batch

from conftest import banner

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()


def test_bench_cache_cold_vs_warm(benchmark, bench_metrics, tmp_path):
    store = tmp_path / "vase-cache"

    def run():
        cold_cache = ArtifactCache(disk_dir=store)
        t0 = time.perf_counter()
        synthesize(BIQUAD, options=FlowOptions(cache=cold_cache))
        cold_s = time.perf_counter() - t0

        warm_cache = ArtifactCache(disk_dir=store)
        t0 = time.perf_counter()
        synthesize(BIQUAD, options=FlowOptions(cache=warm_cache))
        warm_s = time.perf_counter() - t0
        return cold_s, warm_s, cold_cache.stats, warm_cache.stats

    cold_s, warm_s, cold_stats, warm_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    banner("Pipeline cache: cold vs warm synthesis")
    print(f"cold run : {cold_s * 1e3:8.2f} ms "
          f"({cold_stats.misses} stage misses)")
    print(f"warm run : {warm_s * 1e3:8.2f} ms "
          f"({warm_stats.hits} stage hits, {warm_stats.misses} misses)")
    print(f"speedup  : {cold_s / warm_s:8.2f}x")
    bench_metrics["cold_s"] = cold_s
    bench_metrics["warm_s"] = warm_s
    bench_metrics["warm_hits"] = warm_stats.hits
    bench_metrics["warm_misses"] = warm_stats.misses
    assert warm_stats.misses == 0


def test_bench_batch_serial_vs_jobs(benchmark, bench_metrics, tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "biquad.vhd").write_text(BIQUAD)
    for name in ("power_meter", "iterative_solver", "function_generator"):
        (corpus / f"{name}.vhd").write_text(
            ALL_APPLICATIONS[name].VASS_SOURCE
        )
    files = sorted(corpus.iterdir())

    def run():
        t0 = time.perf_counter()
        serial = run_batch(files)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_batch(files, jobs=4)
        parallel_s = time.perf_counter() - t0
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    banner("Parallel batch: serial vs --jobs 4")
    print(f"files    : {len(files)}")
    print(f"serial   : {serial_s * 1e3:8.2f} ms")
    print(f"--jobs 4 : {parallel_s * 1e3:8.2f} ms")
    print(f"speedup  : {serial_s / parallel_s:8.2f}x")
    bench_metrics["files"] = len(files)
    bench_metrics["serial_s"] = serial_s
    bench_metrics["jobs4_s"] = parallel_s
    assert serial.as_dict(timing=False) == parallel.as_dict(timing=False)
    assert serial.failed == 0
