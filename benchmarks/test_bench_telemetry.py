"""Benchmark: telemetry overhead — disabled free, quiet bus near-free.

Three configurations of the same biquad synthesis, best-of-N each:

1. **off** — no bus installed; every hot path takes the
   ``active_bus() is None`` early-out.  This is the default.
2. **quiet** — a bus is active process-wide but has no subscribers and
   the flow does not force the tracer/explog on: measures the pure
   publish cost (seq assignment + dispatch loop over zero subscribers).
3. **sink** — ``FlowOptions(telemetry=...)`` with a JSONL sink at the
   default per-event flush (``flush_every=1``, the live-tailing
   behavior): the full-fat configuration (tracer and explog forced
   on, every event serialized and flushed to disk).
4. **buffered** — the same sink with ``flush_every=64``: the batched
   flush policy hot runs should use when nobody is tailing the file.

The gate is on (2) vs (1): an active-but-quiet bus must stay within a
noise budget of the disabled path.  (3) and (4) are reported for the
perf trajectory, not gated — paying for what you ask for is fine.
"""

import time
from pathlib import Path

from repro.flow import FlowOptions, synthesize
from repro.instrument import JsonlSink, TelemetryBus, active_bus, telemetry

from conftest import banner

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()

ROUNDS = 7


def _best(run, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_telemetry_overhead(benchmark, bench_metrics, tmp_path):
    assert active_bus() is None

    def off():
        synthesize(BIQUAD)

    def quiet():
        with telemetry():
            synthesize(BIQUAD)

    def sink():
        bus = TelemetryBus()
        with JsonlSink(str(tmp_path / "events.jsonl")) as handle:
            bus.subscribe(handle)
            synthesize(BIQUAD, options=FlowOptions(telemetry=bus))

    def buffered():
        bus = TelemetryBus()
        with JsonlSink(
            str(tmp_path / "buffered.jsonl"), flush_every=64
        ) as handle:
            bus.subscribe(handle)
            synthesize(BIQUAD, options=FlowOptions(telemetry=bus))

    def run():
        off()  # warm caches/imports before timing anything
        return _best(off), _best(quiet), _best(sink), _best(buffered)

    off_s, quiet_s, sink_s, buffered_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    count_bus = TelemetryBus()
    with telemetry(count_bus):
        synthesize(BIQUAD)
    quiet_events = count_bus.published()
    count_bus = TelemetryBus()
    with JsonlSink(str(tmp_path / "count.jsonl")) as handle:
        count_bus.subscribe(handle)
        synthesize(BIQUAD, options=FlowOptions(telemetry=count_bus))
    sink_events = count_bus.published()

    banner("Telemetry overhead: off vs quiet bus vs JSONL sink")
    print(f"off     : {off_s * 1e3:8.2f} ms  (no bus, best of {ROUNDS})")
    print(f"quiet   : {quiet_s * 1e3:8.2f} ms  "
          f"({quiet_events} events, no subscribers; "
          f"{quiet_s / off_s:.2f}x)")
    print(f"sink    : {sink_s * 1e3:8.2f} ms  "
          f"({sink_events} events incl. forced tracer+explog, "
          f"flush_every=1; {sink_s / off_s:.2f}x)")
    print(f"buffered: {buffered_s * 1e3:8.2f} ms  "
          f"(same sink, flush_every=64; {buffered_s / off_s:.2f}x)")
    bench_metrics["off_s"] = off_s
    bench_metrics["quiet_s"] = quiet_s
    bench_metrics["sink_s"] = sink_s
    bench_metrics["buffered_sink_s"] = buffered_s
    bench_metrics["quiet_events"] = quiet_events
    bench_metrics["sink_events"] = sink_events

    # The gate: an active bus nobody listens to must stay within 15%
    # (plus a 5 ms absolute floor against scheduler noise on a ~10 ms
    # flow) of the no-bus run — and by implication the no-bus run,
    # whose only new cost is ``active_bus() is None`` checks, is free.
    assert quiet_s <= off_s * 1.15 + 5e-3, (
        f"quiet bus took {quiet_s * 1e3:.2f} ms vs "
        f"telemetry-off {off_s * 1e3:.2f} ms"
    )
