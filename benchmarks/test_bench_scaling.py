"""Section 7: branch-and-bound scalability and the heuristic baseline.

The paper closes by noting that "because of its time-complexity, the
proposed branch-and-bound algorithm might fail for larger designs" and
that ongoing work replaces it with a faster exploration heuristic.
This benchmark measures both claims on synthetic signal-flow graphs of
growing size:

* exhaustive B&B node counts grow super-linearly without the bounding
  rule and are cut substantially with it;
* the greedy (first-solution, largest-cone) heuristic visits a tiny
  fraction of the nodes, with a bounded optimality gap on these
  workloads.
"""

import random

import pytest

from repro.synth import MapperOptions, map_sfg, map_sfg_greedy
from repro.vhif.sfg import BlockKind, SignalFlowGraph

from conftest import banner


def ladder_sfg(n_stages: int, seed: int = 7) -> SignalFlowGraph:
    """A ladder of weighted-sum stages: stage i adds a scaled copy of
    the input to the previous stage's output (filter-like topology)."""
    rng = random.Random(seed)
    g = SignalFlowGraph(f"ladder{n_stages}")
    x = g.add(BlockKind.INPUT, name="x")
    previous = x
    for stage in range(n_stages):
        scale = g.add(BlockKind.SCALE, gain=round(rng.uniform(1.5, 4.0), 2))
        g.connect(x if stage % 2 == 0 else previous, scale)
        adder = g.add(BlockKind.ADD, n_inputs=2)
        g.connect(scale, adder, port=0)
        g.connect(previous, adder, port=1)
        previous = adder
    out = g.add(BlockKind.OUTPUT, name="y")
    g.connect(previous, out)
    return g


SIZES = [2, 3, 4, 5]


def run_scaling_series():
    rows = []
    for stages in SIZES:
        g = ladder_sfg(stages)
        n_blocks = len(g.processing_blocks())
        exhaustive = map_sfg(
            g, options=MapperOptions(enable_bounding=False,
                                     enable_transforms=False),
        )
        bounded = map_sfg(
            g, options=MapperOptions(enable_bounding=True,
                                     enable_transforms=False),
        )
        greedy = map_sfg_greedy(g)
        rows.append(
            {
                "stages": stages,
                "blocks": n_blocks,
                "exhaustive_nodes": exhaustive.statistics.nodes_visited,
                "bounded_nodes": bounded.statistics.nodes_visited,
                "pruned": bounded.statistics.nodes_pruned,
                "greedy_nodes": greedy.statistics.nodes_visited,
                "exhaustive_opamps": exhaustive.netlist.total_opamps(),
                "greedy_opamps": greedy.netlist.total_opamps(),
                "exhaustive_s": exhaustive.statistics.runtime_s,
                "greedy_s": greedy.statistics.runtime_s,
            }
        )
    return rows


def test_scaling_series(benchmark, bench_metrics):
    rows = benchmark.pedantic(run_scaling_series, rounds=1, iterations=1)
    bench_metrics["rows"] = rows
    banner("Section 7: search-effort scaling (B&B vs bounded B&B vs greedy)")
    header = (
        f"{'stages':>6} {'blocks':>6} {'B&B nodes':>10} {'bounded':>8} "
        f"{'pruned':>7} {'greedy':>7} {'B&B opamps':>10} {'greedy':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['stages']:>6} {row['blocks']:>6} "
            f"{row['exhaustive_nodes']:>10} {row['bounded_nodes']:>8} "
            f"{row['pruned']:>7} {row['greedy_nodes']:>7} "
            f"{row['exhaustive_opamps']:>10} {row['greedy_opamps']:>7}"
        )
    # Node counts grow super-linearly in the exhaustive search...
    nodes = [row["exhaustive_nodes"] for row in rows]
    assert nodes[-1] > nodes[0] * 4
    growth_tail = nodes[-1] / nodes[-2]
    growth_head = nodes[1] / nodes[0]
    assert growth_tail >= 1.5  # still multiplying at the end
    # ...bounding prunes...
    assert all(row["pruned"] > 0 for row in rows[1:])
    assert all(
        row["bounded_nodes"] <= row["exhaustive_nodes"] for row in rows
    )
    # ...and the heuristic explores far less.
    assert all(
        row["greedy_nodes"] <= row["bounded_nodes"] for row in rows
    )
    # Optimality: B&B is never worse than greedy.
    assert all(
        row["exhaustive_opamps"] <= row["greedy_opamps"] for row in rows
    )


def test_greedy_gap(benchmark):
    """Greedy optimality gap across several random topologies."""

    def run():
        gaps = []
        for seed in range(5):
            g = ladder_sfg(3, seed=seed)
            optimal = map_sfg(
                g, options=MapperOptions(enable_transforms=False)
            )
            greedy = map_sfg_greedy(g)
            gaps.append(
                greedy.netlist.total_opamps()
                - optimal.netlist.total_opamps()
            )
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Section 7: greedy heuristic optimality gap")
    print(f"op-amp gap per seed: {gaps}")
    assert all(gap >= 0 for gap in gaps)
    assert max(gaps) <= 2
