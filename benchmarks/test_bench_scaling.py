"""Section 7: branch-and-bound scalability and the heuristic baseline.

The paper closes by noting that "because of its time-complexity, the
proposed branch-and-bound algorithm might fail for larger designs" and
that ongoing work replaces it with a faster exploration heuristic.
This benchmark measures both claims on synthetic signal-flow graphs of
growing size:

* exhaustive B&B node counts grow super-linearly without the bounding
  rule and are cut substantially with it;
* the greedy (first-solution, largest-cone) heuristic visits a tiny
  fraction of the nodes, with a bounded optimality gap on these
  workloads.

The kernel-scaling series below extend the same idea to the refactored
hot kernels, on synthetic workloads 10–100× the Table-1 size:

* AC sweeps over RC ladders, timing the dense per-point loop against
  the batched (stacked-LU) and sparse backends;
* branch-and-bound over large ladder SFGs, timing the incremental
  ``CandidateIndex`` against the re-enumerating legacy path at an
  identical node budget.

Wall-clock ratios are machine-dependent, so they live inside the
``rows`` payload (bench-check does not gate list entries); the
deterministic search/solve counters land in the metrics snapshot and
*are* gated.  Sparse-backend legs run with the metrics registry
disabled so CI legs with and without scipy produce identical dumps.
"""

import random
import time

import pytest

from repro.instrument import metrics
from repro.spice import dc
from repro.spice.ac import ac_sweep
from repro.spice.linalg import HAVE_SCIPY
from repro.spice.mna import Circuit
from repro.synth import MapperOptions, map_sfg, map_sfg_greedy
from repro.vhif.sfg import BlockKind, SignalFlowGraph

from conftest import banner


def ladder_sfg(n_stages: int, seed: int = 7) -> SignalFlowGraph:
    """A ladder of weighted-sum stages: stage i adds a scaled copy of
    the input to the previous stage's output (filter-like topology)."""
    rng = random.Random(seed)
    g = SignalFlowGraph(f"ladder{n_stages}")
    x = g.add(BlockKind.INPUT, name="x")
    previous = x
    for stage in range(n_stages):
        scale = g.add(BlockKind.SCALE, gain=round(rng.uniform(1.5, 4.0), 2))
        g.connect(x if stage % 2 == 0 else previous, scale)
        adder = g.add(BlockKind.ADD, n_inputs=2)
        g.connect(scale, adder, port=0)
        g.connect(previous, adder, port=1)
        previous = adder
    out = g.add(BlockKind.OUTPUT, name="y")
    g.connect(previous, out)
    return g


SIZES = [2, 3, 4, 5]


def run_scaling_series():
    rows = []
    for stages in SIZES:
        g = ladder_sfg(stages)
        n_blocks = len(g.processing_blocks())
        exhaustive = map_sfg(
            g, options=MapperOptions(enable_bounding=False,
                                     enable_transforms=False),
        )
        bounded = map_sfg(
            g, options=MapperOptions(enable_bounding=True,
                                     enable_transforms=False),
        )
        greedy = map_sfg_greedy(g)
        rows.append(
            {
                "stages": stages,
                "blocks": n_blocks,
                "exhaustive_nodes": exhaustive.statistics.nodes_visited,
                "bounded_nodes": bounded.statistics.nodes_visited,
                "pruned": bounded.statistics.nodes_pruned,
                "greedy_nodes": greedy.statistics.nodes_visited,
                "exhaustive_opamps": exhaustive.netlist.total_opamps(),
                "greedy_opamps": greedy.netlist.total_opamps(),
                "exhaustive_s": exhaustive.statistics.runtime_s,
                "greedy_s": greedy.statistics.runtime_s,
            }
        )
    return rows


def test_scaling_series(benchmark, bench_metrics):
    rows = benchmark.pedantic(run_scaling_series, rounds=1, iterations=1)
    bench_metrics["rows"] = rows
    banner("Section 7: search-effort scaling (B&B vs bounded B&B vs greedy)")
    header = (
        f"{'stages':>6} {'blocks':>6} {'B&B nodes':>10} {'bounded':>8} "
        f"{'pruned':>7} {'greedy':>7} {'B&B opamps':>10} {'greedy':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['stages']:>6} {row['blocks']:>6} "
            f"{row['exhaustive_nodes']:>10} {row['bounded_nodes']:>8} "
            f"{row['pruned']:>7} {row['greedy_nodes']:>7} "
            f"{row['exhaustive_opamps']:>10} {row['greedy_opamps']:>7}"
        )
    # Node counts grow super-linearly in the exhaustive search...
    nodes = [row["exhaustive_nodes"] for row in rows]
    assert nodes[-1] > nodes[0] * 4
    growth_tail = nodes[-1] / nodes[-2]
    growth_head = nodes[1] / nodes[0]
    assert growth_tail >= 1.5  # still multiplying at the end
    # ...bounding prunes...
    assert all(row["pruned"] > 0 for row in rows[1:])
    assert all(
        row["bounded_nodes"] <= row["exhaustive_nodes"] for row in rows
    )
    # ...and the heuristic explores far less.
    assert all(
        row["greedy_nodes"] <= row["bounded_nodes"] for row in rows
    )
    # Optimality: B&B is never worse than greedy.
    assert all(
        row["exhaustive_opamps"] <= row["greedy_opamps"] for row in rows
    )


# -- kernel scaling: AC backends ---------------------------------------------

#: RC-ladder sections. The batched win is the amortized python loop
#: overhead, so it is largest on Table-1-sized circuits (a handful of
#: unknowns) and shrinks as per-point LAPACK cost takes over; the
#: series spans both regimes.
AC_SIZES = [3, 6, 12]
#: dense log grid: 5 decades x 200 points/decade + endpoint —
#: ~50x the default vase-ac grid, amortizing the one stacked LU
AC_POINTS_PER_DECADE = 200
#: timing repeats per backend (best-of to shed scheduler noise)
AC_REPEATS = 3


def rc_ladder_circuit(n_sections: int) -> Circuit:
    """An n-section RC ladder: n+1 nodes plus one source branch."""
    circuit = Circuit()
    circuit.vsource("VIN", "n0", "0", dc(0.0))
    for i in range(n_sections):
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3)
        circuit.capacitor(f"C{i}", f"n{i + 1}", "0", 1e-8)
    return circuit


def _time_ac_sweep(circuit: Circuit, probe: str, backend: str) -> float:
    best = float("inf")
    for _ in range(AC_REPEATS):
        start = time.perf_counter()
        ac_sweep(
            circuit, 10.0, 1e6,
            points_per_decade=AC_POINTS_PER_DECADE,
            probes=[probe], linalg=backend,
        )
        best = min(best, time.perf_counter() - start)
    return best


def run_ac_backend_series():
    rows = []
    for sections in AC_SIZES:
        circuit = rc_ladder_circuit(sections)
        probe = f"n{sections}"
        dense_s = _time_ac_sweep(circuit, probe, "dense")
        batched_s = _time_ac_sweep(circuit, probe, "batched")
        row = {
            "sections": sections,
            "unknowns": sections + 2,
            "points": 5 * AC_POINTS_PER_DECADE + 1,
            "ac_sweep_dense_s": dense_s,
            "ac_sweep_batched_s": batched_s,
            "batched_speedup_x": dense_s / batched_s,
        }
        if HAVE_SCIPY:
            # Keep the metrics dump identical on the no-scipy CI leg:
            # sparse counters must not reach the gated snapshot.
            registry = metrics()
            registry.disable()
            try:
                row["ac_sweep_sparse_s"] = _time_ac_sweep(
                    circuit, probe, "sparse"
                )
            finally:
                registry.enable()
        rows.append(row)
    return rows


def test_ac_backend_scaling(benchmark, bench_metrics):
    rows = benchmark.pedantic(run_ac_backend_series, rounds=1, iterations=1)
    bench_metrics["rows"] = rows
    banner(
        "Kernel scaling: AC sweep backends (dense loop vs batched LU"
        + (" vs sparse)" if HAVE_SCIPY else "; sparse unavailable)")
    )
    header = (
        f"{'sections':>8} {'unknowns':>8} {'points':>6} "
        f"{'dense [ms]':>10} {'batched [ms]':>12} {'speedup':>8}"
        + (f" {'sparse [ms]':>11}" if HAVE_SCIPY else "")
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        line = (
            f"{row['sections']:>8} {row['unknowns']:>8} "
            f"{row['points']:>6} "
            f"{row['ac_sweep_dense_s'] * 1e3:>10.2f} "
            f"{row['ac_sweep_batched_s'] * 1e3:>12.2f} "
            f"{row['batched_speedup_x']:>7.1f}x"
        )
        if HAVE_SCIPY:
            line += f" {row['ac_sweep_sparse_s'] * 1e3:>11.2f}"
        print(line)
    # The refactor's headline claim: one stacked LU beats the Python
    # per-point loop by >= 3x on grids where loop overhead dominates.
    assert max(row["batched_speedup_x"] for row in rows) >= 3.0
    assert all(row["batched_speedup_x"] > 1.0 for row in rows)


# -- kernel scaling: mapper candidate index ----------------------------------

#: ladder stages — ~50–80 processing blocks vs Table-1's handful
INDEX_SIZES = [25, 40]
#: identical node budget for both paths: same work, fair wall-clock
INDEX_MAX_NODES = 4000
INDEX_REPEATS = 3


def _time_mapping(g: SignalFlowGraph, use_index: bool):
    options = MapperOptions(
        enable_transforms=False,
        candidate_index=use_index,
        max_nodes=INDEX_MAX_NODES,
    )
    best = None
    for _ in range(INDEX_REPEATS):
        result = map_sfg(g, options=options)
        if best is None or (
            result.statistics.runtime_s < best.statistics.runtime_s
        ):
            best = result
    return best


def run_mapper_index_series():
    rows = []
    registry = metrics()
    for stages in INDEX_SIZES:
        g = ladder_sfg(stages)
        hits_before = registry.counter("mapper.index.hits")
        misses_before = registry.counter("mapper.index.misses")
        indexed = _time_mapping(g, use_index=True)
        hits = registry.counter("mapper.index.hits") - hits_before
        misses = registry.counter("mapper.index.misses") - misses_before
        legacy = _time_mapping(g, use_index=False)
        assert indexed.estimate.area == legacy.estimate.area
        assert (
            indexed.statistics.nodes_visited
            == legacy.statistics.nodes_visited
        )
        rows.append(
            {
                "stages": stages,
                "blocks": len(g.processing_blocks()),
                "nodes_visited": indexed.statistics.nodes_visited,
                "mapper_indexed_s": indexed.statistics.runtime_s,
                "mapper_legacy_s": legacy.statistics.runtime_s,
                "index_speedup_x": (
                    legacy.statistics.runtime_s
                    / indexed.statistics.runtime_s
                ),
                "index_hits": hits,
                "index_misses": misses,
                "index_hit_rate": (
                    hits / (hits + misses) if hits + misses else 0.0
                ),
            }
        )
    return rows


def test_mapper_index_scaling(benchmark, bench_metrics):
    rows = benchmark.pedantic(
        run_mapper_index_series, rounds=1, iterations=1
    )
    bench_metrics["rows"] = rows
    banner(
        "Kernel scaling: mapper candidate index vs per-node re-enumeration"
    )
    header = (
        f"{'stages':>6} {'blocks':>6} {'nodes':>6} "
        f"{'legacy [ms]':>11} {'indexed [ms]':>12} {'speedup':>8} "
        f"{'hit rate':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['stages']:>6} {row['blocks']:>6} "
            f"{row['nodes_visited']:>6} "
            f"{row['mapper_legacy_s'] * 1e3:>11.2f} "
            f"{row['mapper_indexed_s'] * 1e3:>12.2f} "
            f"{row['index_speedup_x']:>7.1f}x "
            f"{row['index_hit_rate']:>8.3f}"
        )
    # The index pays for itself: >= 2x wall-clock at identical node
    # counts, with the candidate query mostly served from the index.
    assert max(row["index_speedup_x"] for row in rows) >= 2.0
    assert all(row["index_speedup_x"] > 1.0 for row in rows)
    assert all(row["index_hit_rate"] > 0.5 for row in rows)


def test_greedy_gap(benchmark):
    """Greedy optimality gap across several random topologies."""

    def run():
        gaps = []
        for seed in range(5):
            g = ladder_sfg(3, seed=seed)
            optimal = map_sfg(
                g, options=MapperOptions(enable_transforms=False)
            )
            greedy = map_sfg_greedy(g)
            gaps.append(
                greedy.netlist.total_opamps()
                - optimal.netlist.total_opamps()
            )
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Section 7: greedy heuristic optimality gap")
    print(f"op-amp gap per seed: {gaps}")
    assert all(gap >= 0 for gap in gaps)
    assert max(gaps) <= 2
