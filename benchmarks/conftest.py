"""Shared helpers for the reproduction benchmarks.

Every benchmark prints a paper-vs-measured comparison after timing the
flow step it exercises, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's tables and figures as terminal output.

Benchmarks can also dump machine-readable per-phase metrics for the
perf trajectory: :func:`dump_metrics` (or the ``bench_metrics``
fixture) writes one JSON file per benchmark under ``benchmarks/out/``
(override with ``VASE_BENCH_METRICS_DIR``; set it to ``0`` or ``off``
to disable dumping).  Each file carries the payload the benchmark
recorded plus a snapshot of the process-wide
:func:`repro.instrument.metrics` registry, so a run's search effort
(nodes visited, cones matched, op-amp sizings, MNA factorizations) is
preserved alongside its wall-times.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import pytest

from repro.instrument import aggregate_spans, metrics, tracing


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _metrics_dir() -> Optional[str]:
    configured = os.environ.get("VASE_BENCH_METRICS_DIR")
    if configured is not None:
        if configured.lower() in ("", "0", "off", "none"):
            return None
        return configured
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def dump_metrics(name: str, payload: Dict[str, object]) -> Optional[str]:
    """Write ``payload`` + a metrics-registry snapshot as JSON.

    Returns the path written, or ``None`` when dumping is disabled.
    """
    directory = _metrics_dir()
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    document = {
        "benchmark": name,
        "payload": payload,
        "metrics": metrics().snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, default=str)
    return path


@pytest.fixture
def bench_metrics(request):
    """Collect-and-dump dict: items put here land in the metrics JSON.

    The process-wide metrics registry is reset before the benchmark
    body runs, so the snapshot in the dump covers this benchmark only;
    the whole benchmark runs under a tracer, so flow phases
    (compile/map/estimate...) land in the dump as per-phase timings.
    """
    metrics().reset()
    payload: Dict[str, object] = {}
    with tracing() as tracer:
        yield payload
    phases = aggregate_spans(tracer.roots)
    if phases:
        payload["phases"] = [
            {
                "path": list(phase.path),
                "calls": phase.calls,
                "mean_s": phase.mean_s,
                "min_s": phase.min_s,
                "max_s": phase.max_s,
                "total_s": phase.total_s,
            }
            for phase in phases
        ]
    path = dump_metrics(request.node.name, payload)
    if path is not None:
        print(f"\n[metrics JSON: {path}]")
