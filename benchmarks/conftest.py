"""Shared helpers for the reproduction benchmarks.

Every benchmark prints a paper-vs-measured comparison after timing the
flow step it exercises, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's tables and figures as terminal output.
"""

from __future__ import annotations

import pytest


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
