"""Design-space exploration: performance constraints vs implementation cost.

Figure 1 of the paper shows synthesis driven by a design-space
exploration loop over the performance estimation tools.  This benchmark
traces the loop's central trade-off on the receiver: as the required
signal bandwidth grows, the sized op amps need more transconductance
and bias current, so estimated area and power rise monotonically — and
past the process's reach, synthesis correctly reports infeasibility.
"""

import pytest

from repro.apps import receiver
from repro.diagnostics import SynthesisError
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, synthesize

from conftest import banner

BANDWIDTHS = [5e3, 20e3, 100e3, 400e3, 2e6, 5e6]


def run_sweep():
    rows = []
    for bandwidth in BANDWIDTHS:
        options = FlowOptions(
            constraints=ConstraintSet(signal_bandwidth_hz=bandwidth),
            derive_constraints_from_annotations=False,
        )
        try:
            result = synthesize(receiver.VASS_SOURCE, options=options)
            rows.append(
                {
                    "bandwidth": bandwidth,
                    "area": result.estimate.area_um2,
                    "power": result.estimate.power * 1e3,
                    "opamps": result.estimate.opamps,
                    "feasible": True,
                }
            )
        except SynthesisError:
            rows.append(
                {
                    "bandwidth": bandwidth,
                    "area": float("nan"),
                    "power": float("nan"),
                    "opamps": 0,
                    "feasible": False,
                }
            )
    return rows


def test_bandwidth_area_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner("Design-space exploration: receiver area/power vs bandwidth")
    print(f"{'band [kHz]':>10} {'area [um^2]':>12} {'power [mW]':>11} "
          f"{'op amps':>8} {'feasible':>9}")
    for row in rows:
        area = f"{row['area']:,.0f}" if row["feasible"] else "-"
        power = f"{row['power']:.2f}" if row["feasible"] else "-"
        print(
            f"{row['bandwidth']/1e3:>10.0f} {area:>12} {power:>11} "
            f"{row['opamps']:>8} {str(row['feasible']):>9}"
        )
    feasible = [row for row in rows if row["feasible"]]
    assert len(feasible) >= 3
    # Area and power rise monotonically with the bandwidth requirement.
    areas = [row["area"] for row in feasible]
    powers = [row["power"] for row in feasible]
    assert areas == sorted(areas)
    assert powers == sorted(powers)
    # The 2 um process gives out eventually (the paper's constraint
    # satisfaction aspect: infeasible points are rejected, not fudged).
    assert not rows[-1]["feasible"]
