"""Figure 7: synthesis of the receiver module.

Reproduces the flagship experiment's structural result: the Figure-2
specification compiles into the Figure-7a signal-flow graph (blocks
1-4 + the FSM) and maps onto the Figure-7b circuit: the weighted-sum
amplifier, the compensation amplifier with switched gain, the inferred
output stage (block 4, derived from port annotations rather than
VHDL-AMS code), and a zero-cross detector realizing the control part.
"""

import pytest

from repro.apps import receiver
from repro.flow import synthesize
from repro.vhif import BlockKind

from conftest import banner


def test_figure7_mapping(benchmark):
    result = benchmark(lambda: synthesize(receiver.VASS_SOURCE))
    banner("Figure 7: synthesis of the receiver module")
    print("(a) VHIF representation:")
    print(result.design.describe())
    print("\n(b) circuit structure:")
    print(result.netlist.describe())

    # Block 1: the weighted sum of line and local.
    summers = result.netlist.by_component("summing_amplifier")
    assert len(summers) == 1
    assert summers[0].params["weights"] == [2.0, 1.0]

    # Blocks 2+3: multiplication by rvar realized as ONE amplifier with
    # a switched gain network (the paper's two-amplifier circuit).
    switched = result.netlist.by_component("switched_gain_amplifier")
    assert len(switched) == 1
    assert sorted(switched[0].params["gains"]) == [0.5, 1.25]

    # Block 4: inferred from the terminal-port attributes, not from
    # VHDL-AMS code.
    stages = result.netlist.by_component("output_stage")
    assert len(stages) == 1
    assert stages[0].params["high"] == pytest.approx(1.5)
    assert stages[0].params["load_ohms"] == pytest.approx(270.0)

    # Control part: "its behavior can be realized by a simple zero-cross
    # detector" — the FSM signal c1 is realized by the detector's output.
    detectors = result.netlist.by_component("zero_cross_detector")
    assert len(detectors) == 1
    assert any(r.kind == "zero_cross" for r in result.realized_controls)
    assert isinstance(switched[0].control, int)  # net, not abstract signal

    print("\nblock-to-circuit correspondence:")
    print("  block1 (weighted sum)    -> summing_amplifier")
    print("  block2+3 (x rvar, select)-> switched_gain_amplifier")
    print("  block4 (inferred)        -> output_stage (limit 1.5 V, 270 ohm)")
    print("  FSM / control            -> zero_cross_detector (c1)")
    print(f"\npaper: {receiver.PAPER_ROW['components']}")
    print(f"ours:  {result.summary}")


def test_figure7_two_amplifiers(benchmark):
    """The paper's headline count: 2 amplifiers + 1 zero-cross det."""
    result = benchmark(lambda: synthesize(receiver.VASS_SOURCE))
    cats = dict(result.netlist.category_counts())
    assert cats["amplif."] == 2
    assert cats["zero-cross det."] == 1


def test_figure7_search_statistics(benchmark):
    from repro.flow import FlowOptions
    from repro.synth import MapperOptions

    result = benchmark(
        lambda: synthesize(
            receiver.VASS_SOURCE,
            options=FlowOptions(mapper=MapperOptions(collect_tree=True)),
        )
    )
    banner("Figure 7: mapping search effort")
    stats = result.mapping.statistics
    print(
        f"nodes visited: {stats.nodes_visited}, pruned: "
        f"{stats.nodes_pruned}, complete mappings: "
        f"{stats.complete_mappings}, runtime: {stats.runtime_s*1e3:.2f} ms"
    )
    print("(the paper notes the mapping was 'quite straightforward')")
    assert stats.complete_mappings >= 1
    assert stats.runtime_s < 1.0
