"""Ablations of the design choices DESIGN.md calls out.

1. bounding rule on/off — node counts at equal optimum;
2. sequencing rule (largest-first vs smallest-first vs arbitrary) —
   when the first-found solution is good, bounding bites earlier;
3. hardware sharing on/off — area impact on a share-friendly workload;
4. functional transformations on/off — feasibility under a bandwidth
   constraint (the cascade substitution);
5. the two-step claim: DAE solver enumeration (technology-independent
   compile step) exposes alternative topologies to the mapper.
"""

import pytest

from repro.compiler import compile_design, enumerate_solvers
from repro.estimation import ConstraintSet, Estimator
from repro.flow import FlowOptions, synthesize
from repro.synth import MapperOptions, map_sfg
from repro.vhif.sfg import BlockKind, SignalFlowGraph

from conftest import banner


def share_friendly_sfg():
    """Two identical conditioning chains feeding separate outputs."""
    g = SignalFlowGraph("share")
    x = g.add(BlockKind.INPUT, name="x")
    outs = []
    for index in range(3):
        scale = g.add(BlockKind.SCALE, gain=2.5)
        g.connect(x, scale)
        out = g.add(BlockKind.OUTPUT, name=f"y{index}")
        g.connect(scale, out)
        outs.append(out)
    return g


def ladder(n=4):
    g = SignalFlowGraph("ladder")
    x = g.add(BlockKind.INPUT, name="x")
    previous = x
    for i in range(n):
        s = g.add(BlockKind.SCALE, gain=2.0 + i)
        g.connect(previous, s)
        a = g.add(BlockKind.ADD, n_inputs=2)
        g.connect(s, a, port=0)
        g.connect(x, a, port=1)
        previous = a
    out = g.add(BlockKind.OUTPUT, name="y")
    g.connect(previous, out)
    return g


def test_ablation_bounding(benchmark):
    def run():
        on = map_sfg(ladder(), options=MapperOptions(enable_bounding=True))
        off = map_sfg(ladder(), options=MapperOptions(enable_bounding=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 1: bounding rule")
    print(f"bounding ON : {on.statistics.nodes_visited} nodes "
          f"({on.statistics.nodes_pruned} pruned)")
    print(f"bounding OFF: {off.statistics.nodes_visited} nodes")
    print(f"same optimum: {on.netlist.total_opamps()} op amps both ways")
    assert on.statistics.nodes_visited < off.statistics.nodes_visited
    assert on.estimate.area == pytest.approx(off.estimate.area)


def test_ablation_bounding_modes(benchmark):
    """Future work #2: more effective bounding rules.

    Compares the paper's MinArea bound, the exact accumulated-area
    bound, and their combination at identical optima.
    """

    def run():
        results = {}
        for mode in ("minarea", "exact", "combined"):
            results[mode] = map_sfg(
                ladder(5), options=MapperOptions(bounding_mode=mode)
            )
        off = map_sfg(ladder(5), options=MapperOptions(enable_bounding=False))
        return results, off

    results, off = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 1b: bounding-rule strength (Section 7 future work)")
    print(f"{'mode':<10} {'nodes':>6} {'pruned':>7}")
    print(f"{'(off)':<10} {off.statistics.nodes_visited:>6} {0:>7}")
    for mode, result in results.items():
        print(
            f"{mode:<10} {result.statistics.nodes_visited:>6} "
            f"{result.statistics.nodes_pruned:>7}"
        )
    areas = {round(r.estimate.area, 18) for r in results.values()}
    areas.add(round(off.estimate.area, 18))
    assert len(areas) == 1  # every bound preserves the optimum
    # The combined rule is at least as strong as either component.
    assert (
        results["combined"].statistics.nodes_visited
        <= results["minarea"].statistics.nodes_visited
    )
    assert (
        results["combined"].statistics.nodes_visited
        <= results["exact"].statistics.nodes_visited
    )


def test_ablation_sequencing(benchmark):
    def run():
        results = {}
        for order in ("largest_first", "smallest_first", "arbitrary"):
            results[order] = map_sfg(
                ladder(), options=MapperOptions(sequencing=order)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 2: sequencing rule")
    for order, result in results.items():
        print(
            f"{order:<16} first solution: "
            f"{result.solution_opamps[0] if result.solution_opamps else '-'}"
            f" op amps | nodes: {result.statistics.nodes_visited} "
            f"(pruned {result.statistics.nodes_pruned})"
        )
    largest = results["largest_first"]
    smallest = results["smallest_first"]
    # The paper's rule finds a good solution early...
    assert largest.solution_opamps[0] <= smallest.solution_opamps[0]
    # ...which makes the bounding rule at least as effective.
    assert (
        largest.statistics.nodes_visited
        <= smallest.statistics.nodes_visited
    )
    # The optimum itself is order-independent.
    areas = {round(r.estimate.area, 18) for r in results.values()}
    assert len(areas) == 1


def test_ablation_sharing(benchmark):
    def run():
        on = map_sfg(
            share_friendly_sfg(), options=MapperOptions(enable_sharing=True)
        )
        off = map_sfg(
            share_friendly_sfg(), options=MapperOptions(enable_sharing=False)
        )
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 3: hardware sharing")
    print(f"sharing ON : {on.netlist.total_opamps()} op amps, "
          f"area {on.estimate.area_um2:,.0f} um^2")
    print(f"sharing OFF: {off.netlist.total_opamps()} op amps, "
          f"area {off.estimate.area_um2:,.0f} um^2")
    assert on.netlist.total_opamps() == 1
    assert off.netlist.total_opamps() == 3
    assert on.estimate.area < off.estimate.area / 2


def test_ablation_transforms(benchmark):
    source = """
ENTITY hi_gain IS
PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE a OF hi_gain IS
BEGIN
  y == -40.0 * u;
END ARCHITECTURE;
"""
    constraints = ConstraintSet(signal_bandwidth_hz=200.0e3)

    def run():
        with_t = synthesize(
            source,
            options=FlowOptions(
                constraints=constraints,
                mapper=MapperOptions(enable_transforms=True),
            ),
        )
        try:
            without = synthesize(
                source,
                options=FlowOptions(
                    constraints=constraints,
                    mapper=MapperOptions(enable_transforms=False),
                ),
            )
        except Exception:
            without = None
        return with_t, without

    with_t, without = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 4: functional transformations (cascade substitution)")
    print(f"with transforms:    {with_t.netlist.instances[0].spec.name} "
          f"({with_t.estimate.opamps} op amps) — feasible")
    print(f"without transforms: "
          f"{'INFEASIBLE (as expected)' if without is None else without.summary}")
    assert with_t.netlist.instances[0].transform == "cascade_split"
    assert without is None


def test_ablation_solver_enumeration(benchmark):
    """The two-step claim: the compile step exposes several solvers."""
    source = """
ENTITY solver_choice IS
PORT (QUANTITY u : IN real; QUANTITY v : IN real;
      QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE a OF solver_choice IS
  QUANTITY a : real;
  QUANTITY b : real;
BEGIN
  u == a * 2.0;
  a == b - 1.0;
  v == b + y;
  y == a + b;
END ARCHITECTURE;
"""

    def run():
        return enumerate_solvers(source)

    solvers = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation 5: DAE causalization enumeration (two-step claim)")
    print(f"{len(solvers)} distinct solver topologies for one DAE set:")
    for index, solver in enumerate(solvers):
        print(f"solver {index}:")
        print(solver.describe())
    assert len(solvers) >= 2
