"""Figure 4: translation of a while statement.

The paper transforms a while loop into a sampling structure with two
distinct conditional blocks (icontr for loop entry, contr for loop
continuation), switches sw1/sw3, and two sample-and-hold circuits
S/H1 (trails the loop body) and S/H2 (holds the result constant while
the body executes).  This benchmark compiles a Newton square-root loop,
verifies the block inventory, and simulates the sampling behavior.
"""

import pytest

from repro.compiler import compile_design
from repro.vhif import BlockKind, Interpreter

from conftest import banner

WHILE_SOURCE = """
ENTITY sqrt_unit IS
PORT (
  QUANTITY a : IN real IS voltage RANGE 0.5 TO 16.0;
  QUANTITY root : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE newton OF sqrt_unit IS
BEGIN
  PROCEDURAL IS
    VARIABLE x : real;
  BEGIN
    x := a;
    WHILE (abs(x * x - a) > 0.0001) LOOP
      x := 0.5 * (x + a / x);
    END LOOP;
    root := x;
  END PROCEDURAL;
END ARCHITECTURE;
"""


def test_figure4_structure(benchmark):
    design = benchmark(lambda: compile_design(WHILE_SOURCE))
    banner("Figure 4: while-statement translation")
    sfg = design.main_sfg
    print(sfg.describe())

    names = [b.name for b in sfg.blocks]
    inventory = {
        "icontr (entry conditional)": sum(
            1 for n in names if n.startswith("icontr")
        ),
        "contr (loop conditional)": sum(
            1 for n in names if n.startswith("contr")
        ),
        "sw1 (input routing switch)": sum(
            1 for n in names if n.startswith("sw1")
        ),
        "sw3 (S/H2 guard switch)": sum(
            1 for n in names if n.startswith("sw3")
        ),
        "S/H1 (trails loop body)": sum(
            1 for n in names if n.startswith("sh1")
        ),
        "S/H2 (holds the output)": sum(
            1 for n in names if n.startswith("sh2")
        ),
    }
    print("\nFigure-4 block inventory:")
    for label, count in inventory.items():
        print(f"  {label:<30} {count}")
    assert all(count == 1 for count in inventory.values())

    # Two DISTINCT conditional blocks (the paper's point: avoid
    # multiplexing the conditional's inputs).
    comparators = sfg.blocks_of_kind(BlockKind.COMPARATOR)
    assert len(comparators) >= 2


def test_figure4_sampling_behavior(benchmark):
    design = compile_design(WHILE_SOURCE)

    def simulate():
        interp = Interpreter(design, dt=1e-4, inputs={"a": lambda t: 9.0})
        return interp.run(0.01, probes=["root"])

    traces = benchmark(simulate)
    banner("Figure 4: sampled Newton iteration")
    final = traces.final("root")
    print(f"sqrt(9.0) through the Figure-4 structure: {final:.5f}")
    print("(the loop iterates once per sampling period; S/H2 presents")
    print(" the converged value and holds it while the body re-executes)")
    assert final == pytest.approx(3.0, abs=1e-3)


def test_figure4_tracks_input_changes(benchmark):
    design = compile_design(WHILE_SOURCE)

    def simulate():
        interp = Interpreter(
            design,
            dt=1e-4,
            inputs={"a": lambda t: 4.0 if t < 0.01 else 16.0},
        )
        first = interp.run(0.01, probes=["root"]).final("root")
        second = interp.run(0.01, probes=["root"]).final("root")
        return first, second

    first, second = benchmark(simulate)
    banner("Figure 4: re-solving after an input step")
    print(f"sqrt(4.0)  -> {first:.4f}")
    print(f"sqrt(16.0) -> {second:.4f}")
    assert first == pytest.approx(2.0, abs=1e-2)
    assert second == pytest.approx(4.0, abs=1e-2)
