"""Tests for the one-call flow and the command-line interface."""

import pytest

from repro.cli import main
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, synthesize
from repro.synth import MapperOptions


SOURCE = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""


class TestFlow:
    def test_synthesize_returns_complete_result(self):
        result = synthesize(SOURCE)
        assert result.design.name == "amp"
        assert result.netlist.instances
        assert result.estimate.feasible
        assert result.mapping.statistics.nodes_visited > 0

    def test_summary_format(self):
        result = synthesize(SOURCE)
        assert "amplif." in result.summary

    def test_describe_mentions_stats(self):
        result = synthesize(SOURCE)
        text = result.describe()
        assert "VHIF" in text
        assert "netlist" in text

    def test_options_propagate_constraints(self):
        options = FlowOptions(constraints=ConstraintSet(max_opamps=50))
        result = synthesize(SOURCE, options=options)
        assert result.estimate.opamps <= 50

    def test_mapper_options_propagate(self):
        options = FlowOptions(mapper=MapperOptions(collect_tree=True))
        result = synthesize(SOURCE, options=options)
        assert result.mapping.tree

    def test_fsm_realization_can_be_disabled(self):
        source = SOURCE.replace("-5.0", "-2.0")
        on = synthesize(source, options=FlowOptions())
        off = synthesize(
            source, options=FlowOptions(realize_fsm_controls=False)
        )
        assert on.netlist.total_opamps() == off.netlist.total_opamps()


class TestCli:
    def test_compile_bundled_app(self, capsys):
        assert main(["compile", "receiver"]) == 0
        out = capsys.readouterr().out
        assert "VHIF design" in out
        assert "blocks=" in out

    def test_compile_dot_output(self, capsys):
        assert main(["compile", "function_generator", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_synth_bundled_app(self, capsys):
        assert main(["synth", "function_generator"]) == 0
        out = capsys.readouterr().out
        assert "Schmitt trigger" in out
        assert "search:" in out

    def test_spice_deck_output(self, capsys):
        assert main(["spice", "receiver"]) == 0
        out = capsys.readouterr().out
        assert ".END" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for app in ("receiver", "power_meter", "missile_solver",
                    "iterative_solver", "function_generator"):
            assert app in out

    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "receiver" in out

    def test_compile_from_file(self, tmp_path, capsys):
        path = tmp_path / "amp.vams"
        path.write_text(SOURCE)
        assert main(["compile", str(path)]) == 0
        assert "amp" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        assert main(["compile", "/nonexistent/file.vams"]) == 1
        assert "error" in capsys.readouterr().err

    def test_verify_command(self, capsys):
        assert main(["verify", "biquad_filter", "--frequency", "200",
                     "--t-end", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_ac_command(self, capsys):
        assert main(["ac", "biquad_filter"]) == 0
        out = capsys.readouterr().out
        assert "-3 dB corner" in out

    def test_ac_command_needs_ports(self, tmp_path, capsys):
        path = tmp_path / "noin.vams"
        path.write_text(
            "ENTITY e IS PORT (QUANTITY y : OUT real); END ENTITY;"
            "ARCHITECTURE a OF e IS BEGIN y == 1.0; END ARCHITECTURE;"
        )
        assert main(["ac", str(path)]) == 1

    def test_extra_application_loadable(self, capsys):
        assert main(["compile", "biquad_filter"]) == 0
        assert "biquad_filter" in capsys.readouterr().out

    def test_semantic_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.vams"
        path.write_text(
            "ENTITY e IS PORT (QUANTITY y : OUT real); END ENTITY;"
            "ARCHITECTURE a OF e IS BEGIN y == ghost; END ARCHITECTURE;"
        )
        assert main(["compile", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "bad.vams" in err  # file:line:col: severity: message
