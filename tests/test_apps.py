"""End-to-end tests for the five Table-1 applications."""

import math

import numpy as np
import pytest

from repro.apps import (
    ALL_APPLICATIONS,
    function_generator,
    iterative_solver,
    missile_solver,
    power_meter,
    receiver,
)
from repro.compiler import compile_design
from repro.flow import synthesize
from repro.spice import dc, elaborate, sin_wave, waveform
from repro.synth.fsm_mapping import realize_event_controls
from repro.vhif import Interpreter


@pytest.fixture(scope="module")
def results():
    """Synthesize every application once per test module."""
    return {
        name: synthesize(mod.VASS_SOURCE)
        for name, mod in ALL_APPLICATIONS.items()
    }


def categories(result):
    return dict(result.netlist.category_counts())


class TestTable1ComponentClasses:
    """The synthesized component classes must match the paper's column."""

    def test_receiver(self, results):
        cats = categories(results["receiver"])
        assert cats["amplif."] == 2
        assert cats["zero-cross det."] == 1
        # plus the output stage inferred from the port annotations
        assert cats["output stage"] == 1

    def test_power_meter(self, results):
        cats = categories(results["power_meter"])
        assert cats["zero-cross det."] == 2
        assert cats["S/H"] == 2
        assert cats["ADC"] == 2

    def test_missile_solver(self, results):
        cats = categories(results["missile_solver"])
        assert cats["integ."] == 2
        assert cats["log.amplif."] == 1
        assert cats["anti-log.amplif."] == 1
        assert cats["amplif."] == 4

    def test_iterative_solver(self, results):
        cats = categories(results["iterative_solver"])
        assert cats["integ."] == 3
        assert cats["S/H"] == 1
        assert cats["diff. amplif."] == 1

    def test_function_generator(self, results):
        cats = categories(results["function_generator"])
        assert cats["integ."] == 1
        assert cats["MUX"] == 1
        assert cats["Schmitt trigger"] == 1


class TestTable1Statistics:
    def test_all_apps_synthesize(self, results):
        assert len(results) == 5

    @pytest.mark.parametrize("name", list(ALL_APPLICATIONS))
    def test_estimates_feasible(self, results, name):
        assert results[name].estimate.feasible

    @pytest.mark.parametrize("name", list(ALL_APPLICATIONS))
    def test_block_counts_near_paper(self, results, name):
        stats = results[name].design.statistics()
        paper = ALL_APPLICATIONS[name].PAPER_ROW
        # Structural counts depend on the unpublished original sources;
        # require same order of magnitude (factor <= 2.5).
        assert stats.n_blocks <= paper["vhif_blocks"] * 2.5
        assert stats.n_blocks >= max(1, paper["vhif_blocks"] // 3)

    def test_function_generator_exact_blocks(self, results):
        stats = results["function_generator"].design.statistics()
        assert stats.n_blocks == function_generator.PAPER_ROW["vhif_blocks"]

    def test_receiver_exact_blocks(self, results):
        stats = results["receiver"].design.statistics()
        assert stats.n_blocks == receiver.PAPER_ROW["vhif_blocks"]

    def test_power_meter_exact_blocks(self, results):
        stats = results["power_meter"].design.statistics()
        assert stats.n_blocks == power_meter.PAPER_ROW["vhif_blocks"]


class TestReceiverBehavior:
    def test_weighted_sum_and_compensation(self, results):
        design = results["receiver"].design
        interp = Interpreter(
            design, dt=1e-6,
            inputs={"line": lambda t: 0.5, "local": lambda t: 0.1},
        )
        interp.run(1e-4, probes=[])
        # line 0.5 > 0.2 -> rvar 0.5: (2*0.5 + 0.1)*0.5 = 0.55
        assert float(interp.probe("earph")) == pytest.approx(0.55, rel=1e-6)

    def test_limiting_behavior(self, results):
        design = results["receiver"].design
        interp = Interpreter(
            design, dt=1e-6,
            inputs={
                "line": lambda t: math.sin(2 * math.pi * 1e3 * t),
                "local": lambda t: 0.1,
            },
        )
        traces = interp.run(2e-3, probes=["earph"])
        assert traces["earph"].min() == pytest.approx(-1.5, abs=1e-6)

    def test_circuit_level_clipping(self, results):
        netlist = results["receiver"].netlist
        circuit = elaborate(
            netlist,
            input_waves={"line": sin_wave(1.0, 1e3),
                         "local": lambda t: 0.1},
        )
        out = circuit.output_nodes["earph"]
        sim = circuit.transient(2e-3, 2e-6, probes=[out])
        report = waveform.detect_clipping(sim[out])
        assert report.clipped
        assert report.level == pytest.approx(receiver.LIMIT_LEVEL, rel=0.05)

    def test_expected_earph_helper(self):
        assert receiver.expected_earph(0.5, 0.1) == pytest.approx(0.55)
        assert receiver.expected_earph(-1.0, 0.1) == -1.5


class TestPowerMeterBehavior:
    def test_codes_follow_inputs(self, results):
        design = results["power_meter"].design
        waves = power_meter.mains_waves()
        interp = Interpreter(
            design, dt=1e-4,
            inputs={
                "vsense": waves["vsense"],
                "isense": waves["isense"],
                "sclk": lambda t: (int(t / 2e-3) % 2) == 1,
            },
        )
        interp.run(25e-3, probes=[])
        vcode = float(interp.env["vcode"])
        vs = waves["vsense"]
        # The code must be a plausible recent sample of the input.
        assert -2.0 <= vcode <= 2.0

    def test_sign_detection(self, results):
        design = results["power_meter"].design
        interp = Interpreter(
            design, dt=1e-4,
            inputs={
                "vsense": lambda t: 1.0,
                "isense": lambda t: -1.0,
                "sclk": lambda t: 0.0,
            },
        )
        interp.run(5e-3, probes=[])
        assert interp.env["vsign"] == "1"
        assert interp.env["isign"] == "0"


class TestMissileSolverBehavior:
    def test_trajectory_matches_reference(self, results):
        design = results["missile_solver"].design
        thrust = 3.0
        interp = Interpreter(design, dt=1e-3,
                             inputs={"thrust": lambda t: thrust})
        traces = interp.run(2.0, probes=["vel", "alt"])
        v_ref, h_ref = missile_solver.reference_trajectory(thrust, 2.0, 1e-3)
        assert traces.final("vel") == pytest.approx(v_ref, rel=2e-2)
        assert traces.final("alt") == pytest.approx(h_ref, rel=5e-2)

    def test_no_event_driven_part(self, results):
        design = results["missile_solver"].design
        assert design.statistics().n_states == 0

    def test_drag_uses_log_antilog_blocks(self, results):
        from repro.vhif import BlockKind

        sfg = results["missile_solver"].design.main_sfg
        assert sfg.blocks_of_kind(BlockKind.LOG)
        assert sfg.blocks_of_kind(BlockKind.EXP)


class TestIterativeSolverBehavior:
    def test_converges_to_solution(self, results):
        design = results["iterative_solver"].design
        bx, by, bz = 1.0, 2.0, 3.0
        interp = Interpreter(
            design, dt=1e-3,
            inputs={
                "bx": lambda t: bx,
                "by": lambda t: by,
                "bz": lambda t: bz,
                "strobe": lambda t: t > 19.0,
            },
        )
        interp.run(20.0, probes=[])
        exact = iterative_solver.exact_solution(bx, by, bz)
        assert float(interp.env["x"]) == pytest.approx(exact[0], abs=1e-3)
        assert float(interp.env["y"]) == pytest.approx(exact[1], abs=1e-3)
        assert float(interp.env["z"]) == pytest.approx(exact[2], abs=1e-3)

    def test_sampled_output_latches_solution(self, results):
        design = results["iterative_solver"].design
        interp = Interpreter(
            design, dt=1e-3,
            inputs={
                "bx": lambda t: 2.0,
                "by": lambda t: 2.0,
                "bz": lambda t: 2.0,
                "strobe": lambda t: t > 19.0,
            },
        )
        interp.run(20.0, probes=[])
        exact = iterative_solver.exact_solution(2.0, 2.0, 2.0)
        assert float(interp.env["xs"]) == pytest.approx(exact[0], abs=1e-2)
        assert interp.env["done"] == "1"


class TestFunctionGeneratorBehavior:
    def test_oscillates_at_expected_frequency(self, results):
        design = results["function_generator"].design
        interp = Interpreter(design, dt=1e-6)
        traces = interp.run(5e-3, probes=["ramp"])
        measured = waveform.fundamental_frequency(traces.time,
                                                  traces["ramp"])
        expected = 1.0 / function_generator.expected_period()
        assert measured == pytest.approx(expected, rel=0.05)

    def test_swing_bounded_by_thresholds(self, results):
        design = results["function_generator"].design
        interp = Interpreter(design, dt=1e-6)
        traces = interp.run(5e-3, probes=["ramp"])
        assert traces["ramp"].max() <= function_generator.V_HIGH * 1.05
        assert traces["ramp"].min() >= function_generator.V_LOW * 1.05

    def test_schmitt_realization_reported(self, results):
        realized = results["function_generator"].realized_controls
        assert any(r.kind == "schmitt" for r in realized)
