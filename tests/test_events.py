"""Tests for the unified telemetry bus and its subscribers."""

import io
import json
import time

import pytest

from repro.apps import biquad_filter
from repro.cli import main
from repro.flow import FlowOptions, synthesize
from repro.instrument import (
    CATEGORIES,
    CATEGORY_CACHE,
    CATEGORY_EXPLOG,
    CATEGORY_LIFECYCLE,
    CATEGORY_METRIC,
    CATEGORY_RECOVERY,
    CATEGORY_SPAN,
    JsonlSink,
    ProgressRenderer,
    RingBuffer,
    TelemetryBus,
    TelemetryEvent,
    active_bus,
    current_run_id,
    disable_telemetry,
    enable_telemetry,
    new_run_id,
    run_scope,
    telemetry,
)
from repro.instrument.events import UNSCOPED_RUN


@pytest.fixture(autouse=True)
def clean_bus():
    """No process-wide bus leaks into (or out of) these tests."""
    previous = disable_telemetry()
    yield
    disable_telemetry()
    if previous is not None:
        enable_telemetry(previous)


class TestTelemetryBus:
    def test_publish_assigns_per_run_monotonic_seq(self):
        bus = TelemetryBus()
        with run_scope("run-a"):
            e0 = bus.publish(CATEGORY_SPAN, {"n": 0})
            e1 = bus.publish(CATEGORY_SPAN, {"n": 1})
        with run_scope("run-b"):
            e2 = bus.publish(CATEGORY_SPAN, {"n": 2})
        assert (e0.run_id, e0.seq) == ("run-a", 0)
        assert (e1.run_id, e1.seq) == ("run-a", 1)
        assert (e2.run_id, e2.seq) == ("run-b", 0)
        assert bus.last_seq("run-a") == 2
        assert bus.last_seq("run-b") == 1

    def test_unscoped_publishes_use_the_sentinel_run(self):
        bus = TelemetryBus()
        assert current_run_id() is None
        event = bus.publish(CATEGORY_METRIC, {})
        assert event.run_id == UNSCOPED_RUN

    def test_explicit_run_id_wins(self):
        bus = TelemetryBus()
        with run_scope("scoped"):
            event = bus.publish(CATEGORY_METRIC, {}, run_id="explicit")
        assert event.run_id == "explicit"

    def test_subscribers_see_events_in_seq_order(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        with run_scope("r"):
            for n in range(5):
                bus.publish(CATEGORY_METRIC, {"n": n})
        assert [e.seq for e in seen] == [0, 1, 2, 3, 4]
        assert [e.payload["n"] for e in seen] == [0, 1, 2, 3, 4]

    def test_unsubscribe(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(CATEGORY_METRIC, {})
        bus.unsubscribe(seen.append)  # different bound object: no-op
        bus.unsubscribe(seen.append)
        # Remove the actual subscriber.
        bus._subscribers.clear()
        bus.publish(CATEGORY_METRIC, {})
        assert len(seen) >= 1

    def test_raising_subscriber_is_counted_not_propagated(self):
        bus = TelemetryBus()
        good = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(good.append)
        bus.publish(CATEGORY_SPAN, {})
        bus.publish(CATEGORY_SPAN, {})
        assert bus.errors == 2
        assert len(good) == 2  # the healthy subscriber kept receiving

    def test_counts_and_published(self):
        bus = TelemetryBus()
        bus.publish(CATEGORY_SPAN, {})
        bus.publish(CATEGORY_SPAN, {})
        bus.publish(CATEGORY_CACHE, {})
        assert bus.counts == {CATEGORY_SPAN: 2, CATEGORY_CACHE: 1}
        assert bus.published() == 3

    def test_event_json_round_trip(self):
        event = TelemetryEvent(
            run_id="r", seq=3, ts=1.5, category=CATEGORY_LIFECYCLE,
            payload={"kind": "run", "obj": object()},
        )
        loaded = json.loads(event.to_json())
        assert loaded["run_id"] == "r"
        assert loaded["seq"] == 3
        assert isinstance(loaded["payload"]["obj"], str)  # coerced


class TestRunScope:
    def test_nested_scopes_restore(self):
        assert current_run_id() is None
        with run_scope("outer"):
            assert current_run_id() == "outer"
            with run_scope("inner"):
                assert current_run_id() == "inner"
            assert current_run_id() == "outer"
        assert current_run_id() is None

    def test_new_run_id_is_unique_and_short(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 for i in ids)


class TestActivation:
    def test_enable_disable(self):
        assert active_bus() is None
        bus = enable_telemetry()
        assert active_bus() is bus
        assert disable_telemetry() is bus
        assert active_bus() is None

    def test_context_manager_restores_previous(self):
        outer = enable_telemetry()
        with telemetry() as inner:
            assert active_bus() is inner
        assert active_bus() is outer
        disable_telemetry()


class TestSubscribers:
    def _event(self, seq=0, payload=None, category=CATEGORY_LIFECYCLE):
        return TelemetryEvent(
            run_id="r", seq=seq, ts=0.0, category=category,
            payload=payload or {},
        )

    def test_jsonl_sink_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink(self._event(seq=0))
            sink(self._event(seq=1))
            assert sink.written == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_jsonl_sink_on_open_stream(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink(self._event())
        sink.close()  # must not close a stream it does not own
        assert stream.getvalue().count("\n") == 1

    def test_ring_buffer_bounds_and_counts_drops(self):
        ring = RingBuffer(capacity=3)
        for n in range(5):
            ring(self._event(seq=n))
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.seq for e in ring.events()] == [2, 3, 4]
        assert [e.seq for e in ring.drain()] == [2, 3, 4]
        assert len(ring) == 0

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)

    def test_progress_renderer_tracks_lifecycle(self):
        stream = io.StringIO()
        progress = ProgressRenderer(stream=stream)
        for phase in ("queued", "queued", "started"):
            progress(self._event(payload={
                "kind": "file", "phase": phase, "file": "a.vhd",
            }))
        assert stream.getvalue() == ""  # nothing terminal yet
        progress(self._event(payload={
            "kind": "file", "phase": "ok", "file": "a.vhd",
        }))
        progress(self._event(payload={
            "kind": "file", "phase": "failed", "file": "b.vhd",
        }))
        out = stream.getvalue()
        assert "[1/2] OK" in out
        assert "[2/2] FAILED" in out
        assert "(ok 1, degraded 0, failed 1)" in out
        # Non-lifecycle and non-file events are ignored.
        progress(self._event(category=CATEGORY_SPAN))
        progress(self._event(payload={"kind": "run", "phase": "ok"}))
        assert progress.counts.done == 2


class TestBusStatsAndErrorMetric:
    def test_subscriber_errors_feed_the_metric(self):
        from repro.instrument import metrics

        registry = metrics()
        registry.reset()
        bus = TelemetryBus()

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.publish(CATEGORY_SPAN, {})
        bus.publish(CATEGORY_SPAN, {})
        assert bus.errors == 2
        assert registry.counter("telemetry.subscriber_errors") == 2
        # The increment must not publish back onto the bus — that
        # would recurse through the failing subscriber forever.
        assert bus.published() == 2
        registry.reset()

    def test_stats_and_repr(self):
        bus = TelemetryBus()
        bus.subscribe(lambda event: None)
        with run_scope("run-x"):
            bus.publish(CATEGORY_SPAN, {})
            bus.publish(CATEGORY_CACHE, {})
        stats = bus.stats()
        assert stats["published"] == 2
        assert stats["counts"] == {CATEGORY_SPAN: 1, CATEGORY_CACHE: 1}
        assert stats["runs"] == 1
        assert stats["subscribers"] == 1
        assert stats["subscriber_errors"] == 0
        assert repr(bus) == (
            "<TelemetryBus subscribers=1 published=2 runs=1 errors=0>"
        )


class TestJsonlSinkFlushPolicy:
    def _event(self, seq=0):
        return TelemetryEvent(
            run_id="r", seq=seq, ts=0.0, category=CATEGORY_SPAN,
            payload={},
        )

    def test_default_flushes_every_event(self):
        sink = JsonlSink(io.StringIO())
        assert sink.flush_every == 1
        sink(self._event(0))
        sink(self._event(1))
        assert sink.flushes == 2
        sink.close()

    def test_flush_every_batches(self):
        sink = JsonlSink(io.StringIO(), flush_every=3)
        for seq in range(7):
            sink(self._event(seq))
        assert sink.flushes == 2  # after events 3 and 6
        sink.close()  # the pending 7th event flushes on close
        assert sink.flushes == 3

    def test_interval_flush(self):
        sink = JsonlSink(
            io.StringIO(), flush_every=None, flush_interval_s=0.05
        )
        sink(self._event(0))
        assert sink.flushes == 0
        time.sleep(0.06)
        sink(self._event(1))
        assert sink.flushes == 1
        sink.close()

    def test_unflushed_lines_still_written_on_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), flush_every=1000)
        for seq in range(5):
            sink(self._event(seq))
        assert sink.flushes == 0
        sink.close()
        assert len(path.read_text().splitlines()) == 5

    def test_rejects_bad_flush_every(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), flush_every=0)


class TestFlowIntegration:
    def test_one_run_emits_every_channel_with_one_run_id(self):
        bus = TelemetryBus()
        ring = RingBuffer(capacity=100_000)
        bus.subscribe(ring)
        result = synthesize(
            biquad_filter.VASS_SOURCE,
            options=FlowOptions(telemetry=bus),
        )
        events = ring.events()
        categories = {e.category for e in events}
        # The acceptance criterion: span, metric, explog, cache and
        # lifecycle events on one bus (recovery appears only when the
        # ladder actually climbs).
        assert {
            CATEGORY_SPAN, CATEGORY_METRIC, CATEGORY_EXPLOG,
            CATEGORY_CACHE, CATEGORY_LIFECYCLE,
        } <= categories
        assert categories <= set(CATEGORIES)
        assert {e.run_id for e in events} == {result.run_id}
        assert [e.seq for e in events] == list(range(len(events)))
        # The run bus also switched the tracer/explog on for the run.
        assert result.trace is not None
        assert result.explog is not None
        # ... and deactivated everything afterwards.
        assert active_bus() is None

    def test_lifecycle_run_events_bracket_the_stream(self):
        bus = TelemetryBus()
        ring = RingBuffer(capacity=100_000)
        bus.subscribe(ring)
        synthesize(
            biquad_filter.VASS_SOURCE,
            options=FlowOptions(telemetry=bus),
        )
        events = ring.events()
        runs = [
            e for e in events
            if e.category == CATEGORY_LIFECYCLE
            and e.payload.get("kind") == "run"
        ]
        assert runs[0].payload["phase"] == "started"
        assert runs[-1].payload["phase"] == "finished"
        assert runs[-1].payload["status"] == "ok"
        assert runs[0] is events[0]
        assert runs[-1] is events[-1]

    def test_failed_run_publishes_failed_lifecycle(self):
        from repro.diagnostics import SynthesisError
        from repro.estimation import ConstraintSet

        bus = TelemetryBus()
        ring = RingBuffer(capacity=100_000)
        bus.subscribe(ring)
        with pytest.raises(SynthesisError):
            synthesize(
                biquad_filter.VASS_SOURCE,
                options=FlowOptions(
                    telemetry=bus,
                    constraints=ConstraintSet(max_opamps=1),
                ),
            )
        finished = [
            e for e in ring.events()
            if e.category == CATEGORY_LIFECYCLE
            and e.payload.get("phase") == "finished"
        ]
        assert finished
        assert finished[-1].payload["status"] == "failed"
        assert active_bus() is None

    def test_recovery_events_reach_the_bus(self):
        from repro.robust.recovery import OUTCOME_FAILED, RecoveryLog

        with telemetry() as bus:
            ring = RingBuffer()
            bus.subscribe(ring)
            with run_scope("r"):
                RecoveryLog().record(
                    "baseline", "mapping", OUTCOME_FAILED, "nope",
                )
        (event,) = ring.events()
        assert event.category == CATEGORY_RECOVERY
        assert event.payload["rung"] == "baseline"
        assert event.payload["outcome"] == OUTCOME_FAILED
        assert event.payload["attempt"] == 1

    def test_joining_an_active_bus_does_not_autotrace(self):
        # When a bus is already active process-wide, the flow's events
        # join it but the FlowOptions.telemetry auto-enable of
        # tracer/explog must not kick in.
        with telemetry() as bus:
            ring = RingBuffer(capacity=100_000)
            bus.subscribe(ring)
            result = synthesize(
                biquad_filter.VASS_SOURCE,
                options=FlowOptions(telemetry=TelemetryBus()),
            )
        assert result.trace is None
        assert result.explog is None
        assert len(ring.events()) > 0

    def test_no_bus_means_no_run_id_cost(self):
        result = synthesize(biquad_filter.VASS_SOURCE)
        # A run id is always established (the ledger needs one even
        # without a bus), but no tracer/explog is forced on.
        assert result.run_id
        assert result.trace is None
        assert result.explog is None


class TestSynthEventsCli:
    def test_synth_events_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.events.jsonl"
        assert main([
            "synth", "biquad_filter", "--events", str(path), "--no-ledger",
        ]) == 0
        err = capsys.readouterr().err
        assert "telemetry:" in err
        events = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert events
        for event in events:
            assert set(event) == {"run_id", "seq", "ts", "category",
                                  "payload"}
        assert {e["category"] for e in events} >= {
            "span", "metric", "explog", "cache", "lifecycle",
        }
        assert len({e["run_id"] for e in events}) == 1
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_synth_events_does_not_print_timing_tree(self, tmp_path,
                                                     capsys):
        # --events turns the tracer on internally; the timing tree must
        # still be opt-in via --trace.
        assert main([
            "synth", "biquad_filter",
            "--events", str(tmp_path / "e.jsonl"), "--no-ledger",
        ]) == 0
        out = capsys.readouterr().out
        assert "timing tree:" not in out

    def test_batch_progress_renders_per_file_lines(self, tmp_path,
                                                   capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "ok.vhd").write_text(biquad_filter.VASS_SOURCE)
        assert main([
            "batch", str(corpus), "--progress", "--no-ledger",
        ]) == 0
        err = capsys.readouterr().err
        assert "[1/1] OK" in err
        assert "ok.vhd" in err
