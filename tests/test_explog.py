"""Tests for the exploration recorder, ``vase explain`` and the DOT tree."""

import json
import os

import pytest

from repro.apps import biquad_filter, power_meter
from repro.cli import main
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, synthesize
from repro.instrument import (
    ExplorationLog,
    active_explog,
    disable_explog,
    enable_explog,
    explogging,
    narrate,
    render_exploration_html,
)
from repro.synth import InterfacingOptions, MapperOptions
from repro.diagnostics import Severity, SynthesisError
from repro.vhif.dot import decision_tree_to_dot


SOURCE = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""


@pytest.fixture()
def clean_explog():
    """Run with no process-wide recorder, restoring whatever was active.

    The CI smoke mode (``VASE_EXPLOG``) keeps a session-wide recorder
    on; tests that assert disabled-path behavior must shed it first.
    """
    previous = disable_explog()
    yield
    if previous is not None:
        enable_explog(previous)


class TestExplorationLog:
    def test_emit_assigns_sequence_numbers(self):
        log = ExplorationLog()
        log.emit("a", x=1)
        log.emit("b", y=2)
        assert [e["seq"] for e in log] == [0, 1]
        assert len(log) == 2

    def test_of_kind_filters(self):
        log = ExplorationLog()
        log.emit("prune", minarea_bound=2.0, exact_bound=1.0)
        log.emit("alloc")
        log.emit("prune", minarea_bound=1.0, exact_bound=3.0)
        assert len(log.of_kind("prune")) == 2
        assert log.of_kind("alloc")[0]["event"] == "alloc"

    def test_prune_breakdown_keys_by_decisive_bound(self):
        log = ExplorationLog()
        log.emit("prune", minarea_bound=2.0, exact_bound=1.0)
        log.emit("prune", minarea_bound=1.0, exact_bound=3.0)
        log.emit("prune", minarea_bound=5.0, exact_bound=5.0)
        assert log.prune_breakdown() == {"minarea": 1, "exact": 1, "tie": 1}

    def test_jsonl_round_trip(self, tmp_path):
        log = ExplorationLog()
        log.emit("search_start", sfg="main")
        log.emit("search_end", best_area=1.5)
        path = tmp_path / "run.explog.jsonl"
        log.write(str(path))
        loaded = ExplorationLog.read(str(path))
        assert loaded.events == log.events

    def test_stream_writes_each_event_immediately(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as handle:
            log = ExplorationLog(stream=handle)
            log.emit("alloc", component="integrator")
            handle.flush()
            lines = path.read_text().splitlines()
        assert json.loads(lines[0])["component"] == "integrator"

    def test_enable_honors_empty_log_with_stream(self, clean_explog,
                                                 tmp_path):
        # An empty log is falsy (__len__ == 0); enable/explogging must
        # test ``is None``, not truthiness, or a fresh streaming log
        # would be silently replaced.
        with open(tmp_path / "s.jsonl", "w") as handle:
            log = ExplorationLog(stream=handle)
            assert enable_explog(log) is log
            assert active_explog() is log
            disable_explog()
            with explogging(log) as active:
                assert active is log

    def test_explogging_restores_previous_recorder(self, clean_explog):
        assert active_explog() is None
        outer = enable_explog()
        try:
            with explogging() as inner:
                assert active_explog() is inner
            assert active_explog() is outer
        finally:
            disable_explog()
        assert active_explog() is None


class TestMapperEvents:
    @pytest.fixture()
    def log(self):
        with explogging() as log:
            synthesize(biquad_filter.VASS_SOURCE)
        return log

    def test_search_start_and_end(self, log):
        (start,) = log.of_kind("search_start")
        (end,) = log.of_kind("search_end")
        assert start["sfg"] == "main"
        assert start["bounding_mode"] == "combined"
        assert end["best_area"] > 0
        assert end["nodes_visited"] > 0

    def test_every_prune_carries_both_bounds_and_incumbent(self, log):
        prunes = log.of_kind("prune")
        assert prunes
        for event in prunes:
            assert event["minarea_bound"] >= 0
            assert event["exact_bound"] >= 0
            assert event["lower_bound"] == pytest.approx(
                max(event["minarea_bound"], event["exact_bound"])
            )
            assert event["incumbent_area"] > 0
            assert event["lower_bound"] >= event["incumbent_area"]

    def test_candidates_record_sequencing_order(self, log):
        events = log.of_kind("candidates")
        assert events
        for event in events:
            assert event["sequencing"] == "largest_first"
            assert event["order"]
            for candidate in event["order"]:
                assert "component" in candidate
                assert "cone" in candidate
                assert "opamps" in candidate
            sizes = [len(c["cone"]) for c in event["order"]]
            assert sizes == sorted(sizes, reverse=True)

    def test_complete_events_carry_estimates(self, log):
        completes = log.of_kind("complete")
        assert completes
        feasible = [e for e in completes if e["feasible"]]
        assert feasible
        for event in feasible:
            assert event["area"] > 0
            assert event["opamps"] >= 1
        assert any(e.get("new_best") for e in feasible)

    def test_causalization_event_names_the_alternative(self, log):
        events = log.of_kind("causalization")
        assert events
        for event in events:
            assert 0 <= event["chosen_index"] < event["n_alternatives"]
            assert event["states"]
            assert event["order"]

    def test_flow_knob_attaches_log_to_result(self, clean_explog):
        result = synthesize(
            biquad_filter.VASS_SOURCE, options=FlowOptions(explog=True)
        )
        assert result.explog is not None
        assert result.explog.of_kind("search_start")
        # The knob must not leave a process-wide recorder behind.
        assert active_explog() is None

    def test_infeasible_completes_name_violated_constraints(self):
        options = FlowOptions(
            explog=True, constraints=ConstraintSet(max_opamps=1)
        )
        with explogging() as log:
            with pytest.raises(SynthesisError) as excinfo:
                synthesize(biquad_filter.VASS_SOURCE, options=options)
        assert "violated constraints" in str(excinfo.value)
        assert "max_opamps" in str(excinfo.value)
        infeasible = [
            e for e in log.of_kind("complete") if not e["feasible"]
        ]
        assert infeasible
        for event in infeasible:
            assert "max_opamps" in event["violations"]
            assert event["violation_messages"]

    def test_failure_message_tallies_violations(self):
        with pytest.raises(SynthesisError) as excinfo:
            synthesize(
                biquad_filter.VASS_SOURCE,
                options=FlowOptions(constraints=ConstraintSet(max_opamps=2)),
            )
        assert "violated constraints" in str(excinfo.value)

    def test_statistics_violation_summary_format(self):
        from repro.synth.mapper import MappingStatistics

        stats = MappingStatistics()
        stats.constraint_violations["min_ugf"] = 3
        stats.constraint_violations["max_opamps"] = 1
        assert stats.violation_summary() == "max_opamps x1, min_ugf x3"
        assert stats.infeasible_mappings == 0
        assert stats.as_dict()["constraint_violations"] == {
            "max_opamps": 1, "min_ugf": 3,
        }


class TestDisabledPath:
    def test_no_recorder_no_events(self, clean_explog, monkeypatch):
        assert active_explog() is None

        def boom(self, event, **fields):  # pragma: no cover
            raise AssertionError(f"emit({event!r}) on the disabled path")

        monkeypatch.setattr(ExplorationLog, "emit", boom)
        result = synthesize(biquad_filter.VASS_SOURCE)
        assert result.explog is None

    def test_mapper_captures_active_recorder_once(self, clean_explog):
        from repro.library import default_library
        from repro.synth import map_sfg
        from repro.compiler import compile_design

        design = compile_design(biquad_filter.VASS_SOURCE)
        result = map_sfg(design.main_sfg, library=default_library())
        assert result.netlist.instances  # ran fine with no recorder


class TestDecisionTreeDot:
    def test_dot_renders_status_colors(self):
        result = synthesize(
            biquad_filter.VASS_SOURCE,
            options=FlowOptions(mapper=MapperOptions(collect_tree=True)),
        )
        dot = decision_tree_to_dot(result.mapping.tree)
        assert dot.startswith("digraph")
        assert "#1baf7a" in dot  # a complete (feasible) leaf
        assert "#eb6834" in dot  # at least one pruned node
        assert "[pruned]" in dot

    def test_dot_handles_empty_tree(self):
        assert "digraph" in decision_tree_to_dot([])


class TestConsolidatedDiagnostics:
    def test_fsm_digital_fallback_surfaces_as_warning(self):
        result = synthesize(power_meter.VASS_SOURCE)
        warnings = [
            d for d in result.diagnostics if d.severity == Severity.WARNING
        ]
        assert any("digital fallback" in d.message for d in warnings)

    def test_interfacing_followers_surface_as_note(self):
        result = synthesize(
            biquad_filter.VASS_SOURCE,
            options=FlowOptions(interfacing=InterfacingOptions(max_fanout=1)),
        )
        assert result.interfacing_added
        notes = [
            d for d in result.diagnostics if d.severity == Severity.NOTE
        ]
        assert any("interfacing: inserted" in d.message for d in notes)


class TestExplainRendering:
    @pytest.fixture(scope="class")
    def result(self):
        return synthesize(
            biquad_filter.VASS_SOURCE,
            options=FlowOptions(
                explog=True,
                trace=True,
                mapper=MapperOptions(collect_tree=True),
            ),
        )

    def test_narrative_sections(self, result):
        text = narrate(result)
        assert "Why this architecture" in text
        assert "chosen mapping" in text
        assert "pruned" in text

    def test_html_report_is_self_contained(self, result):
        html = render_exploration_html(result)
        assert html.startswith("<!DOCTYPE html>")
        assert "<script src=" not in html  # no external resources
        assert 'rel="stylesheet"' not in html
        assert "Prune reasons" in html or "prune" in html.lower()


class TestExplainCli:
    def test_explain_round_trip(self, tmp_path, capsys):
        jsonl = tmp_path / "biquad.explog.jsonl"
        dot = tmp_path / "biquad.dot"
        html = tmp_path / "biquad.html"
        assert main([
            "explain", "biquad_filter",
            "--jsonl", str(jsonl),
            "--dot", str(dot),
            "--html", str(html),
        ]) == 0
        out = capsys.readouterr().out
        assert "Why this architecture" in out
        events = [
            json.loads(line)
            for line in jsonl.read_text().splitlines() if line
        ]
        prunes = [e for e in events if e["event"] == "prune"]
        assert prunes
        for event in prunes:
            assert "minarea_bound" in event
            assert "exact_bound" in event
            assert "incumbent_area" in event
        assert "digraph" in dot.read_text()
        assert "<!DOCTYPE html>" in html.read_text()

    def test_explain_from_example_file(self, tmp_path, monkeypatch, capsys):
        example = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples", "biquad.vhd",
        )
        monkeypatch.chdir(tmp_path)  # the default JSONL lands in cwd
        assert main(["explain", example]) == 0
        out = capsys.readouterr().out
        assert "chosen mapping" in out
        assert (tmp_path / "biquad_filter.explog.jsonl").exists()

    def test_explain_leaves_no_global_recorder(self, clean_explog, capsys,
                                               tmp_path):
        assert main([
            "explain", "biquad_filter",
            "--jsonl", str(tmp_path / "b.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert active_explog() is None
