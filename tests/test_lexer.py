"""Unit tests for the VASS lexer."""

import pytest

from repro.diagnostics import LexerError
from repro.vass.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("earph")[:-1]
        assert tok.kind is TokenKind.IDENTIFIER
        assert tok.value == "earph"

    def test_identifiers_are_case_insensitive(self):
        assert values("EARPH Earph earph") == ["earph"] * 3

    def test_keywords_recognized(self):
        toks = tokenize("entity is end")[:-1]
        assert all(t.kind is TokenKind.KEYWORD for t in toks)

    def test_keyword_case_insensitive(self):
        toks = tokenize("ENTITY Architecture proCess")[:-1]
        assert [t.value for t in toks] == ["entity", "architecture", "process"]

    def test_integer_literal(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INTEGER
        assert tok.value == "42"

    def test_real_literal(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.REAL
        assert tok.value == "3.25"

    def test_real_with_exponent(self):
        (tok,) = tokenize("1.5e-3")[:-1]
        assert tok.kind is TokenKind.REAL
        assert float(tok.value) == 1.5e-3

    def test_integer_with_exponent_is_real(self):
        (tok,) = tokenize("2e3")[:-1]
        assert tok.kind is TokenKind.REAL

    def test_underscores_in_numbers(self):
        (tok,) = tokenize("1_000")[:-1]
        assert tok.value == "1000"

    def test_string_literal(self):
        (tok,) = tokenize('"hello"')[:-1]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_string_with_doubled_quote(self):
        (tok,) = tokenize('"a""b"')[:-1]
        assert tok.value == 'a"b'

    def test_character_literal(self):
        (tok,) = tokenize("'1'")[:-1]
        assert tok.kind is TokenKind.CHARACTER
        assert tok.value == "1"


class TestDelimiters:
    def test_compound_delimiters(self):
        assert kinds("== => := <= >= /= ** <>") == [
            TokenKind.EQ_EQ,
            TokenKind.ARROW,
            TokenKind.ASSIGN,
            TokenKind.SIGNAL_ASSIGN,
            TokenKind.GE,
            TokenKind.NE,
            TokenKind.DOUBLE_STAR,
            TokenKind.BOX,
        ]

    def test_simple_delimiters(self):
        assert kinds("( ) ; : , . + - * / < > = | &") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.SEMICOLON,
            TokenKind.COLON,
            TokenKind.COMMA,
            TokenKind.DOT,
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.EQ,
            TokenKind.BAR,
            TokenKind.AMPERSAND,
        ]


class TestCommentsAndWhitespace:
    def test_comment_to_end_of_line(self):
        assert values("a -- comment here\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]

    def test_minus_not_comment(self):
        assert kinds("a - b") == [
            TokenKind.IDENTIFIER,
            TokenKind.MINUS,
            TokenKind.IDENTIFIER,
        ]


class TestAttributeDisambiguation:
    def test_apostrophe_after_identifier_is_attribute(self):
        toks = tokenize("line'above")[:-1]
        assert [t.kind for t in toks] == [
            TokenKind.IDENTIFIER,
            TokenKind.APOSTROPHE,
            TokenKind.KEYWORD,  # 'above' is a keyword
        ]

    def test_apostrophe_after_rparen_is_attribute(self):
        toks = tokenize("(x)'dot")[:-1]
        assert toks[-2].kind is TokenKind.APOSTROPHE

    def test_apostrophe_elsewhere_is_character(self):
        toks = tokenize("c1 <= '1'")[:-1]
        assert toks[-1].kind is TokenKind.CHARACTER

    def test_character_after_comma(self):
        toks = tokenize("f(a, '0')")[:-1]
        assert any(t.kind is TokenKind.CHARACTER for t in toks)


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].location.line == 1
        assert toks[0].location.column == 1
        assert toks[1].location.line == 2
        assert toks[1].location.column == 3

    def test_filename_propagates(self):
        toks = tokenize("x", filename="design.vams")
        assert toks[0].location.filename == "design.vams"


class TestErrors:
    def test_malformed_identifier_double_underscore(self):
        with pytest.raises(LexerError):
            tokenize("a__b")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"abc')

    def test_unterminated_character(self):
        with pytest.raises(LexerError):
            tokenize("x <= 'a")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a # b")


class TestTokenHelpers:
    def test_is_keyword(self):
        tok = tokenize("entity")[0]
        assert tok.is_keyword("entity")
        assert not tok.is_keyword("end")

    def test_receiver_example_tokenizes(self):
        # The Figure-2 flavor of syntax must tokenize cleanly.
        text = "earph == (Aline * line + Alocal * local) * rvar;"
        toks = tokenize(text)
        assert toks[1].kind is TokenKind.EQ_EQ
        assert toks[-1].kind is TokenKind.EOF
