"""Tests for the component library and the pattern matcher."""

import pytest

from repro.diagnostics import SynthesisError
from repro.library import (
    ComponentLibrary,
    ComponentSpec,
    PatternMatcher,
    default_library,
)
from repro.vhif.sfg import BlockKind, CONTROL_PORT, SignalFlowGraph


@pytest.fixture
def matcher():
    return PatternMatcher(default_library())


class TestComponentLibrary:
    def test_default_has_expected_classes(self):
        lib = default_library()
        for name in (
            "inverting_amplifier",
            "summing_amplifier",
            "integrator",
            "log_amplifier",
            "antilog_amplifier",
            "sample_hold",
            "zero_cross_detector",
            "schmitt_trigger",
            "adc",
            "output_stage",
        ):
            assert name in lib

    def test_get_unknown_raises(self):
        with pytest.raises(SynthesisError):
            default_library().get("flux_capacitor")

    def test_duplicate_spec_rejected(self):
        lib = default_library()
        with pytest.raises(SynthesisError):
            lib.add(ComponentSpec(name="integrator", category="x", opamps=1))

    def test_required_gain_scalar(self):
        spec = default_library().get("inverting_amplifier")
        assert spec.required_gain({"gain": -8.0}) == 8.0

    def test_required_gain_weights(self):
        spec = default_library().get("summing_amplifier")
        assert spec.required_gain({"weights": [1.0, -3.0, 2.0]}) == 3.0

    def test_required_gain_default(self):
        spec = default_library().get("sample_hold")
        assert spec.required_gain({}) == 1.0


class TestSingleBlockMatches:
    def match_single(self, matcher, g, block):
        return matcher.match_cone(g, frozenset({block.block_id}), block)

    def test_negative_scale_is_inverting(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=-3.0)
        g.connect(x, s)
        names = {m.component for m in self.match_single(matcher, g, s)}
        assert "inverting_amplifier" in names

    def test_positive_scale_is_noninverting(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=3.0)
        g.connect(x, s)
        names = {m.component for m in self.match_single(matcher, g, s)}
        assert "noninverting_amplifier" in names

    def test_cascade_transform_offered_for_high_gain(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=40.0)
        g.connect(x, s)
        matches = self.match_single(matcher, g, s)
        cascades = [m for m in matches if m.component == "inverting_cascade"]
        assert cascades and cascades[0].transform == "cascade_split"
        assert cascades[0].opamps == 2

    def test_transforms_can_be_disabled(self):
        m = PatternMatcher(default_library(), enable_transforms=False)
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=40.0)
        g.connect(x, s)
        matches = m.match_cone(g, frozenset({s.block_id}), s)
        assert all(match.transform is None for match in matches)

    def test_comparator_without_hysteresis_is_zero_cross(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        c = g.add(BlockKind.COMPARATOR, threshold=0.2)
        g.connect(x, c)
        (match,) = self.match_single(matcher, g, c)
        assert match.component == "zero_cross_detector"

    def test_comparator_with_hysteresis_is_schmitt(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        c = g.add(BlockKind.COMPARATOR, threshold=0.0, hysteresis=0.5)
        g.connect(x, c)
        (match,) = self.match_single(matcher, g, c)
        assert match.component == "schmitt_trigger"

    def test_output_stage_role(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        lim = g.add(BlockKind.LIMIT, low=-1.5, high=1.5, role="output_stage")
        g.connect(x, lim)
        (match,) = self.match_single(matcher, g, lim)
        assert match.component == "output_stage"

    def test_plain_limit_is_limiter(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        lim = g.add(BlockKind.LIMIT, low=-1.0, high=1.0)
        g.connect(x, lim)
        (match,) = self.match_single(matcher, g, lim)
        assert match.component == "limiter"

    def test_switch_has_zero_opamps(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        sw = g.add(BlockKind.SWITCH)
        g.connect(x, sw)
        g.bind_control("c", sw)
        (match,) = self.match_single(matcher, g, sw)
        assert match.component == "analog_switch"
        assert match.opamps == 0
        assert match.control == "c"


class TestWeightedSum:
    def build_weighted_sum(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT, name="a")
        b = g.add(BlockKind.INPUT, name="b")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=3.0)
        adder = g.add(BlockKind.ADD, n_inputs=2)
        g.connect(a, s1)
        g.connect(b, s2)
        g.connect(s1, adder, port=0)
        g.connect(s2, adder, port=1)
        return g, (a, b, s1, s2, adder)

    def test_full_cone_collapses_to_summing_amp(self, matcher):
        g, (a, b, s1, s2, adder) = self.build_weighted_sum()
        cone = frozenset({adder.block_id, s1.block_id, s2.block_id})
        matches = matcher.match_cone(g, cone, adder)
        assert len(matches) == 1
        match = matches[0]
        assert match.component == "summing_amplifier"
        assert match.params["weights"] == [2.0, 3.0]
        assert match.inputs == [a.block_id, b.block_id]

    def test_partial_cone_mixes_weights(self, matcher):
        g, (a, b, s1, s2, adder) = self.build_weighted_sum()
        cone = frozenset({adder.block_id, s1.block_id})
        (match,) = matcher.match_cone(g, cone, adder)
        assert match.params["weights"] == [2.0, 1.0]
        assert match.inputs == [a.block_id, s2.block_id]

    def test_neg_folds_as_minus_one(self, matcher):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.INPUT)
        neg = g.add(BlockKind.NEG)
        adder = g.add(BlockKind.ADD, n_inputs=2)
        g.connect(a, adder, port=0)
        g.connect(b, neg)
        g.connect(neg, adder, port=1)
        cone = frozenset({adder.block_id, neg.block_id})
        (match,) = matcher.match_cone(g, cone, adder)
        assert match.params["weights"] == [1.0, -1.0]

    def test_max_weighted_scales_restriction(self):
        # Figure 6's comp1 folds exactly one scaled input.
        m = PatternMatcher(default_library(), max_weighted_scales=1)
        g, (a, b, s1, s2, adder) = TestWeightedSum().build_weighted_sum()
        full = frozenset({adder.block_id, s1.block_id, s2.block_id})
        assert m.match_cone(g, full, adder) == []
        partial = frozenset({adder.block_id, s1.block_id})
        assert len(m.match_cone(g, partial, adder)) == 1


class TestIntegratorFusion:
    def test_scaled_integrator(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=5.0)
        i = g.add(BlockKind.INTEGRATE, gain=1.0, initial=0.5)
        g.connect(x, s)
        g.connect(s, i)
        cone = frozenset({i.block_id, s.block_id})
        (match,) = matcher.match_cone(g, cone, i)
        assert match.component == "integrator"
        assert match.params["gain"] == 5.0
        assert match.params["initial"] == 0.5

    def test_summing_integrator(self, matcher):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=2.0)
        adder = g.add(BlockKind.ADD, n_inputs=2)
        i = g.add(BlockKind.INTEGRATE, gain=1.0, initial=0.0)
        g.connect(a, s)
        g.connect(s, adder, port=0)
        g.connect(b, adder, port=1)
        g.connect(adder, i)
        cone = frozenset({i.block_id, adder.block_id, s.block_id})
        matches = matcher.match_cone(g, cone, i)
        summing = [m for m in matches if m.component == "summing_integrator"]
        assert summing
        assert summing[0].params["weights"] == [2.0, 1.0]


class TestLogAntilog:
    def test_multiplier_recognized(self, matcher):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.INPUT)
        la = g.add(BlockKind.LOG)
        lb = g.add(BlockKind.LOG)
        add = g.add(BlockKind.ADD, n_inputs=2)
        exp = g.add(BlockKind.EXP)
        g.connect(a, la)
        g.connect(b, lb)
        g.connect(la, add, port=0)
        g.connect(lb, add, port=1)
        g.connect(add, exp)
        cone = frozenset({la.block_id, lb.block_id, add.block_id, exp.block_id})
        matches = matcher.match_cone(g, cone, exp)
        assert any(m.component == "multiplier" for m in matches)

    def test_divider_recognized(self, matcher):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.INPUT)
        la = g.add(BlockKind.LOG)
        lb = g.add(BlockKind.LOG)
        sub = g.add(BlockKind.SUB)
        exp = g.add(BlockKind.EXP)
        g.connect(a, la)
        g.connect(b, lb)
        g.connect(la, sub, port=0)
        g.connect(lb, sub, port=1)
        g.connect(sub, exp)
        cone = frozenset({la.block_id, lb.block_id, sub.block_id, exp.block_id})
        matches = matcher.match_cone(g, cone, exp)
        assert any(m.component == "divider" for m in matches)


class TestSwitchedGain:
    def test_mul_of_const_mux_is_switched_gain(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        c1 = g.add(BlockKind.CONST, value=0.5)
        c2 = g.add(BlockKind.CONST, value=1.25)
        mux = g.add(BlockKind.MUX, n_inputs=2)
        mul = g.add(BlockKind.MUL)
        g.connect(c1, mux, port=0)
        g.connect(c2, mux, port=1)
        g.bind_control("c1", mux)
        g.connect(x, mul, port=0)
        g.connect(mux, mul, port=1)
        cone = frozenset({mul.block_id, mux.block_id})
        (match,) = matcher.match_cone(g, cone, mul)
        assert match.component == "switched_gain_amplifier"
        assert match.params["gains"] == [0.5, 1.25]
        assert match.control == "c1"
        assert match.inputs == [x.block_id]

    def test_non_const_mux_not_matched(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        y = g.add(BlockKind.INPUT)
        c = g.add(BlockKind.CONST, value=1.0)
        mux = g.add(BlockKind.MUX, n_inputs=2)
        mul = g.add(BlockKind.MUL)
        g.connect(y, mux, port=0)
        g.connect(c, mux, port=1)
        g.bind_control("s", mux)
        g.connect(x, mul, port=0)
        g.connect(mux, mul, port=1)
        cone = frozenset({mul.block_id, mux.block_id})
        assert matcher.match_cone(g, cone, mul) == []


class TestCandidateOrdering:
    def test_largest_cones_first(self, matcher):
        g, (a, b, s1, s2, adder) = TestWeightedSum().build_weighted_sum()
        candidates = matcher.candidates(g, adder)
        sizes = [c.size for c in candidates]
        assert sizes == sorted(sizes, reverse=True)

    def test_signature_equality_for_sharing(self, matcher):
        g = SignalFlowGraph()
        x = g.add(BlockKind.INPUT)
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=2.0)
        g.connect(x, s1)
        g.connect(x, s2)
        (m1,) = [
            m
            for m in matcher.match_cone(g, frozenset({s1.block_id}), s1)
            if m.component == "noninverting_amplifier"
        ]
        (m2,) = [
            m
            for m in matcher.match_cone(g, frozenset({s2.block_id}), s2)
            if m.component == "noninverting_amplifier"
        ]
        assert m1.signature() == m2.signature()
