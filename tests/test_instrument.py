"""Tests for the observability subsystem (tracer, metrics, profiling).

Covers the ISSUE-1 acceptance criteria: span nesting, the
near-zero-overhead disabled mode, Chrome trace-event JSON validity,
the metrics registry, the ``FlowOptions.trace`` knob, the CLI flags
(``vase synth --trace`` / ``--trace-json`` / ``vase profile``) and the
tracing-disabled overhead regression on the biquad flow.
"""

import json
import time

import pytest

from repro.apps import biquad_filter
from repro.cli import main
from repro.flow import FlowOptions, synthesize
from repro.instrument import (
    MetricsRegistry,
    Tracer,
    active_tracer,
    metrics,
    profile_flow,
    trace_phase,
    tracing,
)
from repro.instrument.tracer import NULL_SPAN


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracing(tracer):
            with trace_phase("outer"):
                with trace_phase("inner_a"):
                    pass
                with trace_phase("inner_b"):
                    with trace_phase("leaf"):
                        pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        # Child durations are contained in the parent's.
        assert outer.duration_s >= sum(c.duration_s for c in outer.children)
        assert outer.self_time_s >= 0.0

    def test_annotations_recorded(self):
        with tracing() as tracer:
            with trace_phase("work", kind="test") as span:
                span.annotate(items=3)
        span = tracer.roots[0]
        assert span.attrs == {"kind": "test", "items": 3}

    def test_exception_closes_dangling_spans(self):
        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(RuntimeError):
                with trace_phase("outer"):
                    inner = trace_phase("inner")
                    inner.__enter__()
                    raise RuntimeError("boom")
        outer = tracer.roots[0]
        assert outer.duration_s > 0
        assert outer.children[0].duration_s > 0
        assert tracer._stack == []

    def test_disabled_returns_shared_null_span(self):
        assert active_tracer() is None
        assert trace_phase("anything") is NULL_SPAN
        with trace_phase("anything") as span:
            span.annotate(ignored=True)  # must be a no-op, not an error

    def test_disabled_mode_overhead_is_tiny(self):
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with trace_phase("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
        # The null path is a global load + context-manager protocol;
        # even slow CI machines do that well under 5 microseconds.
        assert per_call < 5e-6

    def test_nested_tracing_restores_previous(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_format_tree(self):
        with tracing() as tracer:
            with trace_phase("a"):
                with trace_phase("b") as span:
                    span.annotate(count=7)
        tree = tracer.format_tree()
        assert "a" in tree and "b" in tree
        assert "ms" in tree
        assert "count=7" in tree
        # The child renders indented under the root.
        lines = tree.splitlines()
        assert lines[1].startswith("`- b") or "`- b" in lines[1]

    def test_find(self):
        with tracing() as tracer:
            with trace_phase("x"):
                with trace_phase("y"):
                    pass
                with trace_phase("y"):
                    pass
        assert len(tracer.find("y")) == 2
        assert tracer.find("missing") == []


class TestChromeTrace:
    def test_export_is_valid_json_with_complete_events(self):
        with tracing() as tracer:
            with trace_phase("root", design="d"):
                with trace_phase("child"):
                    pass
        document = json.loads(tracer.chrome_json(metadata={"run": "test"}))
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        root = next(e for e in events if e["name"] == "root")
        child = next(e for e in events if e["name"] == "child")
        # The child event nests inside the root on the timeline.
        assert child["ts"] >= root["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3
        assert root["args"]["design"] == "d"
        assert document["otherData"]["run"] == "test"

    def test_non_jsonable_attrs_coerced(self):
        with tracing() as tracer:
            with trace_phase("p", obj=object()):
                pass
        document = json.loads(tracer.chrome_json())
        assert isinstance(document["traceEvents"][0]["args"]["obj"], str)


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_gauges_and_histograms(self):
        registry = MetricsRegistry()
        registry.gauge("g", 2.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        assert registry.gauge_value("g") == 2.5
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert histogram.mean == 2.0
        assert histogram.min == 1.0 and histogram.max == 3.0

    def test_disable_stops_publishing(self):
        registry = MetricsRegistry()
        registry.disable()
        registry.inc("a")
        registry.gauge("g", 1.0)
        registry.observe("h", 1.0)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        registry.enable()
        registry.inc("a")
        assert registry.counter("a") == 1

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.gauge("g", 1.5)
        registry.observe("h", 4.0)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed["counters"]["c"] == 2
        assert parsed["histograms"]["h"]["count"] == 1

    def test_format_table(self):
        registry = MetricsRegistry()
        registry.inc("some.counter", 3)
        registry.observe("some.histogram", 2.0)
        table = registry.format_table()
        assert "some.counter" in table
        assert "some.histogram" in table


class TestHistogramReservoir:
    def test_snapshot_reports_p50_and_p95(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            registry.observe("h", float(value))
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["count"] == 100
        # Below the reservoir bound the quantiles are exact
        # (nearest-rank on every observed value).
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0

    def test_empty_histogram_snapshot_shape_unchanged(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        registry.histogram("h").count = 0  # simulate an empty histogram
        from repro.instrument.metrics import Histogram

        assert Histogram().snapshot() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_reservoir_is_bounded_and_deterministic(self):
        from repro.instrument.metrics import RESERVOIR_SIZE, Histogram

        def fill():
            histogram = Histogram()
            for value in range(10 * RESERVOIR_SIZE):
                histogram.observe(float(value))
            return histogram

        first, second = fill(), fill()
        assert len(first._reservoir) == RESERVOIR_SIZE
        # Seeded sampling: two identical streams sample identically.
        assert first._reservoir == second._reservoir
        assert first.quantile(0.5) == second.quantile(0.5)

    def test_quantiles_are_approximate_beyond_the_bound(self):
        from repro.instrument.metrics import RESERVOIR_SIZE, Histogram

        histogram = Histogram()
        total = 20 * RESERVOIR_SIZE
        for value in range(total):
            histogram.observe(float(value))
        # Algorithm R keeps a uniform sample, so the estimates stay
        # within a loose band of the true quantiles.
        assert abs(histogram.quantile(0.5) - total / 2) < total * 0.15
        assert histogram.quantile(0.95) > total * 0.8


class TestFlowTracing:
    def test_trace_knob_collects_phase_tree(self):
        result = synthesize(
            biquad_filter.VASS_SOURCE, options=FlowOptions(trace=True)
        )
        assert result.trace is not None
        names = {s.name for s in result.trace.find("synthesize")}
        assert names == {"synthesize"}
        for phase in ("compile", "map", "estimate"):
            assert result.trace.find(phase), f"missing phase {phase}"
        # The mapper annotates its span with search counters.
        map_span = result.trace.find("map")[0]
        assert map_span.attrs["nodes_visited"] > 0
        assert "truncated" in map_span.attrs
        # Tracing is deactivated again after the flow.
        assert active_tracer() is None

    def test_trace_off_by_default(self):
        result = synthesize(biquad_filter.VASS_SOURCE)
        assert result.trace is None

    def test_flow_joins_active_tracer(self):
        with tracing() as tracer:
            result = synthesize(biquad_filter.VASS_SOURCE)
        assert result.trace is tracer
        assert tracer.find("synthesize")

    def test_flow_publishes_metrics(self):
        registry = metrics()
        before = registry.counter("mapper.nodes_visited")
        result = synthesize(biquad_filter.VASS_SOURCE)
        after = registry.counter("mapper.nodes_visited")
        assert after - before == result.mapping.statistics.nodes_visited
        assert registry.counter("patterns.candidate_calls") > 0
        assert registry.counter("estimator.instance_estimates") > 0
        assert registry.counter("frontend.lexer.tokens") > 0
        assert registry.counter("frontend.parser.ast_nodes") > 0

    def test_tracing_disabled_overhead_under_5_percent(self):
        """ISSUE-1 acceptance: the instrumented flow with tracing
        disabled stays within 5% of an uninstrumented-equivalent run
        (metrics publishing switched off) on the biquad flow."""

        def best_time(repeats=7):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                synthesize(biquad_filter.VASS_SOURCE)
                best = min(best, time.perf_counter() - start)
            return best

        registry = metrics()
        synthesize(biquad_filter.VASS_SOURCE)  # warm-up
        try:
            registry.disable()
            baseline = best_time()
            registry.enable()
            measured = best_time()
        finally:
            registry.enable()
        # 5% relative budget plus a small absolute epsilon so scheduler
        # noise on a ~10 ms flow cannot flake the assertion.
        assert measured <= baseline * 1.05 + 2e-3, (
            f"tracing-disabled flow took {measured * 1e3:.2f} ms vs "
            f"baseline {baseline * 1e3:.2f} ms"
        )


class TestProfileFlow:
    def test_profile_aggregates_phases(self):
        report = profile_flow(biquad_filter.VASS_SOURCE, repeat=2)
        assert report.design == "biquad_filter"
        assert report.repeat == 2
        by_name = {p.name: p for p in report.phases}
        assert by_name["synthesize"].calls == 2
        assert by_name["map"].depth == 1
        assert by_name["map"].min_s <= by_name["map"].mean_s <= by_name["map"].max_s
        assert report.metrics["counters"]["mapper.runs"] >= 2
        text = report.describe()
        assert "synthesize" in text and "mean" in text
        parsed = json.loads(report.to_json())
        assert parsed["repeat"] == 2
        assert parsed["phases"][0]["path"] == ["synthesize"]

    def test_profile_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            profile_flow(biquad_filter.VASS_SOURCE, repeat=0)


class TestCliTracing:
    def test_synth_trace_prints_timing_tree(self, capsys):
        assert main(["synth", "biquad_filter", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "timing tree:" in out
        assert "synthesize" in out
        assert "map" in out
        assert "nodes_visited=" in out
        assert "metrics:" in out

    def test_synth_trace_json_writes_valid_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main([
            "synth", "biquad_filter", "--trace-json", str(path)
        ]) == 0
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert any(e["name"] == "synthesize" for e in document["traceEvents"])
        assert document["otherData"]["design"] == "biquad_filter"

    def test_synth_without_trace_has_no_tree(self, capsys):
        assert main(["synth", "biquad_filter"]) == 0
        out = capsys.readouterr().out
        assert "timing tree:" not in out
        assert "search:" in out

    def test_profile_subcommand(self, tmp_path, capsys):
        json_path = tmp_path / "profile.json"
        assert main([
            "profile", "biquad_filter", "--repeat", "2",
            "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "profile of 'biquad_filter'" in out
        assert "mapper.nodes_visited" in out
        parsed = json.loads(json_path.read_text())
        assert parsed["design"] == "biquad_filter"
