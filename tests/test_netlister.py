"""Tests for SPICE deck generation and MNA elaboration of netlists."""

import math

import numpy as np
import pytest

from repro.flow import synthesize
from repro.library import default_library
from repro.spice import dc, elaborate, sin_wave, to_spice_deck
from repro.spice.netlister import infer_control_links
from repro.synth.netlist import Netlist
from repro.vhif import Interpreter


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


def synth(source):
    return synthesize(source)


class TestSpiceDeck:
    def test_deck_structure(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == 2.0 * u;",
            )
        )
        deck = to_spice_deck(result.netlist)
        assert deck.startswith("*")
        assert "VIN_u" in deck
        assert ".TRAN" in deck
        assert deck.rstrip().endswith(".END")

    def test_deck_contains_instances(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == -3.0 * u;",
            )
        )
        deck = to_spice_deck(result.netlist)
        assert "INVERTING_AMPLIFIER" in deck

    def test_deck_constant_references(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u + 1.5;",
            )
        )
        deck = to_spice_deck(result.netlist)
        assert "VREF_" in deck
        assert "1.5" in deck


class TestLinearStages:
    def check_gain(self, body, expected, vin=0.25, decls=""):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls=decls, body=body,
            )
        )
        circuit = elaborate(result.netlist, input_waves={"u": dc(vin)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(expected * vin, rel=2e-2,
                                               abs=2e-3)

    def test_inverting_gain(self):
        self.check_gain("y == -4.0 * u;", -4.0)

    def test_noninverting_gain(self):
        self.check_gain("y == 5.0 * u;", 5.0)

    def test_attenuation(self):
        self.check_gain("y == 0.5 * u;", 0.5)

    def test_weighted_sum(self):
        result = synth(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                body="y == 2.0 * a + 3.0 * b;",
            )
        )
        circuit = elaborate(
            result.netlist, input_waves={"a": dc(0.2), "b": dc(0.1)}
        )
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(0.7, rel=2e-2)

    def test_difference(self):
        result = synth(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                body="y == a - b;",
            )
        )
        circuit = elaborate(
            result.netlist, input_waves={"a": dc(0.8), "b": dc(0.3)}
        )
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(0.5, rel=2e-2)

    def test_sum_with_negative_weight(self):
        result = synth(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                body="y == 2.0 * a - 0.5 * b;",
            )
        )
        circuit = elaborate(
            result.netlist, input_waves={"a": dc(0.5), "b": dc(0.4)}
        )
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(0.8, rel=2e-2)


class TestNonlinearCores:
    def test_multiplier(self):
        result = synth(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                body="y == a * b;",
            )
        )
        circuit = elaborate(
            result.netlist, input_waves={"a": dc(0.5), "b": dc(0.6)}
        )
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(0.3, rel=1e-2)

    def test_log_exp_power(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == exp(1.5 * log(u));",
            )
        )
        circuit = elaborate(result.netlist, input_waves={"u": dc(2.0)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(2.0 ** 1.5, rel=1e-2)

    def test_limiter_output_stage(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; "
                "QUANTITY y : OUT real LIMITED AT 1.0 v",
                body="y == 3.0 * u;",
            )
        )
        circuit = elaborate(result.netlist, input_waves={"u": dc(1.0)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(1.0, rel=2e-2)


class TestDynamicStages:
    def test_integrator_ramp(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY x : real := 0.0;",
                body="x'dot == 100.0 * u;\n  y == x;",
            )
        )
        circuit = elaborate(result.netlist, input_waves={"u": dc(0.5)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(20e-3, 2e-5, probes=[out])
        # dx/dt = 50 V/s for 20 ms -> 1 V.
        assert sim.final(out) == pytest.approx(1.0, rel=5e-2)

    def test_first_order_lowpass(self):
        result = synth(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY x : real := 0.0;",
                body="0.001 * x'dot == u - x;\n  y == x;",
            )
        )
        circuit = elaborate(result.netlist, input_waves={"u": dc(1.0)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(5e-3, 5e-6, probes=[out])
        assert sim.final(out) == pytest.approx(1.0 - math.exp(-5.0), rel=5e-2)


class TestControlLinks:
    RECEIVER_STYLE = wrap(
        "QUANTITY u : IN real; QUANTITY y : OUT real",
        decls="QUANTITY r : real; SIGNAL c : bit;",
        body="""
  y == u * r;
  IF (c = '1') USE r == 0.5; ELSE r == 1.5; END USE;
  PROCESS (u'ABOVE(0.2)) IS
  BEGIN
    IF (u'ABOVE(0.2) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
  END PROCESS;
""",
    )

    def test_fsm_realization_makes_control_a_net(self):
        result = synth(self.RECEIVER_STYLE)
        # The zero-cross realization means no str controls remain.
        controls = [
            inst.control
            for inst in result.netlist.instances
            if inst.control is not None
        ]
        assert controls and all(isinstance(ctl, int) for ctl in controls)

    def test_switched_gain_follows_detector(self):
        result = synth(self.RECEIVER_STYLE)
        circuit = elaborate(result.netlist, input_waves={"u": dc(1.0)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(2e-3, 1e-5, probes=[out])
        # u=1 > 0.2: gain 0.5.
        assert sim.final(out) == pytest.approx(0.5, rel=5e-2)
        circuit_low = elaborate(result.netlist, input_waves={"u": dc(0.1)})
        sim_low = circuit_low.transient(2e-3, 1e-5, probes=[out])
        assert sim_low.final(out) == pytest.approx(0.15, rel=5e-2)

    def test_infer_control_links_helper(self):
        from repro.compiler import compile_design
        from repro.synth import map_sfg

        design = compile_design(self.RECEIVER_STYLE)
        result = map_sfg(design.main_sfg)
        links = infer_control_links(design, result.netlist)
        assert "c" in links


class TestBehavioralEquivalence:
    """Synthesized circuit vs VHIF interpretation on the same stimulus."""

    CASES = [
        ("y == 2.0 * u + 0.3;", ""),
        ("y == -1.5 * u;", ""),
        ("y == u * u;", ""),
        ("y == abs(u) + 0.1;", ""),
    ]

    @pytest.mark.parametrize("body,decls", CASES)
    def test_dc_match(self, body, decls):
        source = wrap(
            "QUANTITY u : IN real; QUANTITY y : OUT real",
            decls=decls, body=body,
        )
        result = synth(source)
        interp = Interpreter(result.design, dt=1e-5,
                             inputs={"u": lambda t: 0.7})
        interp.step()
        behavioral = float(interp.probe("y"))
        circuit = elaborate(result.netlist, input_waves={"u": dc(0.7)})
        out = circuit.output_nodes["y"]
        sim = circuit.transient(1e-3, 1e-5, probes=[out])
        assert sim.final(out) == pytest.approx(behavioral, rel=3e-2,
                                               abs=5e-3)
