"""Tests of the pluggable execution backends (`repro.pipeline.executor`).

Tentpole coverage of the executor redesign:

* the three backends (serial / thread / process) produce byte-identical
  ``--no-timing`` batch reports over the example corpus;
* ``map_ordered`` keeps submission order for any worker count, and
  cancels outstanding work before propagating a task exception;
* a crashed process worker surfaces a :class:`VaseError` — never a
  hang — and the pool keeps working afterwards (a replacement worker
  is spawned);
* two process-backend runs sharing one ``.vase-cache/`` directory see
  each other's stage results through the disk tier, and the workers'
  cache counters are merged back into the submitting run's stats;
* telemetry published inside a worker process is forwarded over the
  result channel and re-published on the submitting run's bus with
  dense per-run sequence numbers;
* :class:`ParallelOptions` validates its knobs and the ``jobs`` shims
  (``FlowOptions.jobs``, ``run_batch(jobs=...)``) map onto it.

Process-backend task functions live at module level: the ``spawn``
start method pickles tasks by reference, so a worker re-imports this
module to find them.
"""

import os
import time
from pathlib import Path

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.diagnostics import VaseError
from repro.instrument import (
    CATEGORY_METRIC,
    RingBuffer,
    TelemetryBus,
    active_bus,
    run_scope,
    telemetry,
)
from repro.pipeline import (
    EXECUTOR_KINDS,
    ArtifactCache,
    Executor,
    ParallelOptions,
    ProcessExecutor,
    SerialExecutor,
    Task,
    ThreadExecutor,
    create_executor,
)
from repro.robust.batch import run_batch
from repro.serve.queue import JobOptionsError, build_job_options

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


# ---------------------------------------------------------------------------
# Module-level task functions (picklable by reference for spawn workers).

def _double(x):
    return 2 * x


def _sleepy_identity(index, delay_s):
    time.sleep(delay_s)
    return index


def _worker_pid(_index):
    return os.getpid()


def _boom(message):
    raise RuntimeError(message)


def _hard_crash():
    os._exit(3)  # bypasses all exception handling, like a segfault


def _publish_metrics(count):
    bus = active_bus()
    assert bus is not None, "worker should see a forwarding bus"
    for n in range(count):
        bus.publish(CATEGORY_METRIC, {"n": n, "pid": os.getpid()})
    return count


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "a_biquad.vhd").write_text((EXAMPLES / "biquad.vhd").read_text())
    (root / "b_power_meter.vhd").write_text(
        ALL_APPLICATIONS["power_meter"].VASS_SOURCE
    )
    (root / "c_function_generator.vhd").write_text(
        ALL_APPLICATIONS["function_generator"].VASS_SOURCE
    )
    return sorted(root.iterdir())


class TestParallelOptions:
    def test_defaults_are_serial(self):
        options = ParallelOptions()
        assert options.executor == "serial"
        assert options.workers == 1

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_accepts_every_kind(self, kind):
        assert ParallelOptions(executor=kind, workers=2).executor == kind

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ParallelOptions(executor="fiber")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelOptions(workers=0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="task_timeout_s"):
            ParallelOptions(task_timeout_s=0.0)

    def test_from_jobs_maps_like_the_old_knob(self):
        assert ParallelOptions.from_jobs(1) == ParallelOptions()
        assert ParallelOptions.from_jobs(4) == ParallelOptions(
            executor="thread", workers=4
        )
        with pytest.raises(ValueError):
            ParallelOptions.from_jobs(0)

    def test_bounded_clamps_width_to_task_count(self):
        wide = ParallelOptions(executor="process", workers=8)
        assert wide.bounded(3).workers == 3
        assert wide.bounded(3).executor == "process"
        assert wide.bounded(0).workers == 1

    def test_create_executor_kinds(self):
        assert isinstance(
            create_executor(ParallelOptions()), SerialExecutor
        )
        # A one-wide thread pool degrades to the serial fast path.
        assert isinstance(
            create_executor(ParallelOptions(executor="thread", workers=1)),
            SerialExecutor,
        )
        thread = create_executor(
            ParallelOptions(executor="thread", workers=2)
        )
        try:
            assert isinstance(thread, ThreadExecutor)
            assert isinstance(thread, Executor)
            assert not thread.distributed
        finally:
            thread.shutdown()


class TestOrderingAndErrors:
    @pytest.mark.parametrize(
        "options",
        [
            ParallelOptions(),
            ParallelOptions(executor="thread", workers=4),
            ParallelOptions(executor="process", workers=2),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_map_ordered_keeps_submission_order(self, options):
        # Earlier tasks sleep longer, so completion order is reversed
        # from submission order on any genuinely parallel backend.
        delays = [0.2, 0.1, 0.05, 0.0]
        tasks = [
            Task(_sleepy_identity, (i, delays[i]))
            for i in range(len(delays))
        ]
        with create_executor(options) as executor:
            assert executor.map_ordered(tasks) == [0, 1, 2, 3]

    def test_process_tasks_really_leave_the_process(self):
        with create_executor(
            ParallelOptions(executor="process", workers=2)
        ) as executor:
            pids = executor.map_ordered(
                [Task(_worker_pid, (i,)) for i in range(8)]
            )
        assert os.getpid() not in pids

    @pytest.mark.parametrize(
        "options",
        [
            ParallelOptions(executor="thread", workers=2),
            ParallelOptions(executor="process", workers=2),
        ],
        ids=["thread", "process"],
    )
    def test_task_exception_propagates(self, options):
        tasks = [Task(_double, (1,)), Task(_boom, ("kaboom",))]
        with create_executor(options) as executor:
            with pytest.raises(RuntimeError, match="kaboom"):
                executor.map_ordered(tasks)

    def test_map_ordered_cancels_queued_work_on_error(self):
        # One worker: the failing task runs first, the rest are still
        # queued and must be cancelled, not executed, once it raises.
        ran = []

        def record(i):
            ran.append(i)
            return i

        with ThreadExecutor(1) as executor:
            tasks = [Task(_boom, ("first",))] + [
                Task(record, (i,)) for i in range(32)
            ]
            with pytest.raises(RuntimeError, match="first"):
                executor.map_ordered(tasks)
        assert len(ran) < 32  # the queue was cancelled, not drained


class TestWorkerCrash:
    def test_crash_surfaces_vase_error_not_a_hang(self):
        with ProcessExecutor(2) as executor:
            future = executor.submit(_hard_crash)
            with pytest.raises(VaseError, match="worker crashed"):
                future.result(timeout=30.0)

    def test_pool_survives_a_crash(self):
        with ProcessExecutor(1) as executor:
            with pytest.raises(VaseError):
                executor.submit(_hard_crash).result(timeout=30.0)
            # The replacement worker picks the next task up.
            assert executor.submit(_double, 21).result(timeout=30.0) == 42

    def test_crash_inside_a_batch_fails_only_that_entry(self):
        with ProcessExecutor(2) as executor:
            tasks = [
                Task(_double, (1,)),
                Task(_hard_crash, ()),
                Task(_double, (3,)),
            ]
            futures = [executor.submit(t.fn, *t.args) for t in tasks]
            assert futures[0].result(timeout=30.0) == 2
            with pytest.raises(VaseError):
                futures[1].result(timeout=30.0)
            assert futures[2].result(timeout=30.0) == 6


class TestBackendByteIdentity:
    def test_batch_reports_identical_across_backends(self, corpus):
        reports = {
            kind: run_batch(
                corpus,
                parallel=ParallelOptions(
                    executor=kind, workers=1 if kind == "serial" else 2
                ),
            )
            for kind in EXECUTOR_KINDS
        }
        serial = reports["serial"].to_json(timing=False)
        assert reports["thread"].to_json(timing=False) == serial
        assert reports["process"].to_json(timing=False) == serial
        assert reports["process"].failed == 0
        assert [e.file for e in reports["process"].entries] == [
            str(p) for p in corpus
        ]


class TestSharedCacheAcrossProcesses:
    def test_second_process_run_hits_first_runs_disk_store(
        self, corpus, tmp_path
    ):
        store = tmp_path / "vase-cache"
        process = ParallelOptions(executor="process", workers=2)

        cold_cache = ArtifactCache(disk_dir=store)
        cold = run_batch(corpus, parallel=process, cache=cold_cache)
        # Worker-side counters were merged home over the result channel.
        assert cold_cache.stats.misses > 0
        assert cold_cache.stats.disk_stores > 0
        assert cold_cache.stats.hits == 0

        warm_cache = ArtifactCache(disk_dir=store)
        warm = run_batch(corpus, parallel=process, cache=warm_cache)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits > 0
        assert warm_cache.stats.disk_hits == warm_cache.stats.hits
        assert warm.as_dict(timing=False) == cold.as_dict(timing=False)


class TestWorkerTelemetryForwarding:
    def test_worker_events_reach_the_submitting_bus_densely(self):
        bus = TelemetryBus()
        ring = RingBuffer(capacity=4096)
        bus.subscribe(ring)
        per_task = 25
        with telemetry(bus):
            with run_scope("forwarded-run"):
                with ProcessExecutor(2) as executor:
                    results = executor.map_ordered(
                        [Task(_publish_metrics, (per_task,))
                         for _ in range(4)]
                    )
        assert results == [per_task] * 4
        events = [e for e in ring.events() if e.category == CATEGORY_METRIC]
        total = 4 * per_task
        assert len(events) == total
        # Every event carries the submitting run's id, and the parent
        # bus assigned it a dense per-run sequence — exactly as if it
        # had been published in-process.
        assert {e.run_id for e in events} == {"forwarded-run"}
        assert sorted(e.seq for e in events) == list(range(total))
        # Events genuinely originated in the workers.
        assert os.getpid() not in {e.payload["pid"] for e in events}

    def test_no_bus_no_forwarding(self):
        with ProcessExecutor(1) as executor:
            future = executor.submit(_double, 5)
            assert future.result(timeout=30.0) == 10


class TestServeJobOptionValidation:
    BASE_KIND = "thread"

    def _base(self):
        from repro.flow import FlowOptions
        return FlowOptions()

    def test_accepts_executor_and_workers(self):
        options = build_job_options(
            self._base(), {"executor": "thread", "workers": 2}
        )
        assert options.parallel == ParallelOptions(
            executor="thread", workers=2
        )

    def test_rejects_unknown_executor(self):
        with pytest.raises(JobOptionsError, match="executor"):
            build_job_options(self._base(), {"executor": "fiber"})

    def test_rejects_out_of_range_workers(self):
        with pytest.raises(JobOptionsError, match="workers"):
            build_job_options(self._base(), {"workers": 99})
        with pytest.raises(JobOptionsError, match="workers"):
            build_job_options(self._base(), {"workers": 0})
