"""Tests for the branch-and-bound architecture mapper (Figure 5/6)."""

import pytest

from repro.diagnostics import SynthesisError
from repro.estimation import ConstraintSet, Estimator
from repro.library import (
    ComponentLibrary,
    ComponentSpec,
    PatternMatcher,
    default_library,
)
from repro.synth import (
    ArchitectureMapper,
    MapperOptions,
    map_sfg,
    map_sfg_greedy,
)
from repro.vhif.sfg import BlockKind, SignalFlowGraph


def weighted_sum_graph(shared_input=False):
    """in(s) -> x k1 / x k2 -> add -> out (the Figure-6 shape)."""
    g = SignalFlowGraph("fig6")
    in1 = g.add(BlockKind.INPUT, name="v1")
    in2 = in1 if shared_input else g.add(BlockKind.INPUT, name="v2")
    b1 = g.add(BlockKind.SCALE, gain=2.0, name="block1")
    b2 = g.add(BlockKind.SCALE, gain=2.0, name="block2")
    b3 = g.add(BlockKind.ADD, n_inputs=2, name="block3")
    out = g.add(BlockKind.OUTPUT, name="vo")
    g.connect(in1, b1)
    g.connect(in2, b2)
    g.connect(b1, b3, port=0)
    g.connect(b2, b3, port=1)
    g.connect(b3, out)
    return g


def figure6_library():
    """comp1 (scale+add, 1 op amp), comp2 (scale, 1), comp3 (add, 2)."""
    return ComponentLibrary(
        [
            ComponentSpec(
                name="weighted_summing_amplifier",  # comp1
                category="amplif.",
                opamps=1,
                gain_param="weights",
            ),
            ComponentSpec(
                name="noninverting_amplifier",  # comp2
                category="amplif.",
                opamps=1,
                gain_param="gain",
            ),
            ComponentSpec(
                name="inverting_amplifier",
                category="amplif.",
                opamps=1,
                gain_param="gain",
            ),
            ComponentSpec(
                name="summing_amplifier",  # comp3: plain adder, 2 op amps
                category="amplif.",
                opamps=2,
                gain_param="weights",
            ),
        ],
        name="fig6",
    )


def fig6_matcher():
    # comp1 folds exactly one scaled input, per the paper's Figure 6b.
    return PatternMatcher(
        figure6_library(), max_weighted_scales=1, enable_transforms=False
    )


class TestBasicMapping:
    def test_simple_chain_maps(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT, name="x")
        s = g.add(BlockKind.SCALE, gain=-2.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, s)
        g.connect(s, out)
        result = map_sfg(g)
        assert result.netlist.total_opamps() == 1
        assert result.netlist.instances[0].spec.name == "inverting_amplifier"

    def test_netlist_ports_wired(self):
        g = weighted_sum_graph()
        result = map_sfg(g)
        assert set(result.netlist.inputs) == {"v1", "v2"}
        assert "vo" in result.netlist.outputs

    def test_full_coverage_required(self):
        g = weighted_sum_graph()
        result = map_sfg(g)
        covered = result.netlist.covered_blocks()
        expected = {b.block_id for b in g.processing_blocks()}
        assert covered == expected

    def test_unmappable_block_raises(self):
        lib = ComponentLibrary(
            [ComponentSpec(name="voltage_follower", category="x", opamps=1)],
            name="tiny",
        )
        g = weighted_sum_graph()
        with pytest.raises(SynthesisError):
            map_sfg(g, library=lib, matcher=PatternMatcher(lib))

    def test_default_finds_single_summing_amp(self):
        # With the default library the whole weighted sum is one op amp.
        result = map_sfg(weighted_sum_graph())
        assert result.netlist.total_opamps() == 1
        (inst,) = result.netlist.instances
        assert inst.spec.name == "summing_amplifier"
        assert inst.params["weights"] == [2.0, 2.0]


class TestFigure6Scenario:
    def test_optimal_two_opamps(self):
        g = weighted_sum_graph()
        result = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(collect_tree=True),
        )
        assert result.netlist.total_opamps() == 2
        components = sorted(i.spec.name for i in result.netlist.instances)
        assert components == [
            "noninverting_amplifier",
            "weighted_summing_amplifier",
        ]

    def test_solution_opamp_counts_include_worse_mappings(self):
        """The decision tree passes through 4- and 3-op-amp solutions."""
        g = weighted_sum_graph(shared_input=True)
        result = map_sfg(
            g,
            library=figure6_library(),
            matcher=fig6_matcher(),
            options=MapperOptions(collect_tree=True, enable_bounding=False),
        )
        counts = set(result.solution_opamps)
        assert 2 in counts  # comp1 + comp2
        assert 3 in counts  # shared comp2 + comp3
        assert 4 in counts  # comp2 + comp2 + comp3

    def test_sharing_enables_three_opamp_solution(self):
        g = weighted_sum_graph(shared_input=True)
        no_sharing = map_sfg(
            g,
            library=figure6_library(),
            matcher=fig6_matcher(),
            options=MapperOptions(enable_sharing=False,
                                  enable_bounding=False),
        )
        assert 3 not in set(no_sharing.solution_opamps)

    def test_decision_tree_collected(self):
        g = weighted_sum_graph()
        result = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(collect_tree=True),
        )
        assert result.tree
        assert result.tree[0].decision == "root"
        assert any(n.status == "complete" for n in result.tree)


class TestBoundingRule:
    def test_bounding_prunes(self):
        g = weighted_sum_graph(shared_input=True)
        bounded = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=True),
        )
        unbounded = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=False),
        )
        assert bounded.statistics.nodes_pruned > 0
        assert (
            bounded.statistics.nodes_visited
            <= unbounded.statistics.nodes_visited
        )

    def test_bounding_preserves_optimality(self):
        g = weighted_sum_graph(shared_input=True)
        bounded = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=True),
        )
        unbounded = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=False),
        )
        assert bounded.estimate.area == pytest.approx(unbounded.estimate.area)


class TestSequencingRule:
    def test_largest_first_finds_optimum_early(self):
        g = weighted_sum_graph()
        largest = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(sequencing="largest_first"),
        )
        smallest = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(sequencing="smallest_first"),
        )
        # Same optimum either way...
        assert largest.netlist.total_opamps() == smallest.netlist.total_opamps()
        # ...but largest-first reaches a best solution earlier (its first
        # complete mapping is already minimal).
        assert largest.solution_opamps[0] <= smallest.solution_opamps[0]


class TestSharing:
    def test_identical_paths_share(self):
        # Two identical scale blocks from the same input, two outputs.
        g = SignalFlowGraph("share")
        x = g.add(BlockKind.INPUT, name="x")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=2.0)
        o1 = g.add(BlockKind.OUTPUT, name="y1")
        o2 = g.add(BlockKind.OUTPUT, name="y2")
        g.connect(x, s1)
        g.connect(x, s2)
        g.connect(s1, o1)
        g.connect(s2, o2)
        result = map_sfg(g)
        assert result.netlist.total_opamps() == 1
        (inst,) = result.netlist.instances
        assert set(inst.covers) == {s1.block_id, s2.block_id}

    def test_different_gains_do_not_share(self):
        g = SignalFlowGraph("noshare")
        x = g.add(BlockKind.INPUT, name="x")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=3.0)
        o1 = g.add(BlockKind.OUTPUT, name="y1")
        o2 = g.add(BlockKind.OUTPUT, name="y2")
        g.connect(x, s1)
        g.connect(x, s2)
        g.connect(s1, o1)
        g.connect(s2, o2)
        result = map_sfg(g)
        assert result.netlist.total_opamps() == 2

    def test_different_inputs_do_not_share(self):
        g = SignalFlowGraph("noshare2")
        x = g.add(BlockKind.INPUT, name="x")
        z = g.add(BlockKind.INPUT, name="z")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=2.0)
        o1 = g.add(BlockKind.OUTPUT, name="y1")
        o2 = g.add(BlockKind.OUTPUT, name="y2")
        g.connect(x, s1)
        g.connect(z, s2)
        g.connect(s1, o1)
        g.connect(s2, o2)
        result = map_sfg(g)
        assert result.netlist.total_opamps() == 2

    def test_shared_net_resolves_in_outputs(self):
        g = SignalFlowGraph("share3")
        x = g.add(BlockKind.INPUT, name="x")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=2.0)
        o1 = g.add(BlockKind.OUTPUT, name="y1")
        o2 = g.add(BlockKind.OUTPUT, name="y2")
        g.connect(x, s1)
        g.connect(x, s2)
        g.connect(s1, o1)
        g.connect(s2, o2)
        result = map_sfg(g)
        # Both outputs resolve to the single shared instance's net.
        nets = set(result.netlist.outputs.values())
        assert len(nets) == 1


class TestConstraints:
    def test_infeasible_under_opamp_budget(self):
        g = weighted_sum_graph()
        estimator = Estimator(constraints=ConstraintSet(max_opamps=0))
        with pytest.raises(SynthesisError):
            map_sfg(g, estimator=estimator)

    def test_first_solution_mode_stops_early(self):
        g = weighted_sum_graph(shared_input=True)
        full = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=False),
        )
        first = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(first_solution_only=True),
        )
        assert (
            first.statistics.nodes_visited <= full.statistics.nodes_visited
        )

    def test_node_budget_exhaustion_reported(self):
        g = weighted_sum_graph()
        with pytest.raises(SynthesisError, match="budget"):
            map_sfg(g, options=MapperOptions(max_nodes=0))


class TestTruncation:
    def test_untruncated_run_has_clean_flags(self):
        g = weighted_sum_graph()
        result = map_sfg(g)
        assert result.statistics.truncated is False
        assert result.diagnostics == []
        assert "TRUNCATED" not in result.describe()

    def test_budget_hit_after_solution_sets_truncated(self):
        g = weighted_sum_graph(shared_input=True)
        # Learn how many nodes the deterministic search needs to reach
        # its first complete mapping, then cap the full search there:
        # the mapping is found, but exploration stops at the budget.
        first = map_sfg(
            g, options=MapperOptions(first_solution_only=True)
        )
        # +1: the budget check runs on node entry, before completion,
        # so the cap must leave room for the completing call itself.
        budget = first.statistics.nodes_visited + 1
        result = map_sfg(g, options=MapperOptions(max_nodes=budget))
        assert result.statistics.truncated is True
        assert result.netlist.instances  # a mapping was still produced
        assert "TRUNCATED" in result.describe()

    def test_truncation_emits_warning_diagnostic(self):
        from repro.diagnostics import Severity

        g = weighted_sum_graph(shared_input=True)
        first = map_sfg(
            g, options=MapperOptions(first_solution_only=True)
        )
        budget = first.statistics.nodes_visited + 1
        result = map_sfg(g, options=MapperOptions(max_nodes=budget))
        assert len(result.diagnostics) == 1
        diagnostic = result.diagnostics[0]
        assert diagnostic.severity is Severity.WARNING
        assert "node budget" in diagnostic.message
        assert "not proven optimal" in diagnostic.message

    def test_statistics_as_dict_includes_truncated(self):
        g = weighted_sum_graph()
        result = map_sfg(g)
        as_dict = result.statistics.as_dict()
        assert as_dict["truncated"] is False
        assert as_dict["nodes_visited"] == result.statistics.nodes_visited


class TestGreedy:
    def test_greedy_completes(self):
        g = weighted_sum_graph()
        result = map_sfg_greedy(g)
        assert result.netlist.total_opamps() >= 1

    def test_greedy_no_worse_than_double_optimal(self):
        g = weighted_sum_graph(shared_input=True)
        optimal = map_sfg(g, library=figure6_library(),
                          matcher=fig6_matcher())
        greedy = map_sfg_greedy(g, library=figure6_library(),
                                matcher=fig6_matcher())
        assert greedy.netlist.total_opamps() <= 2 * max(
            optimal.netlist.total_opamps(), 1
        )

    def test_greedy_visits_fewer_nodes(self):
        g = weighted_sum_graph(shared_input=True)
        optimal = map_sfg(
            g, library=figure6_library(), matcher=fig6_matcher(),
            options=MapperOptions(enable_bounding=False),
        )
        greedy = map_sfg_greedy(g, library=figure6_library(),
                                matcher=fig6_matcher())
        assert (
            greedy.statistics.nodes_visited
            <= optimal.statistics.nodes_visited
        )
