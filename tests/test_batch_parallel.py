"""Tests for parallel batch synthesis and the shared artifact cache.

Satellite coverage: ``vase batch --executor thread --workers 4 --json``
must be byte-identical to the serial run (with ``--no-timing``, since
wall-clock fields differ even between two serial runs), a shared
on-disk cache must make the second batch run all-hits, and the
deprecated ``jobs`` knob must keep working behind a shim that warns.
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.cli import main
from repro.flow import FlowOptions
from repro.pipeline import ArtifactCache, ParallelOptions, run_parallel
from repro.robust.batch import run_batch

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

BROKEN = """
entity broken is
  port (quantity u : in real
end entity
"""


@pytest.fixture
def corpus(tmp_path):
    """A small mixed batch: two good designs and one with syntax errors."""
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "a_biquad.vhd").write_text(
        (EXAMPLES / "biquad.vhd").read_text()
    )
    (root / "b_power_meter.vhd").write_text(
        ALL_APPLICATIONS["power_meter"].VASS_SOURCE
    )
    (root / "c_broken.vhd").write_text(BROKEN)
    return root


class TestRunParallel:
    def test_results_keep_submission_order(self):
        delays = [0.05, 0.0, 0.02, 0.0]

        def thunk(index):
            def run():
                time.sleep(delays[index])
                return index
            return run

        results = run_parallel([thunk(i) for i in range(4)], jobs=4)
        assert results == [0, 1, 2, 3]

    def test_actually_concurrent(self):
        barrier = threading.Barrier(3, timeout=5.0)

        def wait():
            barrier.wait()
            return True

        # Three thunks all blocked on one barrier only finish if they
        # really run at the same time.
        assert run_parallel([wait] * 3, jobs=3) == [True, True, True]

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_parallel([lambda: 1], jobs=0)


class TestParallelBatchDeterminism:
    def test_report_is_identical_to_serial(self, corpus):
        serial = run_batch(sorted(corpus.iterdir()))
        parallel = run_batch(
            sorted(corpus.iterdir()),
            parallel=ParallelOptions(executor="thread", workers=4),
        )
        assert serial.as_dict(timing=False) == parallel.as_dict(
            timing=False
        )
        assert [e.file for e in parallel.entries] == [
            str(p) for p in sorted(corpus.iterdir())
        ]
        assert parallel.failed == 1

    def test_cli_json_byte_identical(self, corpus, tmp_path, capsys):
        out_serial = tmp_path / "serial.json"
        out_parallel = tmp_path / "parallel.json"
        code_serial = main([
            "batch", str(corpus), "--json", str(out_serial),
            "--no-timing",
        ])
        code_parallel = main([
            "batch", str(corpus), "--executor", "thread",
            "--workers", "4", "--json", str(out_parallel), "--no-timing",
        ])
        capsys.readouterr()
        assert code_serial == code_parallel == 1  # the broken file
        assert out_serial.read_bytes() == out_parallel.read_bytes()


class TestSharedBatchCache:
    def test_second_run_is_all_hits(self, corpus, tmp_path):
        store = tmp_path / "vase-cache"
        files = sorted(corpus.iterdir())

        cold_cache = ArtifactCache(disk_dir=store)
        cold = run_batch(files, cache=cold_cache)
        assert cold_cache.stats.misses > 0
        assert cold.cache is not None
        assert cold.cache["disk_stores"] > 0

        # A fresh cache over the same directory models a restart.
        warm_cache = ArtifactCache(disk_dir=store)
        warm = run_batch(
            files,
            parallel=ParallelOptions(executor="thread", workers=4),
            cache=warm_cache,
        )
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits > 0
        assert warm_cache.stats.disk_hits == warm_cache.stats.hits
        assert warm.as_dict(timing=False) == cold.as_dict(timing=False)

    def test_cli_cache_stats_artifact(self, corpus, tmp_path, capsys):
        store = tmp_path / "vase-cache"
        stats_path = tmp_path / "cache-stats.json"
        main([
            "batch", str(corpus), "--cache", str(store),
            "--cache-stats", str(stats_path),
        ])
        main([
            "batch", str(corpus), "--cache", str(store),
            "--cache-stats", str(stats_path),
        ])
        capsys.readouterr()
        stats = json.loads(stats_path.read_text())
        assert stats["misses"] == 0
        assert stats["hits"] > 0


class TestDeprecatedJobsShim:
    """The old bare ``jobs`` knob keeps working but warns, and maps
    onto :class:`ParallelOptions` exactly as documented."""

    def test_flow_options_jobs_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="jobs"):
            options = FlowOptions(jobs=4)
        assert options.jobs is None
        assert options.parallel == ParallelOptions(
            executor="thread", workers=4
        )

    def test_flow_options_jobs_one_stays_serial(self):
        with pytest.warns(DeprecationWarning, match="jobs"):
            options = FlowOptions(jobs=1)
        assert options.parallel == ParallelOptions()

    def test_run_batch_jobs_warns_and_matches_new_api(self, corpus):
        files = sorted(corpus.iterdir())
        with pytest.warns(DeprecationWarning, match="jobs"):
            legacy = run_batch(files, jobs=4)
        modern = run_batch(
            files, parallel=ParallelOptions(executor="thread", workers=4)
        )
        assert legacy.as_dict(timing=False) == modern.as_dict(timing=False)

    def test_cli_jobs_flag_warns_on_stderr(self, corpus, tmp_path, capsys):
        out = tmp_path / "report.json"
        main([
            "batch", str(corpus), "--jobs", "2", "--json", str(out),
            "--no-timing",
        ])
        captured = capsys.readouterr()
        assert "--jobs is deprecated" in captured.err
        assert out.exists()
