"""Tests for the persistent run ledger and its CLI verbs."""

import json
import time

import pytest

from repro.cli import main
from repro.instrument import LedgerRecord, RunLedger, resolve_ledger, summarize
from repro.instrument.ledger import (
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    format_stats,
    percentile,
)


def record(run_id="r1", outcome=OUTCOME_OK, source="a.vhd", ts=1000.0,
           **extra):
    fields = dict(
        run_id=run_id,
        kind="synth",
        ts=ts,
        source=source,
        source_fp="f" * 16,
        options_fp="o" * 16,
        outcome=outcome,
        degraded=outcome == OUTCOME_DEGRADED,
        metrics={"area_um2": 1.0},
        cache={"hits": 2, "misses": 1},
        durations={"total_s": 0.25},
    )
    fields.update(extra)
    return LedgerRecord(**fields)


class TestRunLedger:
    def test_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        assert not ledger.exists()
        ledger.append(record("r1"))
        ledger.append(record("r2", outcome=OUTCOME_FAILED))
        assert ledger.exists()
        back = ledger.records()
        assert [r.run_id for r in back] == ["r1", "r2"]
        assert back[0].as_dict() == record("r1").as_dict()
        assert back[1].outcome == OUTCOME_FAILED

    def test_directory_path_gets_default_filename(self, tmp_path):
        ledger = RunLedger(tmp_path / "some-dir")
        assert ledger.path.name == "ledger.jsonl"
        ledger.append(record())
        assert (tmp_path / "some-dir" / "ledger.jsonl").exists()

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(record("good1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{ not json\n")
            handle.write('{"json_but": "not a record"}\n')
        ledger.append(record("good2"))
        back = ledger.records()
        assert [r.run_id for r in back] == ["good1", "good2"]
        assert ledger.skipped == 2

    def test_tail_filters(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(record("r1", OUTCOME_OK, "designs/alpha.vhd", ts=1))
        ledger.append(record("r2", OUTCOME_FAILED, "designs/beta.vhd",
                             ts=2))
        ledger.append(record("r3", OUTCOME_DEGRADED, "Other/ALPHA2.vhd",
                             ts=3))
        # Newest first.
        assert [r.run_id for r in ledger.tail()] == ["r3", "r2", "r1"]
        assert [r.run_id for r in ledger.tail(limit=2)] == ["r3", "r2"]
        assert [r.run_id for r in ledger.tail(outcome=OUTCOME_FAILED)] \
            == ["r2"]
        # Source filter is a case-insensitive substring.
        assert [r.run_id for r in ledger.tail(source="alpha")] \
            == ["r3", "r1"]
        assert ledger.tail(source="nope") == []

    def test_describe_is_one_line(self):
        text = record("abc123def456").describe()
        assert "\n" not in text
        assert "abc123def456" in text
        assert "OK" in text
        assert "a.vhd" in text

    def test_concurrent_appends_from_two_processes(self, tmp_path):
        """Each append is a single O_APPEND write, so two writers
        interleave at line granularity: no torn or merged records."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "ledger.jsonl"
        src = str(Path(__file__).resolve().parent.parent / "src")
        script = (
            "import sys, time\n"
            "from repro.instrument.ledger import RunLedger, LedgerRecord\n"
            "ledger = RunLedger(sys.argv[1])\n"
            "who = sys.argv[2]\n"
            "for n in range(50):\n"
            "    ledger.append(LedgerRecord(\n"
            "        run_id=f'{who}-{n}', kind='synth', ts=0.0,\n"
            "        source='x.vhd', source_fp='fp', options_fp='fp',\n"
            "        outcome='ok',\n"
            "    ))\n"
            "    time.sleep(0)\n"
        )
        env = dict(os.environ, PYTHONPATH=src, VASE_LEDGER="off")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), who],
                env=env,
            )
            for who in ("alpha", "beta")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        ledger = RunLedger(path)
        back = ledger.records()
        assert ledger.skipped == 0  # no torn lines
        assert len(back) == 100
        ids = [r.run_id for r in back]
        assert sorted(ids) == sorted(
            f"{who}-{n}" for who in ("alpha", "beta") for n in range(50)
        )
        # Per-writer order is preserved even though writers interleave.
        for who in ("alpha", "beta"):
            ours = [i for i in ids if i.startswith(who)]
            assert ours == [f"{who}-{n}" for n in range(50)]


class TestSummarize:
    def test_rates_and_percentiles(self):
        records = [
            record("r1", OUTCOME_OK, durations={"total_s": 0.1}),
            record("r2", OUTCOME_OK, durations={"total_s": 0.2}),
            record("r3", OUTCOME_DEGRADED, durations={"total_s": 0.3}),
            record("r4", OUTCOME_FAILED, durations={}),
        ]
        stats = summarize(records)
        assert stats["runs"] == 4
        assert stats["outcomes"] == {"ok": 2, "degraded": 1, "failed": 1}
        # 1 degraded of 3 usable runs; 1 failure of 4 runs.
        assert stats["degradation_rate"] == pytest.approx(1 / 3)
        assert stats["failure_rate"] == pytest.approx(1 / 4)
        assert stats["cache"]["hits"] == 8
        assert stats["cache"]["misses"] == 4
        assert stats["cache"]["hit_rate"] == pytest.approx(8 / 12)
        total = stats["durations"]["total"]
        assert total["count"] == 3
        assert total["mean_s"] == pytest.approx(0.2)
        assert total["p50_s"] == pytest.approx(0.2)
        assert total["p95_s"] == pytest.approx(0.3)

    def test_empty(self):
        stats = summarize([])
        assert stats["runs"] == 0
        text = format_stats(stats)
        assert "runs: 0" in text

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.95) == 4.0
        assert percentile([7.5], 0.5) == 7.5

    def test_format_stats_mentions_phases(self):
        stats = summarize([
            record("r1", durations={"total_s": 0.1, "mapping": 0.05}),
        ])
        text = format_stats(stats)
        assert "mapping" in text
        assert "p95" in text


class TestResolveLedger:
    def test_disabled_flag_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("VASE_LEDGER", str(tmp_path / "env.jsonl"))
        assert resolve_ledger(str(tmp_path / "x.jsonl"), disabled=True) \
            is None

    def test_explicit_flag_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("VASE_LEDGER", "off")
        ledger = resolve_ledger(str(tmp_path / "x.jsonl"), disabled=False)
        assert ledger is not None
        assert ledger.path == tmp_path / "x.jsonl"

    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("VASE_LEDGER", str(tmp_path / "env.jsonl"))
        ledger = resolve_ledger(None, disabled=False)
        assert ledger.path == tmp_path / "env.jsonl"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "false",
                                       "OFF", "False"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("VASE_LEDGER", value)
        assert resolve_ledger(None, disabled=False) is None

    def test_default_location(self, monkeypatch, tmp_path):
        monkeypatch.delenv("VASE_LEDGER", raising=False)
        monkeypatch.chdir(tmp_path)
        ledger = resolve_ledger(None, disabled=False)
        assert ledger.path.name == "ledger.jsonl"
        assert ledger.path.parent.name == ".vase-ledger"


class TestLedgerCli:
    def test_history_and_stats_read_back_two_runs(self, tmp_path, capsys):
        """Acceptance criterion: a cold-started ledger accumulates runs
        that ``vase history`` / ``vase stats`` read back."""
        path = str(tmp_path / "ledger.jsonl")
        assert main(["synth", "biquad_filter", "--ledger", path]) == 0
        assert main(["synth", "power_meter", "--ledger", path]) == 0
        capsys.readouterr()

        assert main(["history", "--ledger", path]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 2
        assert "synth" in out
        assert "OK" in out

        assert main(["stats", "--ledger", path]) == 0
        out = capsys.readouterr().out
        assert "runs: 2" in out
        assert "failure rate" in out

    def test_history_json_and_filters(self, tmp_path, capsys):
        path = str(tmp_path / "ledger.jsonl")
        assert main(["synth", "biquad_filter", "--ledger", path]) == 0
        assert main(["synth", "power_meter", "--ledger", path]) == 0
        capsys.readouterr()
        assert main([
            "history", "--ledger", path, "--json", "--source", "power",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert "power_meter" in records[0]["source"]
        assert records[0]["outcome"] == OUTCOME_OK
        assert records[0]["metrics"]["opamps"] >= 1

    def test_failed_runs_are_recorded(self, tmp_path, capsys):
        from repro.apps import biquad_filter
        from repro.diagnostics import SynthesisError
        from repro.estimation import ConstraintSet
        from repro.flow import FlowOptions, synthesize

        path = str(tmp_path / "ledger.jsonl")
        with pytest.raises(SynthesisError):
            synthesize(
                biquad_filter.VASS_SOURCE,
                options=FlowOptions(
                    ledger=RunLedger(path),
                    constraints=ConstraintSet(max_opamps=1),
                ),
            )
        assert main([
            "history", "--ledger", path, "--outcome", "failed", "--json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert "error" in records[0]["metrics"]

    def test_history_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert main([
            "history", "--ledger", str(tmp_path / "nope.jsonl"),
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stats_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert main([
            "stats", "--ledger", str(tmp_path / "nope.jsonl"),
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_ledger_flag_writes_nothing(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("VASE_LEDGER", raising=False)
        assert main(["synth", "biquad_filter", "--no-ledger"]) == 0
        assert not (tmp_path / ".vase-ledger").exists()

    def test_batch_appends_one_record(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        from repro.apps import biquad_filter
        (corpus / "one.vhd").write_text(biquad_filter.VASS_SOURCE)
        path = str(tmp_path / "ledger.jsonl")
        assert main(["batch", str(corpus), "--ledger", path]) == 0
        capsys.readouterr()
        assert main(["history", "--ledger", path, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["kind"] == "batch"
        assert records[0]["metrics"]["files"] == 1
        assert records[0]["metrics"]["ok"] == 1
