"""Circuit-level (MNA) tests of the sampled and dynamic applications."""

import math

import numpy as np
import pytest

from repro.apps import iterative_solver, power_meter
from repro.flow import synthesize
from repro.spice import elaborate, pulse_wave, sin_wave, dc


class TestPowerMeterCircuit:
    @pytest.fixture(scope="class")
    def synthesized(self):
        return synthesize(power_meter.VASS_SOURCE)

    def test_sample_hold_tracks_strobe(self, synthesized):
        strobe = pulse_wave(0.0, 1.0, delay=2e-3, rise=1e-6, fall=1e-6,
                            width=1e-3, period=100e-3)
        circuit = elaborate(
            synthesized.netlist,
            input_waves={
                "vsense": lambda t: 0.8,
                "isense": lambda t: -0.3,
            },
            control_waves={"sclk": strobe},
        )
        # Probe the S/H instance outputs directly.
        sh_nodes = [
            f"n{inst.output}"
            for inst in synthesized.netlist.by_component("sample_hold")
        ]
        sim = circuit.transient(6e-3, 5e-6, probes=sh_nodes)
        finals = sorted(round(sim.final(node), 2) for node in sh_nodes)
        # After the strobe the two channels hold their input values.
        assert finals == [-0.3, 0.8]

    def test_zero_cross_outputs_are_logic_levels(self, synthesized):
        circuit = elaborate(
            synthesized.netlist,
            input_waves={
                "vsense": lambda t: 0.5,
                "isense": lambda t: -0.5,
            },
            control_waves={"sclk": dc(0.0)},
        )
        detector_nodes = [
            f"n{inst.output}"
            for inst in synthesized.netlist.by_component(
                "zero_cross_detector"
            )
        ]
        sim = circuit.transient(1e-3, 5e-6, probes=detector_nodes)
        finals = sorted(round(sim.final(node), 2) for node in detector_nodes)
        assert finals == [0.0, 1.0]


class TestIterativeSolverCircuit:
    def test_integrator_feedback_converges(self):
        result = synthesize(iterative_solver.VASS_SOURCE)
        circuit = elaborate(
            result.netlist,
            input_waves={
                "bx": dc(1.0),
                "by": dc(2.0),
                "bz": dc(3.0),
            },
            control_waves={"strobe": dc(0.0)},
        )
        out = circuit.output_nodes["residual"]
        # The solver settles in a few time constants (integrator gain 1,
        # so seconds of simulated time; keep dt coarse).
        sim = circuit.transient(12.0, 4e-3, probes=[out])
        exact = iterative_solver.exact_solution(1.0, 2.0, 3.0)
        expected_residual = exact[0] - exact[1]
        assert sim.final(out) == pytest.approx(expected_residual, abs=0.05)
