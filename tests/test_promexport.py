"""Tests for the Prometheus text-exposition export and its linter."""

import json

import pytest

from repro.apps import biquad_filter
from repro.cli import main
from repro.instrument import render_prometheus, validate_exposition
from repro.instrument.promexport import metric_name


SNAPSHOT = {
    "counters": {
        "mapper.nodes_visited": 42,
        "cache.hits": 3,
    },
    "gauges": {
        "flow.last_area_um2": 12.5,
    },
    "histograms": {
        "mapper.runtime_s": {
            "count": 4, "sum": 2.0, "min": 0.1, "max": 1.0,
            "mean": 0.5, "p50": 0.4, "p95": 1.0,
        },
    },
}


class TestMetricName:
    def test_dots_become_underscores_and_namespace_prefixes(self):
        assert metric_name("mapper.nodes_visited") \
            == "vase_mapper_nodes_visited"

    def test_hostile_characters_are_sanitized(self):
        name = metric_name("weird-name with spaces!")
        assert " " not in name
        assert "-" not in name
        assert name.startswith("vase_")

    def test_custom_namespace(self):
        assert metric_name("x", namespace="acme") == "acme_x"


class TestRenderPrometheus:
    def test_counters_get_total_suffix_and_counter_type(self):
        text = render_prometheus(SNAPSHOT)
        assert "# TYPE vase_mapper_nodes_visited_total counter" in text
        assert "vase_mapper_nodes_visited_total 42" in text
        assert "vase_cache_hits_total 3" in text

    def test_gauges(self):
        text = render_prometheus(SNAPSHOT)
        assert "# TYPE vase_flow_last_area_um2 gauge" in text
        assert "vase_flow_last_area_um2 12.5" in text

    def test_histograms_render_as_summaries(self):
        text = render_prometheus(SNAPSHOT)
        assert "# TYPE vase_mapper_runtime_s summary" in text
        assert 'vase_mapper_runtime_s{quantile="0.5"} 0.4' in text
        assert 'vase_mapper_runtime_s{quantile="0.95"} 1' in text
        assert "vase_mapper_runtime_s_sum 2" in text
        assert "vase_mapper_runtime_s_count 4" in text

    def test_output_passes_the_linter(self):
        assert validate_exposition(render_prometheus(SNAPSHOT)) == []

    def test_empty_snapshot_is_valid(self):
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        )
        assert validate_exposition(text) == []

    def test_real_run_passes_the_linter(self):
        from repro.flow import synthesize
        from repro.instrument.metrics import metrics

        registry = metrics()
        registry.reset()
        synthesize(biquad_filter.VASS_SOURCE)
        text = render_prometheus(registry.snapshot())
        assert validate_exposition(text) == []
        assert "vase_mapper_nodes_visited_total" in text
        registry.reset()


class TestValidateExposition:
    def test_flags_malformed_sample_lines(self):
        errors = validate_exposition("this is not prometheus\n")
        assert errors
        assert "line 1" in errors[0]

    def test_flags_unknown_type(self):
        errors = validate_exposition("# TYPE x frobnicator\n")
        assert any("frobnicator" in e for e in errors)

    def test_flags_duplicate_type(self):
        text = "# TYPE x counter\nx_total 1\n# TYPE x counter\n"
        errors = validate_exposition(text)
        assert any("duplicate" in e.lower() for e in errors)

    def test_flags_type_after_samples(self):
        text = "x_total 1\n# TYPE x counter\n"
        errors = validate_exposition(text)
        assert any("after" in e.lower() for e in errors)

    def test_accepts_labels_nan_and_inf(self):
        text = (
            "# TYPE demo summary\n"
            'demo{quantile="0.5"} NaN\n'
            'demo{quantile="0.95"} +Inf\n'
            "demo_sum 1e-3\n"
            "demo_count 0\n"
        )
        assert validate_exposition(text) == []


class TestMetricsCli:
    def test_metrics_prom_for_one_run(self, capsys):
        assert main(["metrics", "biquad_filter", "--prom"]) == 0
        out = capsys.readouterr().out
        assert validate_exposition(out) == []
        assert "vase_mapper_nodes_visited_total" in out

    def test_metrics_prom_to_file(self, tmp_path, capsys):
        target = tmp_path / "run.prom"
        assert main([
            "metrics", "biquad_filter", "--prom", "--out", str(target),
        ]) == 0
        assert validate_exposition(target.read_text()) == []

    def test_metrics_json(self, capsys):
        assert main(["metrics", "biquad_filter", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["mapper.nodes_visited"] >= 1

    def test_metrics_from_json(self, tmp_path, capsys):
        source = tmp_path / "snapshot.json"
        source.write_text(json.dumps(SNAPSHOT))
        assert main([
            "metrics", "--from-json", str(source), "--prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "vase_mapper_nodes_visited_total 42" in out
        assert validate_exposition(out) == []

    def test_metrics_without_input_is_an_error(self, capsys):
        assert main(["metrics"]) != 0

    def test_batch_metrics_out(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "one.vhd").write_text(biquad_filter.VASS_SOURCE)
        target = tmp_path / "artifacts" / "batch.prom"
        assert main([
            "batch", str(corpus), "--metrics-out", str(target),
            "--no-ledger",
        ]) == 0
        text = target.read_text()
        assert validate_exposition(text) == []
        assert "vase_" in text
