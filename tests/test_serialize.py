"""Round-trip tests for VHIF JSON serialization."""

import json
import math

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.compiler import compile_design
from repro.diagnostics import VaseError
from repro.synth import map_sfg
from repro.vhif import Interpreter
from repro.vhif.serialize import (
    design_from_json,
    design_to_json,
    dumps,
    loads,
)


@pytest.fixture(scope="module")
def designs():
    return {
        name: compile_design(mod.VASS_SOURCE)
        for name, mod in ALL_APPLICATIONS.items()
    }


class TestRoundtrip:
    @pytest.mark.parametrize("name", list(ALL_APPLICATIONS))
    def test_structure_preserved(self, designs, name):
        original = designs[name]
        restored = loads(dumps(original))
        assert restored.name == original.name
        assert (
            restored.statistics().as_row() == original.statistics().as_row()
        )
        assert len(restored.main_sfg) == len(original.main_sfg)

    @pytest.mark.parametrize("name", list(ALL_APPLICATIONS))
    def test_validates_after_roundtrip(self, designs, name):
        restored = loads(dumps(designs[name]))
        restored.validate()

    def test_block_ids_preserved(self, designs):
        original = designs["receiver"]
        restored = loads(dumps(original))
        assert {b.block_id for b in restored.main_sfg.blocks} == {
            b.block_id for b in original.main_sfg.blocks
        }

    def test_ports_preserved(self, designs):
        restored = loads(dumps(designs["receiver"]))
        assert restored.ports["earph"].limit_level == 1.5
        assert restored.ports["earph"].drive_load_ohms == 270.0

    def test_event_sources_preserved(self, designs):
        restored = loads(dumps(designs["receiver"]))
        assert "line'above(0.2)" in restored.event_sources

    def test_taps_and_constants_preserved(self, designs):
        restored = loads(dumps(designs["receiver"]))
        assert "rvar" in restored.quantity_taps
        assert restored.constants["aline"] == 2.0

    def test_double_roundtrip_stable(self, designs):
        once = dumps(designs["function_generator"])
        twice = dumps(loads(once))
        assert once == twice

    def test_json_is_plain(self, designs):
        document = design_to_json(designs["receiver"])
        json.dumps(document)  # must not raise


class TestSemanticPreservation:
    def test_restored_design_simulates_identically(self, designs):
        original = designs["receiver"]
        restored = loads(dumps(original))
        inputs = {
            "line": lambda t: math.sin(2 * math.pi * 1e3 * t),
            "local": lambda t: 0.1,
        }
        a = Interpreter(original, dt=1e-5, inputs=inputs).run(
            1e-3, probes=["earph"]
        )
        b = Interpreter(restored, dt=1e-5, inputs=inputs).run(
            1e-3, probes=["earph"]
        )
        assert a["earph"] == pytest.approx(b["earph"])

    def test_restored_design_maps_identically(self, designs):
        original = designs["function_generator"]
        restored = loads(dumps(original))
        result_a = map_sfg(original.main_sfg)
        result_b = map_sfg(restored.main_sfg)
        assert result_a.netlist.summary() == result_b.netlist.summary()


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(VaseError, match="not a VHIF"):
            design_from_json({"format": "other"})

    def test_wrong_version_rejected(self):
        with pytest.raises(VaseError, match="version"):
            design_from_json({"format": "vhif", "version": 999})
