"""Tests for the small-signal AC analysis and the biquad application."""

import math

import numpy as np
import pytest

from repro.apps import biquad_filter
from repro.diagnostics import SimulationError
from repro.spice import dc, elaborate
from repro.spice.ac import AcSolver, ac_sweep
from repro.spice.macromodel import OpAmpMacro, add_opamp
from repro.spice.mna import Circuit


def rc_lowpass(r=1e3, c=1e-7):
    circuit = Circuit()
    circuit.vsource("VIN", "in", "0", dc(0.0))
    circuit.resistor("R", "in", "out", r)
    circuit.capacitor("C", "out", "0", c)
    return circuit


class TestAcBasics:
    def test_rc_cutoff(self):
        result = ac_sweep(rc_lowpass(), 10.0, 1e6, points_per_decade=40,
                          probes=["out"])
        fc = 1.0 / (2 * math.pi * 1e3 * 1e-7)
        assert result.cutoff_frequency("out") == pytest.approx(fc, rel=0.03)

    def test_rc_rolloff_slope(self):
        result = ac_sweep(rc_lowpass(), 10.0, 1e6, probes=["out"])
        mags = result.magnitude_db("out")
        # One decade past the corner: about -20 dB/decade.
        f = result.frequencies
        i1 = int(np.argmin(np.abs(f - 1e4)))
        i2 = int(np.argmin(np.abs(f - 1e5)))
        assert mags[i1] - mags[i2] == pytest.approx(20.0, abs=1.5)

    def test_rc_phase(self):
        result = ac_sweep(rc_lowpass(), 10.0, 1e6, probes=["out"])
        phase = result.phase_deg("out")
        assert phase[0] == pytest.approx(0.0, abs=2.0)
        assert phase[-1] == pytest.approx(-90.0, abs=3.0)

    def test_flat_divider(self):
        circuit = Circuit()
        circuit.vsource("VIN", "in", "0", dc(0.0))
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        result = ac_sweep(circuit, 10.0, 1e6, probes=["out"])
        assert np.allclose(result.magnitude("out"), 0.5, rtol=1e-6)

    def test_opamp_macromodel_linearized(self):
        circuit = Circuit()
        circuit.vsource("VIN", "in", "0", dc(0.0))
        circuit.resistor("R1", "in", "vm", 10e3)
        circuit.resistor("RF", "vm", "out", 20e3)
        add_opamp(circuit, "OA", "0", "vm", "out")
        result = ac_sweep(circuit, 10.0, 1e4, probes=["out"])
        assert result.magnitude("out")[0] == pytest.approx(2.0, rel=1e-2)

    def test_requires_voltage_source(self):
        circuit = Circuit()
        circuit.resistor("R", "a", "0", 1e3)
        with pytest.raises(SimulationError):
            AcSolver(circuit)

    def test_unknown_ac_source(self):
        with pytest.raises(SimulationError):
            AcSolver(rc_lowpass(), ac_source="VGHOST")

    def test_bad_sweep_range(self):
        with pytest.raises(SimulationError):
            ac_sweep(rc_lowpass(), 100.0, 10.0)

    def test_unknown_probe(self):
        with pytest.raises(SimulationError):
            ac_sweep(rc_lowpass(), 10.0, 1e3, probes=["ghost"])

    def test_peak_frequency_of_rlc(self):
        circuit = Circuit()
        circuit.vsource("VIN", "in", "0", dc(0.0))
        circuit.resistor("R", "in", "mid", 10.0)
        # series LC replaced by RC bandpass-ish: use two RC sections to
        # create a peak via an active resonator instead:
        circuit.capacitor("C1", "mid", "0", 1e-7)
        result = ac_sweep(circuit, 10.0, 1e6, probes=["mid"])
        # Plain RC: the peak sits at the lowest frequency.
        assert result.peak_frequency("mid") == pytest.approx(
            result.frequencies[0]
        )


class TestBiquadApplication:
    @pytest.fixture(scope="class")
    def synthesized(self):
        return biquad_filter.synthesize_biquad()

    def test_structure(self, synthesized):
        cats = dict(synthesized.netlist.category_counts())
        assert cats["integ."] == 2

    def test_frequency_annotation_drives_constraints(self, synthesized):
        # The port declares FREQUENCY 0..1 kHz; derived constraints use
        # that band (not the 20 kHz default).
        assert synthesized.design.ports["vin"].frequency_range == (
            0.0,
            biquad_filter.F0_HZ,
        )

    def test_ac_response_matches_transfer_function(self, synthesized):
        circuit = elaborate(synthesized.netlist,
                            input_waves={"vin": dc(0.0)})
        out = circuit.output_nodes["vlp"]
        result = ac_sweep(circuit.circuit, 10.0, 100e3, probes=[out],
                          ac_source="VIN_vin")
        for f_target in (100.0, 500.0, 1000.0, 5000.0, 10000.0):
            index = int(np.argmin(np.abs(result.frequencies - f_target)))
            measured = result.magnitude(out)[index]
            reference = biquad_filter.reference_magnitude(
                float(result.frequencies[index])
            )
            assert measured == pytest.approx(reference, rel=0.05, abs=1e-3)

    def test_cutoff_at_f0(self, synthesized):
        circuit = elaborate(synthesized.netlist,
                            input_waves={"vin": dc(0.0)})
        out = circuit.output_nodes["vlp"]
        result = ac_sweep(circuit.circuit, 10.0, 100e3,
                          points_per_decade=40, probes=[out],
                          ac_source="VIN_vin")
        assert result.cutoff_frequency(out) == pytest.approx(
            biquad_filter.F0_HZ, rel=0.05
        )

    def test_transient_step_response(self, synthesized):
        circuit = elaborate(synthesized.netlist,
                            input_waves={"vin": dc(1.0)})
        out = circuit.output_nodes["vlp"]
        sim = circuit.transient(5e-3, 2e-6, probes=[out])
        # Butterworth step response settles at the DC gain (1.0).
        assert sim.final(out) == pytest.approx(1.0, rel=0.03)
        # Q = 0.707: overshoot under ~5 %.
        assert float(np.max(sim[out])) < 1.1

    def test_behavioral_interpreter_agrees(self, synthesized):
        from repro.vhif import Interpreter

        interp = Interpreter(synthesized.design, dt=1e-6,
                             inputs={"vin": lambda t: 1.0})
        traces = interp.run(5e-3, probes=["vlp"])
        assert traces.final("vlp") == pytest.approx(1.0, rel=0.03)
