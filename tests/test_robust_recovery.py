"""Tests for the recovery ladder and constraint relaxation."""

from pathlib import Path

import pytest

from repro.compiler import compile_design
from repro.diagnostics import Severity, SynthesisError
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, derive_constraints, synthesize
from repro.instrument import explogging
from repro.robust.recovery import (
    OUTCOME_FAILED,
    OUTCOME_RECOVERED,
    OUTCOME_SKIPPED,
    RUNG_BASELINE,
    RUNG_GREEDY,
    RUNG_RELAX,
    RecoveryLog,
    RecoveryOptions,
    relax_constraints,
)
from repro.synth import MapperOptions

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()


def _tight_area() -> ConstraintSet:
    """A max_area bound just below what the biquad needs — one
    relaxation doubling makes it feasible again."""
    design = compile_design(BIQUAD)
    baseline = synthesize(BIQUAD)
    return ConstraintSet(
        signal_bandwidth_hz=derive_constraints(
            design, ConstraintSet()
        ).signal_bandwidth_hz,
        max_area=baseline.estimate.area * 0.6,
    )


class TestRelaxConstraints:
    def test_upper_limits_multiply(self):
        base = ConstraintSet(max_area=10.0, max_power=2.0)
        relaxed, changes = relax_constraints(
            base, {"max_area": 3, "max_power": 1}, factor=2.0
        )
        assert relaxed.max_area == pytest.approx(20.0)
        assert relaxed.max_power == pytest.approx(4.0)
        assert len(changes) == 2
        # The original set is untouched.
        assert base.max_area == pytest.approx(10.0)

    def test_lower_floors_divide(self):
        base = ConstraintSet(min_ugf_hz=1e6, min_slew_rate=1e5)
        relaxed, _ = relax_constraints(
            base, {"min_ugf": 1, "min_slew_rate": 1}, factor=4.0
        )
        assert relaxed.min_ugf_hz == pytest.approx(2.5e5)
        assert relaxed.min_slew_rate == pytest.approx(2.5e4)

    def test_opamp_count_always_grows(self):
        base = ConstraintSet(max_opamps=1)
        relaxed, _ = relax_constraints(base, {"max_opamps": 1}, factor=1.1)
        assert relaxed.max_opamps >= 2

    def test_sizing_violation_lowers_bandwidth(self):
        base = ConstraintSet(signal_bandwidth_hz=1e4)
        relaxed, changes = relax_constraints(base, {"sizing": 5}, factor=2.0)
        assert relaxed.signal_bandwidth_hz == pytest.approx(5e3)
        assert any("signal_bandwidth_hz" in c for c in changes)

    def test_unknown_names_left_alone(self):
        base = ConstraintSet(max_area=10.0)
        relaxed, changes = relax_constraints(
            base, {"injected": 7, "mystery": 1}
        )
        assert changes == []
        assert vars(relaxed) == vars(base)

    def test_unset_constraints_not_invented(self):
        # max_area is None by default: a violation tally naming it must
        # not conjure a bound out of thin air.
        relaxed, changes = relax_constraints(ConstraintSet(), {"max_area": 2})
        assert relaxed.max_area is None
        assert changes == []


class TestRecoveryLog:
    def test_attempt_numbers_are_consecutive(self):
        log = RecoveryLog()
        first = log.record(RUNG_BASELINE, "synthesis", OUTCOME_FAILED, "boom")
        second = log.record(RUNG_GREEDY, "greedy mapper", OUTCOME_RECOVERED)
        assert (first.attempt, second.attempt) == (1, 2)
        assert "[1] baseline" in first.describe()
        assert "(boom)" in first.describe()
        assert first.as_dict()["outcome"] == OUTCOME_FAILED


class TestLadder:
    def test_disabled_by_default(self):
        options = FlowOptions(constraints=_tight_area())
        with pytest.raises(SynthesisError, match="max_area"):
            synthesize(BIQUAD, options=options)

    def test_relaxation_rung_recovers(self):
        options = FlowOptions(constraints=_tight_area(), recovery=True)
        result = synthesize(BIQUAD, options=options)
        assert result.degraded
        assert result.netlist.instances
        # The ladder record: baseline failed, then the relax rung won.
        assert result.recovery[0].rung == RUNG_BASELINE
        assert result.recovery[0].outcome == OUTCOME_FAILED
        last = result.recovery[-1]
        assert last.rung == RUNG_RELAX
        assert last.outcome == OUTCOME_RECOVERED
        assert "max_area" in last.action  # names what was loosened
        assert "DEGRADED" in last.detail

    def test_recovery_surfaces_in_diagnostics_and_describe(self):
        options = FlowOptions(constraints=_tight_area(), recovery=True)
        result = synthesize(BIQUAD, options=options)
        messages = [d.message for d in result.diagnostics]
        assert any("recovery:" in m for m in messages)
        severities = [
            d.severity for d in result.diagnostics
            if "recovery:" in d.message
        ]
        assert Severity.WARNING in severities  # the recovered rung warns
        text = result.describe()
        assert "recovery ladder" in text

    def test_recovery_events_reach_the_explog(self):
        options = FlowOptions(constraints=_tight_area(), recovery=True)
        with explogging() as log:
            synthesize(BIQUAD, options=options)
        events = log.of_kind("recovery")
        assert events
        assert events[0]["rung"] == RUNG_BASELINE
        assert events[-1]["outcome"] == OUTCOME_RECOVERED

    def test_greedy_rung_recovers_from_node_budget(self):
        # A 3-node budget truncates the exhaustive search before any
        # feasible mapping; the greedy heuristic still finds one.
        options = FlowOptions(
            mapper=MapperOptions(max_nodes=3, first_solution_only=False),
            recovery=True,
        )
        result = synthesize(BIQUAD, options=options)
        assert result.netlist.instances
        recovered = [
            e for e in result.recovery if e.outcome == OUTCOME_RECOVERED
        ]
        assert recovered and recovered[0].rung == RUNG_GREEDY

    def test_relaxation_respects_step_budget(self):
        # An absurd bound cannot become feasible within the allowed
        # doublings: the ladder must exhaust, not loop forever.
        options = FlowOptions(
            constraints=ConstraintSet(max_area=1e-12),
            recovery=True,
            recovery_options=RecoveryOptions(max_relax_steps=2),
        )
        with pytest.raises(SynthesisError) as info:
            synthesize(BIQUAD, options=options)
        message = str(info.value)
        assert "recovery ladder exhausted" in message
        relax_attempts = message.count("relax:")
        assert relax_attempts <= 2

    def test_rungs_can_be_disabled(self):
        options = FlowOptions(
            constraints=_tight_area(),
            recovery=True,
            recovery_options=RecoveryOptions(try_relaxation=False),
        )
        with pytest.raises(SynthesisError):
            synthesize(BIQUAD, options=options)

    def test_skipped_causalization_is_recorded(self):
        # The amp design has a single causalization, so rung 1 is
        # skipped — visibly, not silently.
        options = FlowOptions(constraints=_tight_area(), recovery=True)
        result = synthesize(BIQUAD, options=options)
        skipped = [
            e for e in result.recovery if e.outcome == OUTCOME_SKIPPED
        ]
        assert any(e.rung == "causalization" for e in skipped)

    def test_successful_run_has_no_recovery_events(self):
        result = synthesize(BIQUAD, options=FlowOptions(recovery=True))
        assert result.recovery == []
        assert not result.degraded
