"""Tests for FSM realization summaries (analog vs digital fallback)."""

import pytest

from repro.apps import function_generator, power_meter, receiver
from repro.flow import synthesize


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestAnalogRealizations:
    def test_receiver_fsm_fully_analog(self):
        result = synthesize(receiver.VASS_SOURCE)
        (summary,) = result.fsm_summaries
        assert summary.mode == "analog"
        assert summary.estimated_area == 0.0
        assert summary.realized_signals == ["c1"]

    def test_function_generator_fsm_fully_analog(self):
        result = synthesize(function_generator.VASS_SOURCE)
        (summary,) = result.fsm_summaries
        assert summary.mode == "analog"
        assert summary.realized_signals == ["dir"]

    def test_digital_fallback_area_zero_for_analog(self):
        result = synthesize(receiver.VASS_SOURCE)
        assert result.digital_fallback_area == 0.0


class TestDigitalFallback:
    COUNTER_SOURCE = wrap(
        "QUANTITY u : IN real; QUANTITY y : OUT real; "
        "SIGNAL done : OUT bit",
        decls="SIGNAL phase : bit;",
        body="""
  y == u;
  PROCESS (u'ABOVE(0.5)) IS
    VARIABLE n : real;
  BEGIN
    n := 1.0;
    n := n + 1.0;
    IF (u'ABOVE(0.5) = TRUE) THEN
      phase <= '1';
      done <= '1';
    ELSE
      phase <= '0';
      done <= '0';
    END IF;
  END PROCESS;
""",
    )

    def test_power_meter_sampling_fsm_is_digital(self):
        result = synthesize(power_meter.VASS_SOURCE)
        modes = {s.fsm: s.mode for s in result.fsm_summaries}
        # The strobe-driven conversion process registers the codes:
        # its outputs are sampled data, not analog control.
        assert "proc0" in modes
        assert modes["proc0"] in ("digital", "mixed")
        # The polarity-detection process is pure analog control.
        assert modes["proc1"] == "analog"

    def test_fallback_area_positive(self):
        result = synthesize(power_meter.VASS_SOURCE)
        assert result.digital_fallback_area > 0.0

    def test_flipflop_count_reasonable(self):
        result = synthesize(power_meter.VASS_SOURCE)
        digital = [s for s in result.fsm_summaries if s.mode != "analog"]
        assert digital
        for summary in digital:
            assert summary.flipflops >= 1 + len(summary.digital_signals)

    def test_describe_mentions_standard_cells(self):
        result = synthesize(power_meter.VASS_SOURCE)
        digital = [s for s in result.fsm_summaries if s.mode != "analog"]
        assert any("standard cells" in s.describe() for s in digital)

    def test_result_describe_includes_fallback(self):
        result = synthesize(power_meter.VASS_SOURCE)
        assert "flip-flops" in result.describe()
