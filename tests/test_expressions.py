"""Tests for the expression-to-SFG compiler."""

import pytest

from repro.diagnostics import CompileError
from repro.vass.parser import parse_expression, parse_source
from repro.vass.semantics import analyze
from repro.compiler.expressions import ExprCompiler
from repro.vhif.sfg import BlockKind, SignalFlowGraph


def make_compiler(constants=""):
    """Compiler over a scope with inputs a, b and optional constants."""
    source = f"""
ENTITY e IS PORT (QUANTITY a : IN real; QUANTITY b : IN real;
                  QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE t OF e IS
{constants}
BEGIN
  y == a;
END ARCHITECTURE;
"""
    design = analyze(parse_source(source))
    g = SignalFlowGraph("main")
    compiler = ExprCompiler(g, design.scope)
    for name in ("a", "b"):
        compiler.bind(name, g.add(BlockKind.INPUT, name=name))
    return compiler


class TestBasicLowering:
    def test_name_resolves_to_binding(self):
        c = make_compiler()
        block = c.compile(parse_expression("a"))
        assert block.kind is BlockKind.INPUT

    def test_unbound_name_rejected(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile(parse_expression("ghost"))

    def test_literal_becomes_const(self):
        c = make_compiler()
        block = c.compile(parse_expression("2.5"))
        assert block.kind is BlockKind.CONST
        assert block.params["value"] == 2.5

    def test_static_subexpression_folds(self):
        c = make_compiler("  CONSTANT k : real := 3.0;")
        block = c.compile(parse_expression("k * 2.0"))
        assert block.kind is BlockKind.CONST
        assert block.params["value"] == 6.0

    def test_const_dedup(self):
        c = make_compiler()
        b1 = c.compile(parse_expression("1.5"))
        b2 = c.compile(parse_expression("1.5"))
        assert b1 is b2

    def test_negation(self):
        c = make_compiler()
        block = c.compile(parse_expression("-a"))
        assert block.kind is BlockKind.NEG

    def test_abs(self):
        c = make_compiler()
        block = c.compile(parse_expression("abs(a)"))
        assert block.kind is BlockKind.ABS


class TestStrengthSelection:
    def test_const_times_signal_is_scale(self):
        c = make_compiler()
        block = c.compile(parse_expression("2.0 * a"))
        assert block.kind is BlockKind.SCALE
        assert block.params["gain"] == 2.0

    def test_signal_times_signal_is_mul(self):
        c = make_compiler()
        block = c.compile(parse_expression("a * b"))
        assert block.kind is BlockKind.MUL

    def test_unity_gain_elided(self):
        c = make_compiler()
        block = c.compile(parse_expression("1.0 * a"))
        assert block.kind is BlockKind.INPUT  # just `a`

    def test_minus_one_gain_becomes_neg(self):
        c = make_compiler()
        block = c.compile(parse_expression("(-1.0) * a"))
        assert block.kind is BlockKind.NEG

    def test_divide_by_const_is_scale(self):
        c = make_compiler()
        block = c.compile(parse_expression("a / 4.0"))
        assert block.kind is BlockKind.SCALE
        assert block.params["gain"] == 0.25

    def test_divide_by_signal_is_div(self):
        c = make_compiler()
        block = c.compile(parse_expression("a / b"))
        assert block.kind is BlockKind.DIV

    def test_divide_by_zero_rejected(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile(parse_expression("a / 0.0"))


class TestSumFlattening:
    def test_nary_add(self):
        c = make_compiler()
        block = c.compile(parse_expression("a + b + 1.0"))
        assert block.kind is BlockKind.ADD
        assert block.n_inputs == 3

    def test_two_term_mixed_sign_is_sub(self):
        c = make_compiler()
        block = c.compile(parse_expression("a - b"))
        assert block.kind is BlockKind.SUB

    def test_weighted_sum_structure(self):
        c = make_compiler()
        block = c.compile(parse_expression("2.0 * a + 3.0 * b"))
        assert block.kind is BlockKind.ADD
        preds = c.sfg.data_predecessors(block)
        assert all(p.kind is BlockKind.SCALE for p in preds)


class TestPowerLowering:
    def test_square_is_mul_chain(self):
        c = make_compiler()
        block = c.compile(parse_expression("a ** 2"))
        assert block.kind is BlockKind.MUL

    def test_fractional_power_via_log_exp(self):
        c = make_compiler()
        block = c.compile(parse_expression("a ** 1.8"))
        assert block.kind is BlockKind.EXP
        scale = c.sfg.driver_of(block, 0)
        assert scale.kind is BlockKind.SCALE
        assert scale.params["gain"] == pytest.approx(1.8)
        log = c.sfg.driver_of(scale, 0)
        assert log.kind is BlockKind.LOG

    def test_symbolic_exponent_rejected(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile(parse_expression("a ** b"))

    def test_sqrt_via_log_exp(self):
        c = make_compiler()
        block = c.compile(parse_expression("sqrt(a)"))
        assert block.kind is BlockKind.EXP


class TestAttributes:
    def test_dot_is_differentiator(self):
        c = make_compiler()
        block = c.compile(parse_expression("a'dot"))
        assert block.kind is BlockKind.DIFFERENTIATE

    def test_integ_is_integrator(self):
        c = make_compiler()
        block = c.compile(parse_expression("a'integ"))
        assert block.kind is BlockKind.INTEGRATE

    def test_above_is_comparator(self):
        c = make_compiler()
        block = c.compile(parse_expression("a'above(0.3)"))
        assert block.kind is BlockKind.COMPARATOR
        assert block.params["threshold"] == pytest.approx(0.3)

    def test_above_nonstatic_threshold_rejected(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile(parse_expression("a'above(b)"))


class TestCse:
    def test_identical_subtrees_share_blocks(self):
        c = make_compiler()
        b1 = c.compile(parse_expression("a + b"))
        b2 = c.compile(parse_expression("a + b"))
        assert b1 is b2

    def test_commuted_operands_share(self):
        c = make_compiler()
        b1 = c.compile(parse_expression("a + b"))
        b2 = c.compile(parse_expression("b + a"))
        assert b1 is b2

    def test_rebinding_invalidates_reuse(self):
        c = make_compiler()
        b1 = c.compile(parse_expression("a + b"))
        # Rebind a to a new block (as procedural assignment would).
        c.bind("a", c.sfg.add(BlockKind.NEG))
        b2 = c.compile(parse_expression("a + b"))
        assert b1 is not b2

    def test_shared_subexpression_inside_larger(self):
        c = make_compiler()
        inner = c.compile(parse_expression("a * b"))
        outer = c.compile(parse_expression("(a * b) + 1.0"))
        assert c.sfg.driver_of(outer, 0) is inner


class TestConditions:
    def test_greater_than(self):
        c = make_compiler()
        block = c.compile_condition(parse_expression("a > b"))
        assert block.kind is BlockKind.COMPARATOR
        sub = c.sfg.driver_of(block, 0)
        assert sub.kind is BlockKind.SUB

    def test_less_than_flips(self):
        c = make_compiler()
        block = c.compile_condition(parse_expression("a < b"))
        assert block.kind is BlockKind.COMPARATOR
        neg = c.sfg.driver_of(block, 0)
        assert neg.kind is BlockKind.NEG

    def test_above_condition(self):
        c = make_compiler()
        block = c.compile_condition(parse_expression("a'above(1.0)"))
        assert block.kind is BlockKind.COMPARATOR

    def test_not_condition(self):
        c = make_compiler()
        block = c.compile_condition(parse_expression("not (a > 0.0)"))
        assert block.kind is BlockKind.COMPARATOR

    def test_unsupported_condition(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile_condition(parse_expression("a + b"))


class TestFunctions:
    def test_limit_function(self):
        c = make_compiler()
        block = c.compile(parse_expression("limit(a, -1.0, 1.0)"))
        assert block.kind is BlockKind.LIMIT
        assert block.params["low"] == -1.0

    def test_unknown_function_rejected(self):
        c = make_compiler()
        with pytest.raises(CompileError):
            c.compile(parse_expression("sin(a)"))
