"""Tests for constraint derivation from port annotations."""

import pytest

from repro.compiler import compile_design
from repro.estimation import ConstraintSet
from repro.flow import derive_constraints

ANNOTATED = """
ENTITY filt IS
PORT (
  QUANTITY vin : IN real IS voltage FREQUENCY 0.0 TO 5000.0
                 RANGE -3.0 TO 2.0;
  QUANTITY vout : OUT real IS voltage LIMITED AT 1.5 v
);
END ENTITY;
ARCHITECTURE a OF filt IS
BEGIN
  vout == 0.5 * vin;
END ARCHITECTURE;
"""

BARE = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
ARCHITECTURE a OF amp IS
BEGIN
  vout == 2.0 * vin;
END ARCHITECTURE;
"""


class TestDeriveConstraints:
    def test_bandwidth_from_widest_frequency_annotation(self):
        design = compile_design(ANNOTATED)
        derived = derive_constraints(design, ConstraintSet())
        assert derived.signal_bandwidth_hz == pytest.approx(5000.0)

    def test_amplitude_from_range_magnitude(self):
        design = compile_design(ANNOTATED)
        derived = derive_constraints(design, ConstraintSet())
        # |-3.0| from the RANGE beats the 1.5 V LIMITED level.
        assert derived.signal_amplitude == pytest.approx(3.0)

    def test_explicit_constraints_win_over_annotations(self):
        design = compile_design(ANNOTATED)
        base = ConstraintSet(
            signal_bandwidth_hz=123.0, signal_amplitude=9.0
        )
        derived = derive_constraints(design, base)
        assert derived.signal_bandwidth_hz == pytest.approx(123.0)
        assert derived.signal_amplitude == pytest.approx(9.0)

    def test_unannotated_design_keeps_defaults(self):
        design = compile_design(BARE)
        defaults = ConstraintSet()
        derived = derive_constraints(design, defaults)
        assert derived.signal_bandwidth_hz == defaults.signal_bandwidth_hz
        assert derived.signal_amplitude == defaults.signal_amplitude

    def test_base_set_is_not_mutated(self):
        design = compile_design(ANNOTATED)
        base = ConstraintSet()
        before = dict(vars(base))
        derive_constraints(design, base)
        assert vars(base) == before

    def test_other_fields_pass_through(self):
        design = compile_design(ANNOTATED)
        base = ConstraintSet(max_opamps=7, max_area=1e-6)
        derived = derive_constraints(design, base)
        assert derived.max_opamps == 7
        assert derived.max_area == pytest.approx(1e-6)
