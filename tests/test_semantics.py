"""Unit tests for semantic analysis and VASS restriction checks."""

import pytest

from repro.diagnostics import SemanticError
from repro.vass import analyze_source
from repro.vass.parser import parse_expression, parse_source
from repro.vass.semantics import ValueType, analyze, eval_static, is_static


def wrap(ports="", decls="", body=""):
    return f"""
ENTITY e IS {('PORT (' + ports + ');') if ports else ''} END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestSymbolTable:
    def test_ports_declared(self):
        design = analyze_source(
            wrap("QUANTITY x : IN real; QUANTITY y : OUT real", body="y == x;")
        )
        assert design.symbol("x").is_port
        assert design.symbol("y").value_type is ValueType.REAL

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SemanticError, match="duplicate"):
            analyze_source(
                wrap(
                    "QUANTITY x : IN real",
                    decls="QUANTITY x : real;",
                    body="x == 1.0;",
                )
            )

    def test_undeclared_name_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze_source(
                wrap("QUANTITY y : OUT real", body="y == missing;")
            )

    def test_constant_folding(self):
        design = analyze_source(
            wrap(
                "QUANTITY y : OUT real",
                decls="CONSTANT k : real := 2.0 * 3.0;",
                body="y == k;",
            )
        )
        assert design.symbol("k").static_value == pytest.approx(6.0)

    def test_constant_referencing_constant(self):
        design = analyze_source(
            wrap(
                "QUANTITY y : OUT real",
                decls="CONSTANT a : real := 2.0; CONSTANT b : real := a + 1.0;",
                body="y == b;",
            )
        )
        assert design.symbol("b").static_value == pytest.approx(3.0)

    def test_constant_without_value_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    decls="CONSTANT k : real;",
                    body="y == 1.0;",
                )
            )

    def test_package_constants_visible(self):
        source = """
PACKAGE p IS CONSTANT kp : real := 4.0; END PACKAGE;
ENTITY e IS PORT (QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE a OF e IS BEGIN y == kp; END ARCHITECTURE;
"""
        design = analyze(parse_source(source))
        assert design.symbol("kp").static_value == pytest.approx(4.0)

    def test_quantity_must_be_nature_type(self):
        with pytest.raises(SemanticError, match="nature"):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    decls="QUANTITY q : bit;",
                    body="y == 1.0;",
                )
            )

    def test_entity_selection_by_name(self):
        source = """
ENTITY one IS PORT (QUANTITY y : OUT real); END ENTITY;
ENTITY two IS PORT (QUANTITY z : OUT real); END ENTITY;
ARCHITECTURE a OF one IS BEGIN y == 1.0; END ARCHITECTURE;
ARCHITECTURE b OF two IS BEGIN z == 2.0; END ARCHITECTURE;
"""
        design = analyze(parse_source(source), entity_name="two")
        assert design.name == "two"

    def test_two_entities_require_selection(self):
        source = """
ENTITY one IS END ENTITY;
ENTITY two IS END ENTITY;
ARCHITECTURE a OF one IS BEGIN END ARCHITECTURE;
"""
        with pytest.raises(SemanticError, match="entities"):
            analyze(parse_source(source))

    def test_missing_architecture(self):
        with pytest.raises(SemanticError, match="architecture"):
            analyze(parse_source("ENTITY lonely IS END ENTITY;"))


class TestStaticEvaluation:
    def test_arithmetic(self):
        assert eval_static(parse_expression("2.0 * 3.0 + 1.0")) == 7.0

    def test_functions(self):
        assert eval_static(parse_expression("exp(0.0)")) == pytest.approx(1.0)

    def test_division_by_zero_rejected(self):
        with pytest.raises(SemanticError):
            eval_static(parse_expression("1.0 / 0.0"))

    def test_nonstatic_name(self):
        assert not is_static(parse_expression("x + 1.0"))

    def test_unary(self):
        assert eval_static(parse_expression("-(2.0)")) == -2.0
        assert eval_static(parse_expression("abs(-3.0)")) == 3.0

    def test_comparison(self):
        assert eval_static(parse_expression("2.0 > 1.0")) is True


class TestTypeChecking:
    def test_arithmetic_on_bit_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="y == s + 1.0;",
                )
            )

    def test_condition_must_be_boolean(self):
        with pytest.raises(SemanticError, match="boolean"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    body="""
  y == a;
  PROCESS (a'ABOVE(0.0)) IS BEGIN
    IF a THEN NULL; END IF;
  END PROCESS;
""",
                )
            )

    def test_above_requires_quantity(self):
        with pytest.raises(SemanticError):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="""
  y == 1.0;
  PROCESS (s'ABOVE(0.0)) IS BEGIN
    NULL;
  END PROCESS;
""",
                )
            )

    def test_signal_assign_target_must_be_signal(self):
        with pytest.raises(SemanticError, match="signal"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    decls="QUANTITY q : real;",
                    body="""
  y == a;
  q == a;
  PROCESS (a'ABOVE(0.0)) IS BEGIN
    q <= 1.0;
  END PROCESS;
""",
                )
            )


class TestRestrictions:
    def test_process_needs_sensitivity(self):
        with pytest.raises(SemanticError, match="sensitivity"):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="""
  y == 1.0;
  PROCESS IS BEGIN
    s <= '1';
  END PROCESS;
""",
                )
            )

    def test_wait_rejected(self):
        with pytest.raises(SemanticError, match="wait"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="""
  y == a;
  PROCESS (a'ABOVE(0.0)) IS BEGIN
    s <= '1';
    WAIT FOR 1.0;
  END PROCESS;
""",
                )
            )

    def test_signal_read_after_write_rejected(self):
        with pytest.raises(SemanticError, match="referenced after"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    decls="SIGNAL s : bit; SIGNAL t : bit;",
                    body="""
  y == a;
  PROCESS (a'ABOVE(0.0)) IS BEGIN
    s <= '1';
    IF (s = '1') THEN t <= '1'; END IF;
  END PROCESS;
""",
                )
            )

    def test_signal_write_then_independent_ok(self):
        design = analyze_source(
            wrap(
                "QUANTITY a : IN real; QUANTITY y : OUT real",
                decls="SIGNAL s : bit; SIGNAL t : bit;",
                body="""
  y == a;
  PROCESS (a'ABOVE(0.0)) IS BEGIN
    s <= '1';
    t <= '0';
  END PROCESS;
""",
            )
        )
        assert design is not None

    def test_for_loop_needs_static_bounds(self):
        with pytest.raises(SemanticError, match="static"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    body="""
  PROCEDURAL IS
    VARIABLE t : real;
    VARIABLE n : real;
  BEGIN
    n := a;
    t := 0.0;
    FOR i IN 1 TO n LOOP
      t := t + 1.0;
    END LOOP;
    y := t;
  END PROCEDURAL;
""",
                )
            )

    def test_quantity_in_sensitivity_rejected(self):
        with pytest.raises(SemanticError, match="above"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="""
  y == a;
  PROCESS (a) IS BEGIN
    s <= '1';
  END PROCESS;
""",
                )
            )

    def test_terminal_port_needs_facet(self):
        with pytest.raises(SemanticError, match="facet"):
            analyze_source(
                "ENTITY e IS PORT (TERMINAL t : electrical); END ENTITY;"
                "ARCHITECTURE a OF e IS BEGIN END ARCHITECTURE;"
            )

    def test_terminal_port_with_facet_ok(self):
        design = analyze_source(
            "ENTITY e IS PORT (TERMINAL t : electrical ACROSS);"
            " END ENTITY;"
            "ARCHITECTURE a OF e IS BEGIN END ARCHITECTURE;"
        )
        assert design is not None

    def test_procedural_read_before_assign_rejected(self):
        with pytest.raises(SemanticError, match="read before"):
            analyze_source(
                wrap(
                    "QUANTITY y : OUT real",
                    body="""
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    y := t + 1.0;
  END PROCEDURAL;
""",
                )
            )

    def test_while_loop_signal_input_rejected(self):
        with pytest.raises(SemanticError, match="while"):
            analyze_source(
                wrap(
                    "QUANTITY a : IN real; QUANTITY y : OUT real",
                    decls="SIGNAL s : bit;",
                    body="""
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    t := a;
    WHILE (abs(t) > 1.0) LOOP
      t := t / 2.0;
      IF (s = '1') THEN t := t + 0.1; END IF;
    END LOOP;
    y := t;
  END PROCEDURAL;
""",
                )
            )

    def test_while_loop_with_quantity_inputs_ok(self):
        design = analyze_source(
            wrap(
                "QUANTITY a : IN real; QUANTITY y : OUT real",
                body="""
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    t := a;
    WHILE (abs(t) > 1.0) LOOP
      t := t / 2.0;
    END LOOP;
    y := t;
  END PROCEDURAL;
""",
            )
        )
        assert design is not None

    def test_constant_condition_while_warns(self):
        design = analyze_source(
            wrap(
                "QUANTITY a : IN real; QUANTITY y : OUT real",
                body="""
  PROCEDURAL IS
    VARIABLE t : real;
    VARIABLE u : real;
  BEGIN
    t := a;
    u := a;
    WHILE (abs(u) > 1.0) LOOP
      t := t / 2.0;
    END LOOP;
    y := t;
  END PROCEDURAL;
""",
            )
        )
        assert any("never" in str(w) for w in design.sink.warnings)
