"""Tests for the pipeline's fingerprints and the artifact cache.

Satellite coverage of the staged-pipeline refactor: changing *any*
field of the relevant options subtrees (or the component library) must
change the stage key, and a warm on-disk cache must survive a process
restart (modelled here as a fresh :class:`ArtifactCache` instance over
the same directory).
"""

import dataclasses
from pathlib import Path

import pytest

from repro.compiler import CompilerOptions
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, synthesize
from repro.library import ComponentLibrary, default_library
from repro.pipeline import (
    COMPILE,
    MAP,
    MISS,
    ArtifactCache,
    PipelineSession,
    fingerprint,
    library_fingerprint,
)
from repro.synth import MapperOptions

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()


def _mutated(value):
    """A different-but-type-compatible value for any options field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value * 2.0 + 1.0
    if isinstance(value, str):
        return value + "_x"
    if value is None:
        return 1.0
    raise AssertionError(f"unhandled field type: {value!r}")


class TestFingerprint:
    def test_stable_across_calls(self):
        options = CompilerOptions()
        assert fingerprint(options) == fingerprint(options)
        assert fingerprint(options) == fingerprint(CompilerOptions())

    @pytest.mark.parametrize(
        "options_type", [CompilerOptions, MapperOptions, ConstraintSet]
    )
    def test_every_field_changes_the_key(self, options_type):
        base = options_type()
        base_print = fingerprint(base)
        for field in dataclasses.fields(base):
            changed = dataclasses.replace(
                base, **{field.name: _mutated(getattr(base, field.name))}
            )
            assert fingerprint(changed) != base_print, (
                f"{options_type.__name__}.{field.name} did not change "
                "the fingerprint"
            )

    def test_stage_keys_are_namespaced(self):
        assert COMPILE.key("x") != MAP.key("x")
        assert COMPILE.key("x") != COMPILE.key("y")
        bumped = dataclasses.replace(COMPILE, version=COMPILE.version + 1)
        assert bumped.key("x") != COMPILE.key("x")

    def test_library_fingerprint_sees_spec_changes(self):
        base = default_library()
        base_print = library_fingerprint(base)
        assert library_fingerprint(default_library()) == base_print

        spec = base.specs()[0]
        grown = ComponentLibrary(specs=base.specs(), name=base.name)
        grown.add(dataclasses.replace(spec, name=spec.name + "_alt"))
        assert library_fingerprint(grown) != base_print

        changed_specs = [
            dataclasses.replace(s, passives=s.passives + 1)
            if index == 0 else s
            for index, s in enumerate(base.specs())
        ]
        changed = ComponentLibrary(specs=changed_specs, name=base.name)
        assert library_fingerprint(changed) != base_print

    def test_session_keys_track_source_and_options(self):
        session = PipelineSession(BIQUAD, options=FlowOptions())
        other_source = PipelineSession(
            BIQUAD + "\n-- tail\n", options=FlowOptions()
        )
        assert session.frontend_key() != other_source.frontend_key()

        other_solver = PipelineSession(
            BIQUAD,
            options=FlowOptions(compiler=CompilerOptions(solver_index=1)),
        )
        assert session.frontend_key() == other_solver.frontend_key()
        assert session.compile_key() != other_solver.compile_key()
        # The explicit-index form matches the equivalent options form.
        assert session.compile_key(1) == other_solver.compile_key()


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        assert cache.get("k", stage="compile") is MISS
        cache.put("k", {"a": 1}, stage="compile")
        assert cache.get("k", stage="compile") == {"a": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stage_hits == {"compile": 1}
        assert cache.stats.stage_misses == {"compile": 1}

    def test_copies_isolate_the_stored_artifact(self):
        cache = ArtifactCache()
        original = {"nets": ["n1"]}
        cache.put("k", original)
        original["nets"].append("corrupted-after-put")
        first = cache.get("k")
        assert first == {"nets": ["n1"]}
        first["nets"].append("corrupted-after-get")
        assert cache.get("k") == {"nets": ["n1"]}

    def test_lru_eviction_is_counted(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is MISS
        assert cache.get("c") == 3

    def test_disk_tier_survives_restart(self, tmp_path):
        first = ArtifactCache(disk_dir=tmp_path / "store")
        first.put("k", [1, 2, 3], stage="map")
        assert first.stats.disk_stores == 1

        # A fresh instance over the same directory models a restart.
        second = ArtifactCache(disk_dir=tmp_path / "store")
        assert second.get("k", stage="map") == [1, 2, 3]
        assert second.stats.disk_hits == 1
        # Now resident in memory: the next hit skips the disk.
        assert second.get("k", stage="map") == [1, 2, 3]
        assert second.stats.disk_hits == 1
        assert second.stats.hits == 2

    def test_unpicklable_artifacts_skip_the_disk_tier(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path / "store")
        cache.put("k", lambda: 42)
        assert cache.stats.disk_errors == 1
        assert cache.stats.disk_stores == 0
        assert cache.get("k")() == 42

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path / "store")
        cache.put("k", "v")
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get("k") == "v"
        assert cache.stats.disk_hits == 1


class TestWarmFlowCache:
    def test_full_flow_warm_restart(self, tmp_path):
        """A second process over the same disk cache recomputes nothing."""
        cold_cache = ArtifactCache(disk_dir=tmp_path / "vase-cache")
        cold = synthesize(
            BIQUAD, options=FlowOptions(cache=cold_cache)
        )
        assert cold_cache.stats.hits == 0
        assert cold_cache.stats.misses > 0

        warm_cache = ArtifactCache(disk_dir=tmp_path / "vase-cache")
        warm = synthesize(
            BIQUAD, options=FlowOptions(cache=warm_cache)
        )
        assert warm_cache.stats.misses == 0
        # One fewer hit than the cold run's misses: a compile hit never
        # even consults the frontend stage.
        assert warm_cache.stats.hits == cold_cache.stats.misses - 1
        assert warm_cache.stats.disk_hits == warm_cache.stats.hits
        assert warm.estimate.area == pytest.approx(cold.estimate.area)
        assert warm.summary == cold.summary

    def test_source_change_invalidates_everything(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path / "vase-cache")
        synthesize(BIQUAD, options=FlowOptions(cache=cache))
        before = cache.stats.misses
        synthesize(
            BIQUAD + "\n-- trailing comment\n",
            options=FlowOptions(cache=cache),
        )
        assert cache.stats.misses == 2 * before
