"""Unit tests for the VASS parser."""

import pytest

from repro.diagnostics import ParseError
from repro.vass import ast_nodes as ast
from repro.vass.parser import parse_expression, parse_source


class TestExpressions:
    def test_name(self):
        expr = parse_expression("line")
        assert isinstance(expr, ast.Name)
        assert expr.identifier == "line"

    def test_integer_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, ast.IntegerLiteral)
        assert expr.value == 42

    def test_real_literal(self):
        expr = parse_expression("2.5")
        assert isinstance(expr, ast.RealLiteral)
        assert expr.value == 2.5

    def test_character_literal(self):
        expr = parse_expression("'1'")
        assert isinstance(expr, ast.CharacterLiteral)
        assert expr.value == "1"

    def test_boolean_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("false").value is False

    def test_addition_left_associative(self):
        expr = parse_expression("a + b + c")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.operator == "+"
        assert isinstance(expr.left, ast.BinaryOp)
        assert expr.left.operator == "+"

    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert expr.operator == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.operator == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.operator == "*"
        assert expr.left.operator == "+"

    def test_unary_minus(self):
        # VHDL rule: the sign applies to the whole first term, -(a*b).
        expr = parse_expression("-a * b")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operator == "-"
        assert isinstance(expr.operand, ast.BinaryOp)
        assert expr.operand.operator == "*"

    def test_power_operator(self):
        expr = parse_expression("v ** 2")
        assert expr.operator == "**"

    def test_relational(self):
        expr = parse_expression("a >= b")
        assert expr.operator == ">="

    def test_less_equal_in_expression_context(self):
        expr = parse_expression("a <= b")
        assert expr.operator == "<="

    def test_logical_operators(self):
        expr = parse_expression("a = b and c = d")
        assert expr.operator == "and"

    def test_not_operator(self):
        expr = parse_expression("not (a = b)")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operator == "not"

    def test_abs_operator(self):
        expr = parse_expression("abs (x)")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operator == "abs"

    def test_function_call(self):
        expr = parse_expression("log(x)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "log"
        assert len(expr.arguments) == 1

    def test_attribute_above(self):
        expr = parse_expression("line'ABOVE(Vth)")
        assert isinstance(expr, ast.AttributeExpr)
        assert expr.attribute == "above"
        assert isinstance(expr.prefix, ast.Name)
        assert len(expr.arguments) == 1

    def test_attribute_dot(self):
        expr = parse_expression("x'dot")
        assert isinstance(expr, ast.AttributeExpr)
        assert expr.attribute == "dot"
        assert expr.arguments == []

    def test_chained_attribute(self):
        expr = parse_expression("x'dot'dot")
        assert expr.attribute == "dot"
        assert isinstance(expr.prefix, ast.AttributeExpr)

    def test_attribute_comparison(self):
        expr = parse_expression("line'above(0.2) = TRUE")
        assert expr.operator == "="
        assert isinstance(expr.left, ast.AttributeExpr)

    def test_indexed_name(self):
        expr = parse_expression("v(2)")
        assert isinstance(expr, ast.IndexedName)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


ENTITY = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
"""


class TestEntity:
    def test_entity_name_and_ports(self):
        sf = parse_source(ENTITY)
        (entity,) = sf.entities
        assert entity.name == "amp"
        assert [p.name for p in entity.ports] == ["vin", "vout"]

    def test_port_modes(self):
        sf = parse_source(ENTITY)
        entity = sf.entities[0]
        assert entity.port("vin").mode is ast.PortMode.IN
        assert entity.port("vout").mode is ast.PortMode.OUT

    def test_port_classes(self):
        sf = parse_source(ENTITY)
        for port in sf.entities[0].ports:
            assert port.object_class is ast.ObjectClass.QUANTITY

    def test_kind_annotation(self):
        sf = parse_source(ENTITY)
        ann = sf.entities[0].port("vin").annotation(ast.KindAnnotation)
        assert ann is not None
        assert ann.kind is ast.SignalKind.VOLTAGE

    def test_signal_port(self):
        sf = parse_source(
            "ENTITY e IS PORT (SIGNAL clk : IN bit); END ENTITY;"
        )
        port = sf.entities[0].port("clk")
        assert port.object_class is ast.ObjectClass.SIGNAL
        assert port.type_mark.name == "bit"

    def test_multiple_names_in_one_decl(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY a, b : IN real); END ENTITY;"
        )
        assert [p.name for p in sf.entities[0].ports] == ["a", "b"]

    def test_entity_closing_name_mismatch(self):
        with pytest.raises(ParseError):
            parse_source("ENTITY a IS END ENTITY b;")

    def test_generics(self):
        sf = parse_source(
            "ENTITY e IS GENERIC (gain : real := 2.0); END ENTITY;"
        )
        assert sf.entities[0].generics[0].name == "gain"


class TestAnnotations:
    def test_limited_at_with_unit(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY o : OUT real LIMITED AT 1500.0 mv);"
            " END ENTITY;"
        )
        ann = sf.entities[0].port("o").annotation(ast.LimitAnnotation)
        assert ann.level == pytest.approx(1.5)

    def test_limited_without_level(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY o : OUT real LIMITED); END ENTITY;"
        )
        ann = sf.entities[0].port("o").annotation(ast.LimitAnnotation)
        assert ann.level is None

    def test_drives_annotation(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY o : OUT real "
            "DRIVES 270.0 ohm AT 285.0 mv PEAK); END ENTITY;"
        )
        ann = sf.entities[0].port("o").annotation(ast.DriveAnnotation)
        assert ann.load_ohms == pytest.approx(270.0)
        assert ann.amplitude == pytest.approx(0.285)

    def test_range_annotation(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY i : IN real RANGE -1.0 TO 1.0);"
            " END ENTITY;"
        )
        ann = sf.entities[0].port("i").annotation(ast.RangeAnnotation)
        assert (ann.low, ann.high) == (-1.0, 1.0)

    def test_frequency_annotation(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY i : IN real "
            "FREQUENCY 300.0 hz TO 3.4 khz); END ENTITY;"
        )
        ann = sf.entities[0].port("i").annotation(ast.FrequencyAnnotation)
        assert ann.high == pytest.approx(3400.0)

    def test_impedance_annotation(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY i : IN real IMPEDANCE 10.0 kohm);"
            " END ENTITY;"
        )
        ann = sf.entities[0].port("i").annotation(ast.ImpedanceAnnotation)
        assert ann.ohms == pytest.approx(10000.0)

    def test_stacked_annotations(self):
        sf = parse_source(
            "ENTITY e IS PORT (QUANTITY o : OUT real IS voltage "
            "LIMITED AT 1.5 v DRIVES 270.0 o AT 285.0 mv PEAK); END ENTITY;"
        )
        port = sf.entities[0].port("o")
        assert len(port.annotations) == 3


ARCH = """
ENTITY e IS PORT (QUANTITY a : IN real; QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE behav OF e IS
  CONSTANT k : real := 2.0;
  QUANTITY q : real;
  SIGNAL s : bit;
BEGIN
  q == k * a;
  y == q + 1.0;
END ARCHITECTURE;
"""


class TestArchitecture:
    def test_architecture_links_to_entity(self):
        sf = parse_source(ARCH)
        arch = sf.architectures[0]
        assert arch.entity_name == "e"
        assert arch.name == "behav"

    def test_declarations(self):
        sf = parse_source(ARCH)
        decls = sf.architectures[0].declarations
        assert [d.name for d in decls] == ["k", "q", "s"]
        assert decls[0].object_class is ast.ObjectClass.CONSTANT

    def test_simple_simultaneous_statements(self):
        sf = parse_source(ARCH)
        stmts = sf.architectures[0].statements
        assert len(stmts) == 2
        assert all(isinstance(s, ast.SimpleSimultaneous) for s in stmts)

    def test_architecture_of_lookup(self):
        sf = parse_source(ARCH)
        assert sf.architecture_of("e") is sf.architectures[0]

    def test_context_clauses_skipped(self):
        sf = parse_source(
            "LIBRARY ieee;\nUSE ieee.math_real.all;\n" + ARCH
        )
        assert len(sf.entities) == 1


SIM_IF = """
ENTITY e IS PORT (QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE a OF e IS
  QUANTITY r : real;
  SIGNAL c : bit;
BEGIN
  y == r;
  IF (c = '1') USE
    r == 1.0;
  ELSIF (c = '0') USE
    r == 2.0;
  ELSE
    r == 3.0;
  END USE;
END ARCHITECTURE;
"""


class TestSimultaneousIf:
    def test_branches_parsed(self):
        sf = parse_source(SIM_IF)
        stmt = sf.architectures[0].statements[1]
        assert isinstance(stmt, ast.SimultaneousIf)
        assert len(stmt.branches) == 2
        assert len(stmt.else_body) == 1

    def test_branch_bodies_are_equations(self):
        sf = parse_source(SIM_IF)
        stmt = sf.architectures[0].statements[1]
        _, body = stmt.branches[0]
        assert isinstance(body[0], ast.SimpleSimultaneous)


PROCESS = """
ENTITY e IS PORT (QUANTITY a : IN real; QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE b OF e IS
  CONSTANT th : real := 0.5;
  SIGNAL c : bit;
BEGIN
  y == a;
  PROCESS (a'ABOVE(th)) IS
    VARIABLE n : real;
  BEGIN
    n := 1.0;
    IF (a'ABOVE(th) = TRUE) THEN
      c <= '1';
    ELSE
      c <= '0';
    END IF;
  END PROCESS;
END ARCHITECTURE;
"""


class TestProcess:
    def test_sensitivity_list(self):
        sf = parse_source(PROCESS)
        proc = sf.architectures[0].statements[1]
        assert isinstance(proc, ast.ProcessStmt)
        assert len(proc.sensitivity) == 1
        assert isinstance(proc.sensitivity[0], ast.AttributeExpr)

    def test_local_variable_declaration(self):
        sf = parse_source(PROCESS)
        proc = sf.architectures[0].statements[1]
        assert proc.declarations[0].name == "n"
        assert proc.declarations[0].object_class is ast.ObjectClass.VARIABLE

    def test_body_statements(self):
        sf = parse_source(PROCESS)
        proc = sf.architectures[0].statements[1]
        assert isinstance(proc.body[0], ast.VariableAssignment)
        assert isinstance(proc.body[1], ast.IfStmt)

    def test_signal_assignment_target(self):
        sf = parse_source(PROCESS)
        proc = sf.architectures[0].statements[1]
        if_stmt = proc.body[1]
        _, then_body = if_stmt.branches[0]
        assert isinstance(then_body[0], ast.SignalAssignment)
        assert then_body[0].target == "c"


PROCEDURAL = """
ENTITY e IS PORT (QUANTITY a : IN real; QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE b OF e IS
BEGIN
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    t := a * 2.0;
    FOR i IN 1 TO 3 LOOP
      t := t + 1.0;
    END LOOP;
    WHILE (abs(t) > 0.1) LOOP
      t := t / 2.0;
    END LOOP;
    y := t;
  END PROCEDURAL;
END ARCHITECTURE;
"""


class TestProcedural:
    def test_procedural_parses(self):
        sf = parse_source(PROCEDURAL)
        proc = sf.architectures[0].statements[0]
        assert isinstance(proc, ast.ProceduralStmt)
        assert len(proc.body) == 4

    def test_for_loop(self):
        sf = parse_source(PROCEDURAL)
        loop = sf.architectures[0].statements[0].body[1]
        assert isinstance(loop, ast.ForStmt)
        assert loop.variable == "i"

    def test_while_loop(self):
        sf = parse_source(PROCEDURAL)
        loop = sf.architectures[0].statements[0].body[2]
        assert isinstance(loop, ast.WhileStmt)
        assert len(loop.body) == 1


class TestPackage:
    def test_package_constants(self):
        sf = parse_source(
            "PACKAGE consts IS CONSTANT pi : real := 3.14159; END PACKAGE;"
        )
        (pkg,) = sf.packages
        assert pkg.name == "consts"
        assert pkg.declarations[0].name == "pi"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("ENTITY e IS END ENTITY")

    def test_bad_design_unit(self):
        with pytest.raises(ParseError):
            parse_source("PROCESS foo;")

    def test_assignment_operator_required(self):
        with pytest.raises(ParseError):
            parse_source(
                "ENTITY e IS END ENTITY;"
                "ARCHITECTURE a OF e IS BEGIN "
                "PROCESS (x) IS BEGIN y == 2.0; END PROCESS;"
                " END ARCHITECTURE;"
            )
