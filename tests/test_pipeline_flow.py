"""Tests of the flow rebuilt on the staged pipeline.

Acceptance coverage of the refactor: a recovery-ladder climb invokes
the parse/compile stages at most once per distinct causalization
(verified through the cache counters), and ``explore_solvers`` maps
every enumerated causalization, returns the best-area feasible result
deterministically for any worker count, and emits one explog event per
solver.  Plus regression tests for the two satellite fixes: the single
rung-1 recovery event, and the zero-input interfacing diagnostic.
"""

from pathlib import Path

import pytest

from repro.diagnostics import Severity, SynthesisError, VaseError
from repro.estimation import ConstraintSet
from repro.flow import FlowOptions, SolverOutcome, synthesize
from repro.instrument import explogging
from repro.pipeline import ArtifactCache, ParallelOptions, PipelineSession
from repro.robust.faultinject import inject_faults
from repro.robust.recovery import (
    OUTCOME_FAILED,
    OUTCOME_SKIPPED,
    RUNG_CAUSALIZATION,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BIQUAD = (EXAMPLES / "biquad.vhd").read_text()

#: An overdetermined DAE set with exactly two causalizations whose
#: mapped architectures differ in area: solver #0 needs four op amps,
#: solver #1 three (the extra equation is legal — it's just unused by
#: the chosen causalization).
TWO_SOLVERS = """
entity mix is
  port (quantity u : in real;
        quantity y : out real);
end entity mix;

architecture beh of mix is
  quantity a : real;
  quantity b : real;
begin
  a == 2.0 * u;
  a + b == 3.0 * u;
  a - b == u;
  y == a + b;
end architecture beh;
"""


def _tight_area() -> ConstraintSet:
    baseline = synthesize(BIQUAD)
    return ConstraintSet(max_area=baseline.estimate.area * 0.6)


class TestLadderStageReuse:
    def test_ladder_compiles_once(self):
        """The whole climb parses and compiles exactly once."""
        cache = ArtifactCache()
        result = synthesize(
            BIQUAD,
            options=FlowOptions(
                recovery=True, cache=cache, constraints=_tight_area()
            ),
        )
        assert result.degraded
        # Baseline + greedy + relax rungs all ran, yet the frontend and
        # compile stages computed once; every later rung hit the cache.
        assert cache.stats.stage_misses["frontend"] == 1
        assert cache.stats.stage_misses["compile"] == 1
        assert cache.stats.stage_misses["realize_fsm"] == 1
        assert cache.stats.stage_misses["optimize_vhif"] == 1
        assert cache.stats.stage_hits["compile"] >= 2
        # The mapper genuinely ran per attempt (different constraints /
        # greedy flag => different keys, and failures are never cached).
        assert cache.stats.stage_misses["map"] >= 3
        assert result.cache_stats["stage_misses"]["compile"] == 1

    def test_ladder_compiles_once_per_causalization(self):
        """With an alternative causalization, exactly one extra compile."""
        cache = ArtifactCache()
        with inject_faults("mapper.infeasible"):
            with pytest.raises(SynthesisError):
                synthesize(
                    TWO_SOLVERS,
                    options=FlowOptions(recovery=True, cache=cache),
                )
        # Rung 1 tried causalization #1; the source was still parsed
        # once and compiled once per distinct causalization.
        assert cache.stats.stage_misses["frontend"] == 1
        assert cache.stats.stage_misses["compile"] == 2
        assert cache.stats.stage_misses["enumerate_solvers"] == 1


class TestExploreSolvers:
    def test_maps_every_causalization_and_picks_best_area(self):
        result = synthesize(
            TWO_SOLVERS, options=FlowOptions(explore_solvers=True)
        )
        assert len(result.solver_exploration) == 2
        assert all(o.feasible for o in result.solver_exploration)
        areas = {o.solver: o.area for o in result.solver_exploration}
        assert result.estimate.area == pytest.approx(min(areas.values()))
        chosen = [o for o in result.solver_exploration if o.chosen]
        assert len(chosen) == 1
        assert chosen[0].area == pytest.approx(min(areas.values()))

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_same_winner_for_any_worker_count(self, workers):
        serial = synthesize(
            TWO_SOLVERS, options=FlowOptions(explore_solvers=True)
        )
        parallel = synthesize(
            TWO_SOLVERS,
            options=FlowOptions(
                explore_solvers=True,
                parallel=ParallelOptions(
                    executor="thread" if workers > 1 else "serial",
                    workers=workers,
                ),
            ),
        )
        assert parallel.estimate.area == pytest.approx(
            serial.estimate.area
        )
        assert [o.as_dict() for o in parallel.solver_exploration] == [
            o.as_dict() for o in serial.solver_exploration
        ]

    def test_one_explog_event_per_solver(self):
        with explogging() as log:
            synthesize(
                TWO_SOLVERS,
                options=FlowOptions(
                    explore_solvers=True,
                    parallel=ParallelOptions(executor="thread", workers=4),
                ),
            )
        events = log.of_kind("solver_explored")
        assert [e["solver"] for e in events] == [0, 1]
        assert sum(1 for e in events if e["chosen"]) == 1

    def test_single_causalization_falls_back_to_plain_flow(self):
        result = synthesize(
            BIQUAD, options=FlowOptions(explore_solvers=True)
        )
        assert result.solver_exploration == []
        assert result.estimate.opamps > 0

    def test_all_infeasible_raises(self):
        with inject_faults("mapper.infeasible"):
            with pytest.raises(SynthesisError, match="explore_solvers"):
                synthesize(
                    TWO_SOLVERS,
                    options=FlowOptions(explore_solvers=True),
                )

    def test_exploration_shows_in_describe_and_report(self):
        from repro.report import generate_report

        result = synthesize(
            TWO_SOLVERS, options=FlowOptions(explore_solvers=True)
        )
        text = result.describe()
        assert "solver exploration" in text
        assert "selected" in text
        report = generate_report(result, include_spice=False)
        assert "## Solver-space exploration" in report
        assert "**selected**" in report


class TestRecoveryEventFixes:
    def test_single_skipped_event_when_no_alternatives(self):
        """Rung 1 on a one-causalization design: one SKIPPED event."""
        result = synthesize(
            BIQUAD,
            options=FlowOptions(
                recovery=True, constraints=_tight_area()
            ),
        )
        rung1 = [
            e for e in result.recovery if e.rung == RUNG_CAUSALIZATION
        ]
        assert len(rung1) == 1
        assert rung1[0].outcome == OUTCOME_SKIPPED
        assert "1 causalization(s) available" in rung1[0].detail

    def test_single_failed_event_when_enumeration_dies(self, monkeypatch):
        """Rung 1 when enumerate_solvers raises: one FAILED event, not
        a FAILED + a bogus '0 causalization(s) available' SKIPPED."""

        def boom(self, max_solvers=None):
            raise VaseError("enumeration exploded")

        monkeypatch.setattr(
            PipelineSession, "enumerate_causalizations", boom
        )
        result = synthesize(
            BIQUAD,
            options=FlowOptions(
                recovery=True, constraints=_tight_area()
            ),
        )
        assert result.degraded
        rung1 = [
            e for e in result.recovery if e.rung == RUNG_CAUSALIZATION
        ]
        assert len(rung1) == 1
        assert rung1[0].outcome == OUTCOME_FAILED
        assert "enumeration exploded" in rung1[0].detail


class TestInterfacingDiagnosticGuard:
    def test_zero_input_follower_does_not_crash_diagnostics(self):
        class _Spec:
            name = "voltage_follower"

        class _Instance:
            spec = _Spec()
            name = "buf_orphan"
            inputs = []

        result = synthesize(BIQUAD)
        result.interfacing_added.append(_Instance())
        notes = [
            d for d in result.diagnostics
            if d.severity is Severity.NOTE and "interfacing" in d.message
        ]
        assert any("no input net recorded" in d.message for d in notes)

    def test_connected_follower_note_still_names_the_net(self):
        class _Spec:
            name = "voltage_follower"

        class _Instance:
            spec = _Spec()
            name = "buf1"
            inputs = ["n42"]

        result = synthesize(BIQUAD)
        result.interfacing_added.append(_Instance())
        assert any(
            "buffering net 'n42'" in d.message
            for d in result.diagnostics
        )


class TestSessionDefaults:
    def test_runs_are_cold_without_an_explicit_cache(self):
        first = synthesize(BIQUAD)
        second = synthesize(BIQUAD)
        assert first.cache_stats["hits"] == 0
        assert second.cache_stats["hits"] == 0
        assert second.cache_stats["misses"] > 0

    def test_solver_outcome_describe(self):
        ok = SolverOutcome(
            solver=1, feasible=True, area=4.58e-8, opamps=3, chosen=True
        )
        assert "selected" in ok.describe()
        bad = SolverOutcome(solver=0, feasible=False, detail="too big")
        assert "infeasible" in bad.describe()
