"""Thread-safety of the telemetry bus under real worker pools.

Satellite coverage: (a) hammering one bus from many threads loses no
events, duplicates none, and keeps every run's sequence numbers dense
and strictly increasing; (b) a parallel thread-backend batch publishes the
same *set* of per-file lifecycle events as the serial run (order across
files is scheduler-dependent, so the comparison is order-insensitive).
"""

import threading
from pathlib import Path

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.instrument import (
    CATEGORY_LIFECYCLE,
    CATEGORY_METRIC,
    RingBuffer,
    TelemetryBus,
    disable_telemetry,
    enable_telemetry,
    run_scope,
    telemetry,
)
from repro.instrument.metrics import MetricsRegistry
from repro.pipeline import ParallelOptions, run_parallel
from repro.robust.batch import find_sources, run_batch

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

BROKEN = """
entity broken is
  port (quantity u : in real
end entity
"""


@pytest.fixture(autouse=True)
def clean_bus():
    previous = disable_telemetry()
    yield
    disable_telemetry()
    if previous is not None:
        enable_telemetry(previous)


@pytest.fixture
def corpus(tmp_path):
    """Two good designs and one with syntax errors."""
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "a_biquad.vhd").write_text(
        (EXAMPLES / "biquad.vhd").read_text()
    )
    (root / "b_power_meter.vhd").write_text(
        ALL_APPLICATIONS["power_meter"].VASS_SOURCE
    )
    (root / "c_broken.vhd").write_text(BROKEN)
    return root


class TestBusUnderThreads:
    WORKERS = 8
    PER_WORKER = 200

    def test_no_lost_or_duplicate_events_single_run(self):
        """All workers publish under one run id: the sequence must be
        dense (0..N-1), and every payload must arrive exactly once."""
        bus = TelemetryBus()
        ring = RingBuffer(capacity=self.WORKERS * self.PER_WORKER + 16)
        bus.subscribe(ring)
        barrier = threading.Barrier(self.WORKERS, timeout=10.0)

        def worker(wid):
            def run():
                with run_scope("shared-run"):
                    barrier.wait()
                    for n in range(self.PER_WORKER):
                        bus.publish(
                            CATEGORY_METRIC, {"worker": wid, "n": n}
                        )
                return wid
            return run

        run_parallel(
            [worker(w) for w in range(self.WORKERS)], jobs=self.WORKERS
        )
        events = ring.events()
        total = self.WORKERS * self.PER_WORKER
        assert len(events) == total
        assert ring.dropped == 0
        assert bus.errors == 0
        # Dense, strictly increasing sequence for the run.
        assert sorted(e.seq for e in events) == list(range(total))
        # Delivery order equals sequence order (dispatch happens under
        # the same lock that assigns the number).
        assert [e.seq for e in events] == list(range(total))
        # Exactly-once delivery of every (worker, n) payload.
        payloads = {(e.payload["worker"], e.payload["n"]) for e in events}
        assert len(payloads) == total

    def test_per_run_sequences_stay_independent(self):
        """Each worker under its own run id gets its own dense 0..N-1."""
        bus = TelemetryBus()
        ring = RingBuffer(capacity=self.WORKERS * self.PER_WORKER + 16)
        bus.subscribe(ring)

        def worker(wid):
            def run():
                with run_scope(f"run-{wid}"):
                    for n in range(self.PER_WORKER):
                        bus.publish(CATEGORY_METRIC, {"n": n})
                return wid
            return run

        run_parallel(
            [worker(w) for w in range(self.WORKERS)], jobs=self.WORKERS
        )
        by_run = {}
        for event in ring.events():
            by_run.setdefault(event.run_id, []).append(event.seq)
        assert len(by_run) == self.WORKERS
        for seqs in by_run.values():
            assert sorted(seqs) == list(range(self.PER_WORKER))

    def test_metrics_registry_publishes_safely_from_threads(self):
        """Counter increments from many threads reach both the registry
        and the bus without losing updates."""
        registry = MetricsRegistry()
        with telemetry() as bus:
            # Two events (counter delta + histogram value) per iteration.
            ring = RingBuffer(
                capacity=2 * self.WORKERS * self.PER_WORKER + 16
            )
            bus.subscribe(ring)

            def worker(wid):
                def run():
                    with run_scope("metrics-run"):
                        for _ in range(self.PER_WORKER):
                            registry.inc("hammer.count")
                            registry.observe("hammer.value_s", 0.5)
                    return wid
                return run

            run_parallel(
                [worker(w) for w in range(self.WORKERS)],
                jobs=self.WORKERS,
            )
        total = self.WORKERS * self.PER_WORKER
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hammer.count"] == total
        assert snapshot["histograms"]["hammer.value_s"]["count"] == total
        deltas = [
            e for e in ring.events()
            if e.payload.get("name") == "hammer.count"
        ]
        assert len(deltas) == total
        assert sum(e.payload["delta"] for e in deltas) == total


class TestSerialVsParallelBatch:
    def _lifecycle(self, corpus, workers):
        """Run the batch on a fresh bus; return its lifecycle events."""
        bus = TelemetryBus()
        ring = RingBuffer(capacity=100_000)
        bus.subscribe(ring)
        parallel = ParallelOptions(
            executor="thread" if workers > 1 else "serial",
            workers=workers,
        )
        with telemetry(bus):
            report = run_batch(find_sources(corpus), parallel=parallel)
        events = [
            e for e in ring.events()
            if e.category == CATEGORY_LIFECYCLE
            and e.payload.get("kind") == "file"
        ]
        return report, events

    def test_same_event_set_regardless_of_jobs(self, corpus):
        serial_report, serial = self._lifecycle(corpus, workers=1)
        parallel_report, parallel = self._lifecycle(corpus, workers=4)

        def key_set(events):
            return {
                (Path(e.payload["file"]).name, e.payload["phase"])
                for e in events
            }

        assert key_set(serial) == key_set(parallel)
        # Every file goes queued -> started -> terminal in both runs.
        for events in (serial, parallel):
            phases = {}
            for e in events:
                phases.setdefault(
                    Path(e.payload["file"]).name, []
                ).append(e.payload["phase"])
            assert set(phases) == {
                "a_biquad.vhd", "b_power_meter.vhd", "c_broken.vhd",
            }
            for name, seen in phases.items():
                assert seen[0] == "queued"
                assert "started" in seen
                assert len(seen) == 3
                terminal = seen[-1]
                expected = (
                    "failed" if name == "c_broken.vhd" else ("ok",
                                                             "degraded")
                )
                assert terminal in expected
        # And the reports agree on the outcome tallies.
        assert (serial_report.ok, serial_report.degraded,
                serial_report.failed) == (
            parallel_report.ok, parallel_report.degraded,
            parallel_report.failed,
        )

    def test_batch_shares_one_run_id_across_workers(self, corpus):
        _report, events = self._lifecycle(corpus, workers=4)
        assert len({e.run_id for e in events}) == 1
        seqs = sorted(e.seq for e in events)
        assert seqs == sorted(set(seqs))  # no duplicated seq numbers
