"""Fault-injection coverage for every guarded failure path.

The sites in :mod:`repro.robust.faultinject` exist so these tests can
reach failure classes that well-formed inputs rarely provoke: mapper
deadline expiry, infeasible searches, singular MNA/AC systems, NaN
waveforms, and parse failures — each through the *production* error
path, not a mock.
"""

import itertools
from pathlib import Path

import pytest

import repro.synth.mapper as mapper_mod
from repro.compiler import compile_design
from repro.diagnostics import ParseError, SimulationError, SynthesisError
from repro.flow import FlowOptions, synthesize
from repro.robust.faultinject import (
    INJECTED_VIOLATION,
    KNOWN_SITES,
    FaultInjector,
    active_faults,
    fault_active,
    inject_faults,
)
from repro.spice.ac import ac_sweep
from repro.spice.mna import Circuit, MnaSolver, dc
from repro.synth.mapper import ArchitectureMapper, MapperOptions
from repro.vass.parser import parse_source, parse_source_collecting

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

SOURCE = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""


def _divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.vsource("V1", "in", "0", dc(1.0))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.resistor("R2", "out", "0", 1e3)
    return circuit


class TestHarness:
    def test_no_faults_armed_by_default(self):
        assert active_faults() == frozenset()
        for site in KNOWN_SITES:
            assert not fault_active(site)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            inject_faults("no.such.site")
        with pytest.raises(ValueError, match="no.such.site"):
            FaultInjector().arm("no.such.site")

    def test_context_restores_previous_arming(self):
        with inject_faults("parse"):
            assert fault_active("parse")
            with inject_faults("spice.singular"):
                # Nested arming composes.
                assert fault_active("parse")
                assert fault_active("spice.singular")
            assert fault_active("parse")
            assert not fault_active("spice.singular")
        assert active_faults() == frozenset()

    def test_fixture_clears_on_teardown(self, fault_injector):
        fault_injector.arm("parse", "spice.nonfinite")
        assert fault_injector.armed == {"parse", "spice.nonfinite"}
        fault_injector.disarm("parse")
        assert fault_injector.armed == {"spice.nonfinite"}
        # Deliberately leave a site armed; the fixture teardown (and the
        # default-state test above) prove it cannot leak.


class TestMapperSites:
    def test_injected_deadline_truncates_before_first_node(self):
        design = compile_design(SOURCE)
        mapper = ArchitectureMapper(design.main_sfg)
        with inject_faults("mapper.deadline"):
            with pytest.raises(SynthesisError) as info:
                mapper.run()
        assert "deadline" in str(info.value)
        stats = info.value.statistics
        assert stats is not None
        assert stats.truncated
        assert stats.truncated_reason == "deadline"

    def test_real_deadline_returns_best_incumbent(self, monkeypatch):
        """An expiring wall clock truncates but keeps the incumbent.

        Driven by a fake monotonic clock (1 ms per reading) so the
        expiry point is deterministic: the biquad search finds its
        first feasible mapping before the 10 ms budget runs out.
        """
        design = compile_design((EXAMPLES / "biquad.vhd").read_text())
        ticks = itertools.count()
        monkeypatch.setattr(
            mapper_mod.time, "perf_counter", lambda: next(ticks) * 1e-3
        )
        mapper = ArchitectureMapper(
            design.main_sfg, options=MapperOptions(deadline_s=0.01)
        )
        result = mapper.run()
        stats = result.statistics
        assert stats.truncated
        assert stats.truncated_reason == "deadline"
        assert stats.feasible_mappings >= 1
        assert result.netlist.instances

    def test_node_budget_reason_is_distinct(self):
        design = compile_design((EXAMPLES / "biquad.vhd").read_text())
        mapper = ArchitectureMapper(
            design.main_sfg,
            options=MapperOptions(max_nodes=5, first_solution_only=False),
        )
        try:
            result = mapper.run()
            stats = result.statistics
        except SynthesisError as err:
            stats = err.statistics
        assert stats.truncated
        assert stats.truncated_reason == "nodes"

    def test_injected_infeasibility_names_the_violation(self):
        design = compile_design(SOURCE)
        mapper = ArchitectureMapper(design.main_sfg)
        with inject_faults("mapper.infeasible"):
            with pytest.raises(SynthesisError) as info:
                mapper.run()
        stats = info.value.statistics
        assert stats is not None
        assert stats.feasible_mappings == 0
        assert INJECTED_VIOLATION in stats.constraint_violations

    def test_injected_infeasibility_drives_the_whole_ladder(self):
        """The ``injected`` violation is deliberately un-relaxable, so
        every rung runs and fails — the ladder-exhausted path."""
        with inject_faults("mapper.infeasible"):
            with pytest.raises(SynthesisError) as info:
                synthesize(SOURCE, options=FlowOptions(recovery=True))
        message = str(info.value)
        assert "recovery ladder exhausted" in message
        assert "greedy" in message

    def test_fault_does_not_outlive_the_context(self):
        with inject_faults("mapper.infeasible"):
            pass
        result = synthesize(SOURCE)
        assert result.estimate.feasible


class TestSpiceSites:
    def test_singular_mna_names_suspects(self):
        solver = MnaSolver(_divider())
        with inject_faults("spice.singular"):
            with pytest.raises(SimulationError) as info:
                solver.dc_operating_point()
        message = str(info.value)
        assert "singular MNA matrix" in message
        assert "suspect unknowns" in message
        assert "v(in)" in message

    def test_singular_ac_names_frequency_and_suspects(self):
        with inject_faults("spice.ac.singular"):
            with pytest.raises(SimulationError) as info:
                ac_sweep(_divider(), 1.0, 1e3)
        message = str(info.value)
        assert "singular AC matrix at" in message
        assert "Hz" in message
        assert "suspect unknowns" in message

    def test_nonfinite_solution_is_located(self):
        solver = MnaSolver(_divider())
        with inject_faults("spice.nonfinite"):
            with pytest.raises(SimulationError) as info:
                solver.dc_operating_point()
        message = str(info.value)
        assert "non-finite" in message
        assert "NaN/Inf" in message

    def test_nonfinite_transient_names_the_time(self):
        solver = MnaSolver(_divider())
        with inject_faults("spice.nonfinite"):
            with pytest.raises(SimulationError) as info:
                solver.transient(t_end=1e-3, dt=1e-4)
        assert "at t=" in str(info.value)

    def test_clean_circuit_unaffected(self):
        op = MnaSolver(_divider()).dc_operating_point()
        assert op["out"] == pytest.approx(0.5)


class TestParseSite:
    def test_parse_source_raises(self):
        with inject_faults("parse"):
            with pytest.raises(ParseError, match="fault injection"):
                parse_source(SOURCE)

    def test_collecting_mode_returns_the_injected_error(self):
        with inject_faults("parse"):
            source, errors = parse_source_collecting(SOURCE)
        assert len(errors) == 1
        assert "fault injection" in str(errors[0])
        assert not source.units
