"""Tests for the markdown report generator."""

import pytest

from repro.apps import receiver
from repro.cli import main
from repro.flow import synthesize
from repro.report import generate_report
from repro.spice import sin_wave
from repro.verify import verify_equivalence


@pytest.fixture(scope="module")
def result():
    return synthesize(receiver.VASS_SOURCE)


class TestReport:
    def test_sections_present(self, result):
        report = generate_report(result)
        for heading in (
            "# Synthesis report",
            "## Specification and intermediate representation",
            "## Synthesized architecture",
            "## Timing and search effort",
            "## SPICE deck",
        ):
            assert heading in report

    def test_port_annotations_table(self, result):
        report = generate_report(result)
        assert "earph" in report
        assert "270 ohm" in report

    def test_instances_listed(self, result):
        report = generate_report(result)
        assert "switched_gain_amplifier" in report
        assert "output_stage" in report

    def test_fsm_realizations_listed(self, result):
        report = generate_report(result)
        assert "zero-cross" in report

    def test_spice_optional(self, result):
        without = generate_report(result, include_spice=False)
        assert "SPICE deck" not in without

    def test_verification_section(self, result):
        verdict = verify_equivalence(
            result,
            inputs={"line": sin_wave(0.5, 1e3), "local": lambda t: 0.1},
            t_end=1e-3,
            tolerance=0.10,
        )
        report = generate_report(result, verification=verdict)
        assert "## Verification" in report
        assert "EQUIVALENT" in report

    def test_title_override(self, result):
        report = generate_report(result, title="My Receiver")
        assert "My Receiver" in report

    def test_cli_report(self, capsys):
        assert main(["report", "function_generator", "--no-spice"]) == 0
        out = capsys.readouterr().out
        assert "# Synthesis report" in out
        assert "schmitt_trigger" in out
