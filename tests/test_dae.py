"""Tests for DAE causalization and solver emission."""

import math

import pytest

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.parser import parse_source
from repro.vass.semantics import analyze
from repro.compiler.dae import DaeCompiler, dot_name, strip_dots
from repro.compiler.expressions import ExprCompiler
from repro.vhif.design import VhifDesign
from repro.vhif.interp import Interpreter
from repro.vhif.sfg import BlockKind, SignalFlowGraph


def equations_of(body: str, decls: str = "", ports: str = ""):
    source = f"""
ENTITY e IS PORT ({ports if ports else 'QUANTITY u : IN real'}); END ENTITY;
ARCHITECTURE t OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""
    design = analyze(parse_source(source), check_restrictions=False)
    eqs = [
        s
        for s in design.architecture.statements
        if isinstance(s, ast.SimpleSimultaneous)
    ]
    return eqs, design


class TestStripDots:
    def test_dot_becomes_name(self):
        eqs, _ = equations_of("x'dot == u;", decls="QUANTITY x : real;")
        stripped = strip_dots(eqs[0].lhs)
        assert isinstance(stripped, ast.Name)
        assert stripped.identifier == dot_name("x")

    def test_nested_dot(self):
        eqs, _ = equations_of("x'dot'dot == u;", decls="QUANTITY x : real;")
        stripped = strip_dots(eqs[0].lhs)
        assert stripped.identifier == dot_name(dot_name("x"))

    def test_dot_inside_expression(self):
        eqs, _ = equations_of(
            "u == 2.0 * x'dot + x;", decls="QUANTITY x : real;"
        )
        names = ast.referenced_names(strip_dots(eqs[0].rhs))
        assert dot_name("x") in names
        assert "x" in names


class TestCausalization:
    def test_explicit_equation(self):
        eqs, _ = equations_of("y == 2.0 * u;", decls="QUANTITY y : real;")
        dae = DaeCompiler(eqs, ["y"])
        solvers = dae.enumerate_causalizations()
        assert len(solvers) == 1
        assert "y" in solvers[0].solutions

    def test_state_from_dot(self):
        eqs, _ = equations_of("x'dot == u - x;", decls="QUANTITY x : real;")
        dae = DaeCompiler(eqs, ["x"])
        solvers = dae.enumerate_causalizations()
        assert solvers[0].states == {"x": 0.0}
        assert dot_name("x") in solvers[0].solutions

    def test_initial_value_flows_to_state(self):
        eqs, _ = equations_of("x'dot == u;", decls="QUANTITY x : real;")
        dae = DaeCompiler(eqs, ["x"], initial_values={"x": 3.0})
        solvers = dae.enumerate_causalizations()
        assert solvers[0].states["x"] == 3.0

    def test_implicit_equation_solved(self):
        # u == y + 2y  =>  y = u/3
        eqs, _ = equations_of("u == y + 2.0 * y;", decls="QUANTITY y : real;")
        dae = DaeCompiler(eqs, ["y"])
        (solver,) = dae.enumerate_causalizations()
        assert "y" in solver.solutions

    def test_coupled_system_ordering(self):
        eqs, _ = equations_of(
            "a == 2.0 * u;\n  b == a + 1.0;",
            decls="QUANTITY a : real; QUANTITY b : real;",
        )
        dae = DaeCompiler(eqs, ["a", "b"])
        (solver,) = dae.enumerate_causalizations()
        assert solver.order.index("a") < solver.order.index("b")

    def test_multiple_causalizations_enumerated(self):
        # `a` can come from the first or second equation, `b` from the
        # second or third: several distinct solvers exist.
        eqs, _ = equations_of(
            "u == a * 2.0;\n  a == b - 1.0;\n  u == b;",
            decls="QUANTITY a : real; QUANTITY b : real;",
        )
        dae = DaeCompiler(eqs, ["a", "b"])
        solvers = dae.enumerate_causalizations()
        assert len(solvers) >= 2

    def test_rank_deficient_system_has_no_solver(self):
        # u == a + b and a == u - b are the same constraint twice: every
        # matching leaves a delay-free dependence cycle.
        eqs, _ = equations_of(
            "u == a + b;\n  a == u - b;",
            decls="QUANTITY a : real; QUANTITY b : real;",
        )
        dae = DaeCompiler(eqs, ["a", "b"])
        assert dae.enumerate_causalizations() == []

    def test_algebraic_loop_rejected(self):
        # a == b and b == a: pure cycle, no valid causalization.
        eqs, _ = equations_of(
            "a == b + u;\n  b == a - u;",
            decls="QUANTITY a : real; QUANTITY b : real;",
        )
        dae = DaeCompiler(eqs, ["a", "b"])
        # Either no solver at all, or only solvers without cycles.
        for solver in dae.enumerate_causalizations():
            assert solver.order  # must be topologically ordered

    def test_underdetermined_rejected(self):
        eqs, _ = equations_of(
            "u == a + b;", decls="QUANTITY a : real; QUANTITY b : real;"
        )
        with pytest.raises(CompileError, match="underdetermined"):
            DaeCompiler(eqs, ["a", "b"])

    def test_unsolvable_nonlinear(self):
        eqs, _ = equations_of("u == y * y;", decls="QUANTITY y : real;")
        dae = DaeCompiler(eqs, ["y"])
        assert dae.enumerate_causalizations() == []


class TestEmission:
    def emit(self, body, decls, unknowns, initial=None):
        eqs, design = equations_of(body, decls=decls)
        vhif = VhifDesign("t")
        sfg = SignalFlowGraph("main")
        vhif.add_sfg(sfg)
        compiler = ExprCompiler(sfg, design.scope)
        compiler.bind("u", sfg.add(BlockKind.INPUT, name="u"))
        dae = DaeCompiler(eqs, unknowns, initial_values=initial or {})
        produced = dae.emit(compiler)
        return sfg, produced, vhif

    def test_integrator_emitted_for_state(self):
        sfg, produced, _ = self.emit(
            "x'dot == u - x;", "QUANTITY x : real;", ["x"]
        )
        assert produced["x"].kind is BlockKind.INTEGRATE
        # The integrator's input is the solved derivative expression.
        assert sfg.driver_of(produced["x"], 0) is not None

    def test_first_order_lowpass_simulates(self):
        # x' = (u - x): step response -> 1 - e^{-t}
        sfg, produced, vhif = self.emit(
            "x'dot == u - x;", "QUANTITY x : real := 0.0;", ["x"]
        )
        out = sfg.add(BlockKind.OUTPUT, name="x_out")
        sfg.connect(produced["x"], out)
        interp = Interpreter(vhif, dt=1e-3, inputs={"u": lambda t: 1.0})
        traces = interp.run(1.0, probes=["x_out"])
        assert traces.final("x_out") == pytest.approx(
            1.0 - math.exp(-1.0), rel=5e-3
        )

    def test_second_order_oscillator(self):
        # x' = v, v' = -x: harmonic oscillator, energy preserved-ish.
        eqs, design = equations_of(
            "x'dot == v;\n  v'dot == 0.0 - x;",
            decls="QUANTITY x : real := 1.0; QUANTITY v : real := 0.0;",
        )
        vhif = VhifDesign("osc")
        sfg = SignalFlowGraph("main")
        vhif.add_sfg(sfg)
        compiler = ExprCompiler(sfg, design.scope)
        compiler.bind("u", sfg.add(BlockKind.INPUT, name="u"))
        dae = DaeCompiler(eqs, ["x", "v"], initial_values={"x": 1.0, "v": 0.0})
        produced = dae.emit(compiler)
        out = sfg.add(BlockKind.OUTPUT, name="xo")
        sfg.connect(produced["x"], out)
        interp = Interpreter(vhif, dt=1e-4)
        traces = interp.run(math.pi, probes=["xo"])  # half period
        assert traces.final("xo") == pytest.approx(-1.0, abs=5e-3)

    def test_no_valid_causalization_raises(self):
        eqs, design = equations_of("u == y * y;", decls="QUANTITY y : real;")
        vhif = VhifDesign("t")
        sfg = SignalFlowGraph("main")
        vhif.add_sfg(sfg)
        compiler = ExprCompiler(sfg, design.scope)
        compiler.bind("u", sfg.add(BlockKind.INPUT, name="u"))
        dae = DaeCompiler(eqs, ["y"])
        with pytest.raises(CompileError):
            dae.emit(compiler)

    def test_known_dot_becomes_differentiator(self):
        # y == u'dot: derivative of a known input.
        sfg, produced, _ = self.emit(
            "y == u'dot;", "QUANTITY y : real;", ["y"]
        )
        assert produced["y"].kind is BlockKind.DIFFERENTIATE
