"""Differential testing of the whole compile path.

Random VASS designs are generated (hypothesis), compiled to VHIF,
executed with the interpreter, and compared against direct evaluation
of the same expressions — a property over the *entire* frontend +
compiler + interpreter stack.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_design
from repro.vhif import Interpreter

operators = st.sampled_from(["+", "-", "*"])
leaves = st.sampled_from(["a", "b", "1.0", "2.0", "0.5"])


@st.composite
def linear_expr(draw, depth=0):
    """A random arithmetic expression over inputs a, b (as text)."""
    if depth >= 3 or draw(st.booleans()):
        return draw(leaves)
    op = draw(operators)
    left = draw(linear_expr(depth=depth + 1))
    right = draw(linear_expr(depth=depth + 1))
    return f"({left} {op} {right})"


def evaluate_text(text: str, a: float, b: float) -> float:
    return eval(  # noqa: S307 - controlled input from our own generator
        text, {"__builtins__": {}}, {"a": a, "b": b}
    )


def has_signal_path(text: str) -> bool:
    return "a" in text or "b" in text


class TestCompiledExpressionsMatchPython:
    @given(linear_expr(), st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=60, deadline=None)
    def test_random_design(self, expr_text, a, b):
        if not has_signal_path(expr_text):
            return  # constant designs have no output drive path to test
        source = f"""
ENTITY rand IS PORT (QUANTITY a : IN real; QUANTITY b : IN real;
                     QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE t OF rand IS
BEGIN
  y == {expr_text};
END ARCHITECTURE;
"""
        design = compile_design(source)
        interp = Interpreter(
            design, dt=1e-6,
            inputs={"a": lambda t: a, "b": lambda t: b},
        )
        interp.step()
        expected = evaluate_text(expr_text, a, b)
        assert float(interp.probe("y")) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_first_order_ode(self, tau, level):
        """tau x' = u - x against the analytic step response."""
        source = f"""
ENTITY ode IS PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE t OF ode IS
  QUANTITY x : real := 0.0;
BEGIN
  {tau!r} * x'dot == u - x;
  y == x;
END ARCHITECTURE;
"""
        design = compile_design(source)
        t_end = tau  # one time constant
        interp = Interpreter(design, dt=tau / 2000.0,
                             inputs={"u": lambda t: level})
        traces = interp.run(t_end, probes=["y"])
        expected = level * (1.0 - math.exp(-1.0))
        assert traces.final("y") == pytest.approx(expected, rel=5e-3)

    @given(
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0), min_size=2, max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_random_weighted_sum(self, weights):
        terms = " + ".join(
            f"({w!r}) * i{k}" for k, w in enumerate(weights)
        )
        ports = "; ".join(
            f"QUANTITY i{k} : IN real" for k in range(len(weights))
        )
        source = f"""
ENTITY ws IS PORT ({ports}; QUANTITY y : OUT real); END ENTITY;
ARCHITECTURE t OF ws IS
BEGIN
  y == {terms};
END ARCHITECTURE;
"""
        design = compile_design(source)
        values = [0.1 * (k + 1) for k in range(len(weights))]
        interp = Interpreter(
            design, dt=1e-6,
            inputs={
                f"i{k}": (lambda t, v=v: v) for k, v in enumerate(values)
            },
        )
        interp.step()
        expected = sum(w * v for w, v in zip(weights, values))
        assert float(interp.probe("y")) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )
