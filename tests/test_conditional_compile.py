"""Focused tests for simultaneous if/case compilation."""

import pytest

from repro.diagnostics import CompileError
from repro.compiler import compile_design
from repro.vhif import BlockKind, Interpreter


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


def controller(extra=""):
    """A process driving bit signal c from u'above(0.5)."""
    return f"""
  PROCESS (u'ABOVE(0.5)) IS
  BEGIN
    IF (u'ABOVE(0.5) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
  END PROCESS;
{extra}"""


class TestSimultaneousIf:
    def compile(self, body, decls="QUANTITY g : real; SIGNAL c : bit;"):
        return compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls=decls,
                body=body + controller(),
            ),
        )

    def run(self, design, u):
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: u})
        interp.run(1e-4, probes=[])
        return float(interp.probe("y"))

    def test_two_branch_values(self):
        design = self.compile(
            """
  y == g * u;
  IF (c = '1') USE g == 3.0; ELSE g == 1.0; END USE;
"""
        )
        assert self.run(design, 1.0) == pytest.approx(3.0)
        assert self.run(design, 0.25) == pytest.approx(0.25)

    def test_inverted_polarity_condition(self):
        design = self.compile(
            """
  y == g * u;
  IF (c = '0') USE g == 3.0; ELSE g == 1.0; END USE;
"""
        )
        assert self.run(design, 1.0) == pytest.approx(1.0)
        assert self.run(design, 0.25) == pytest.approx(0.75)

    def test_elsif_chain_produces_mux_cascade(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY g : real; SIGNAL c : bit; SIGNAL d : bit;",
                body="""
  y == g * u;
  IF (c = '1') USE g == 3.0;
  ELSIF (d = '1') USE g == 2.0;
  ELSE g == 1.0;
  END USE;
  PROCESS (u'ABOVE(0.5), u'ABOVE(1.5)) IS
  BEGIN
    IF (u'ABOVE(1.5) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
    IF (u'ABOVE(0.5) = TRUE) THEN d <= '1'; ELSE d <= '0'; END IF;
  END PROCESS;
""",
            ),
        )
        muxes = design.main_sfg.blocks_of_kind(BlockKind.MUX)
        assert len(muxes) == 2

    def test_implicit_branch_equations_solved(self):
        # Branch equations may be implicit: 2*g == 6 still defines g.
        design = self.compile(
            """
  y == g * u;
  IF (c = '1') USE 2.0 * g == 6.0; ELSE g + 1.0 == 2.0; END USE;
"""
        )
        assert self.run(design, 1.0) == pytest.approx(3.0)
        assert self.run(design, 0.2) == pytest.approx(0.2)

    def test_analog_condition_uses_comparator(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY g : real;",
                body="""
  y == g * u;
  IF (u > 1.0) USE g == 2.0; ELSE g == 1.0; END USE;
""",
            ),
        )
        comparators = design.main_sfg.blocks_of_kind(BlockKind.COMPARATOR)
        assert len(comparators) == 1

    def test_missing_else_rejected(self):
        with pytest.raises(CompileError, match="else"):
            self.compile(
                """
  y == g * u;
  IF (c = '1') USE g == 3.0; END USE;
"""
            )

    def test_branch_not_defining_unknown_rejected(self):
        with pytest.raises(CompileError):
            self.compile(
                """
  y == g * u;
  IF (c = '1') USE u == 1.0; ELSE g == 1.0; END USE;
"""
            )


class TestSimultaneousCase:
    def test_case_with_others(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY g : real; SIGNAL c : bit;",
                body="""
  y == g * u;
  CASE c USE
    WHEN '1' => g == 5.0;
    WHEN OTHERS => g == 1.0;
  END CASE;
""" + controller(),
            ),
        )
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 1.0})
        interp.run(1e-4, probes=[])
        assert float(interp.probe("y")) == pytest.approx(5.0)

    def test_case_without_others_uses_last_as_default(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY g : real; SIGNAL c : bit;",
                body="""
  y == g * u;
  CASE c USE
    WHEN '1' => g == 5.0;
    WHEN '0' => g == 1.0;
  END CASE;
""" + controller(),
            ),
        )
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 0.2})
        interp.run(1e-4, probes=[])
        assert float(interp.probe("y")) == pytest.approx(0.2)

    def test_non_signal_selector_rejected(self):
        with pytest.raises(CompileError, match="selector"):
            compile_design(
                wrap(
                    "QUANTITY u : IN real; QUANTITY y : OUT real",
                    decls="QUANTITY g : real;",
                    body="""
  y == g * u;
  CASE (u + 1.0) USE
    WHEN 1.0 => g == 5.0;
    WHEN OTHERS => g == 1.0;
  END CASE;
""",
                ),
            )
