"""Round-trip tests for the VASS pretty-printer.

The defining property: ``parse(print(ast))`` produces a structurally
identical AST (source locations excluded from comparison).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import ALL_APPLICATIONS, EXTRA_APPLICATIONS
from repro.vass import ast_nodes as ast
from repro.vass.parser import parse_expression, parse_source
from repro.vass.printer import print_expression, print_source


def roundtrip_expr(text):
    expr = parse_expression(text)
    printed = print_expression(expr)
    reparsed = parse_expression(printed)
    assert reparsed == expr, f"{text!r} -> {printed!r}"
    return printed


class TestExpressionRoundtrip:
    CASES = [
        "a",
        "42",
        "2.5",
        "'1'",
        "TRUE",
        "a + b",
        "a - b - c",
        "a * (b + c)",
        "-a",
        "-(a * b)",
        "a ** 2",
        "2.0 ** a",
        "abs (a)",
        "not (a = b)",
        "log(x) + exp(y)",
        "a / b / c",
        "(a + b) * (c - d)",
        "line'above(0.2)",
        "x'dot",
        "x'dot + y'dot",
        "a = b and c = d",
        "a < b or c >= d",
        "v(3)",
        "a mod b",
        "(a = b) = TRUE",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        roundtrip_expr(text)

    def test_left_associativity_preserved(self):
        # a - b - c must stay (a-b)-c, not a-(b-c).
        printed = roundtrip_expr("a - b - c")
        assert printed == "a - b - c"

    def test_right_operand_parenthesized(self):
        expr = ast.BinaryOp(
            operator="-",
            left=ast.Name(identifier="a"),
            right=ast.BinaryOp(
                operator="-",
                left=ast.Name(identifier="b"),
                right=ast.Name(identifier="c"),
            ),
        )
        printed = print_expression(expr)
        assert parse_expression(printed) == expr
        assert "(" in printed


names = st.sampled_from(["a", "b", "c", "x", "y"])


@st.composite
def expressions(draw, depth=0):
    if depth >= 3:
        choice = draw(st.integers(min_value=0, max_value=1))
        if choice == 0:
            return ast.Name(identifier=draw(names))
        return ast.RealLiteral(
            value=float(draw(st.integers(min_value=0, max_value=99)))
        )
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return ast.Name(identifier=draw(names))
    if kind == 1:
        return ast.RealLiteral(
            value=float(draw(st.integers(min_value=0, max_value=99)))
        )
    if kind == 2:
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return ast.BinaryOp(
            operator=op,
            left=draw(expressions(depth=depth + 1)),
            right=draw(expressions(depth=depth + 1)),
        )
    if kind == 3:
        return ast.UnaryOp(
            operator="-", operand=draw(expressions(depth=depth + 1))
        )
    if kind == 4:
        fn = draw(st.sampled_from(["log", "exp", "sqrt"]))
        return ast.FunctionCall(
            name=fn, arguments=[draw(expressions(depth=depth + 1))]
        )
    return ast.AttributeExpr(
        prefix=ast.Name(identifier=draw(names)),
        attribute="dot",
        arguments=[],
    )


class TestExpressionProperty:
    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_print_parse_roundtrip(self, expr):
        printed = print_expression(expr)
        reparsed = parse_expression(printed)
        assert reparsed == expr


class TestSourceRoundtrip:
    @pytest.mark.parametrize(
        "name", list(ALL_APPLICATIONS) + list(EXTRA_APPLICATIONS)
    )
    def test_applications_roundtrip(self, name):
        module = {**ALL_APPLICATIONS, **EXTRA_APPLICATIONS}[name]
        original = parse_source(module.VASS_SOURCE)
        printed = print_source(original)
        reparsed = parse_source(printed)
        assert reparsed.units == original.units

    def test_double_print_is_stable(self):
        source = ALL_APPLICATIONS["receiver"].VASS_SOURCE
        once = print_source(parse_source(source))
        twice = print_source(parse_source(once))
        assert once == twice

    def test_package_roundtrip(self):
        text = "PACKAGE p IS CONSTANT k : real := 2.0; END PACKAGE;"
        original = parse_source(text)
        assert parse_source(print_source(original)).units == original.units

    def test_generic_roundtrip(self):
        text = (
            "ENTITY e IS GENERIC (g : real := 1.5); "
            "PORT (QUANTITY y : OUT real); END ENTITY;"
            "ARCHITECTURE a OF e IS BEGIN y == g; END ARCHITECTURE;"
        )
        original = parse_source(text)
        assert parse_source(print_source(original)).units == original.units

    def test_aggregate_roundtrip(self):
        roundtrip_expr("u'ltf((1.0, 0.5), (1.0, 0.01, 0.0001))")

    def test_ltf_source_roundtrip(self):
        text = """
ENTITY f IS PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE tf OF f IS
BEGIN
  y == u'ltf((1.0), (1.0, 0.001));
END ARCHITECTURE;
"""
        original = parse_source(text)
        assert parse_source(print_source(original)).units == original.units

    def test_compiled_semantics_preserved(self):
        """The printed receiver compiles to an equivalent design."""
        from repro.compiler import compile_design

        source = ALL_APPLICATIONS["receiver"].VASS_SOURCE
        printed = print_source(parse_source(source))
        original = compile_design(source)
        reprinted = compile_design(printed)
        assert (
            original.statistics().as_row()
            == reprinted.statistics().as_row()
        )
