"""Tests for waveform measurements."""

import math

import numpy as np
import pytest

from repro.spice import waveform


def sine(freq=1000.0, amp=1.0, t_end=5e-3, dt=1e-6):
    t = np.arange(0, t_end, dt)
    return t, amp * np.sin(2 * math.pi * freq * t)


class TestBasicMeasures:
    def test_peak(self):
        _, v = sine(amp=2.0)
        assert waveform.peak(v) == pytest.approx(2.0, rel=1e-3)

    def test_peak_to_peak(self):
        _, v = sine(amp=1.5)
        assert waveform.peak_to_peak(v) == pytest.approx(3.0, rel=1e-3)

    def test_rms_of_sine(self):
        _, v = sine(amp=1.0)
        assert waveform.rms(v) == pytest.approx(1 / math.sqrt(2), rel=1e-2)

    def test_final_value(self):
        v = np.concatenate([np.linspace(0, 1, 100), np.full(100, 1.0)])
        assert waveform.final_value(v) == pytest.approx(1.0)


class TestClipping:
    def test_clean_sine_not_clipped(self):
        _, v = sine()
        report = waveform.detect_clipping(v)
        assert not report.clipped

    def test_hard_clipped_sine_detected(self):
        _, v = sine(amp=3.0)
        clipped = np.clip(v, -1.5, 1.5)
        report = waveform.detect_clipping(clipped)
        assert report.clipped
        assert report.level == pytest.approx(1.5)

    def test_dwell_fraction_grows_with_overdrive(self):
        _, v = sine(amp=2.0)
        light = waveform.detect_clipping(np.clip(v, -1.9, 1.9))
        _, v2 = sine(amp=5.0)
        hard = waveform.detect_clipping(np.clip(v2, -1.9, 1.9))
        assert hard.dwell_fraction > light.dwell_fraction

    def test_zero_signal(self):
        report = waveform.detect_clipping(np.zeros(100))
        assert not report.clipped


class TestFrequency:
    def test_fundamental_of_sine(self):
        t, v = sine(freq=2000.0)
        assert waveform.fundamental_frequency(t, v) == pytest.approx(
            2000.0, rel=2e-2
        )

    def test_fundamental_of_triangle(self):
        t = np.arange(0, 10e-3, 1e-6)
        tri = 2 * np.abs(((t * 500) % 1.0) - 0.5) - 0.5
        assert waveform.fundamental_frequency(t, tri) == pytest.approx(
            500.0, rel=2e-2
        )

    def test_dc_has_no_fundamental(self):
        t = np.arange(0, 1e-3, 1e-6)
        v = np.full_like(t, 2.0)
        # All spectral content at DC is removed; remaining peak is noise.
        assert waveform.fundamental_frequency(t, v) >= 0.0

    def test_short_trace(self):
        assert waveform.fundamental_frequency(np.array([0.0]),
                                              np.array([1.0])) == 0.0


class TestCrossingsAndSettling:
    def test_crossing_count(self):
        _, v = sine(freq=1000.0, t_end=3e-3)
        # 3 periods -> 6 crossings (2 per period), +/- discretization.
        assert waveform.crossing_count(v) in (5, 6, 7)

    def test_settling_time(self):
        t = np.linspace(0, 1.0, 1000)
        v = 1.0 - np.exp(-t / 0.1)
        settle = waveform.settling_time(t, v, target=1.0, tolerance=0.02)
        # exp(-t/0.1) < 0.02 after t = 0.39.
        assert settle == pytest.approx(0.39, abs=0.05)

    def test_settled_from_start(self):
        t = np.linspace(0, 1.0, 100)
        v = np.ones_like(t)
        assert waveform.settling_time(t, v) == t[0]

    def test_gain_between(self):
        _, vin = sine(amp=0.5)
        _, vout = sine(amp=1.5)
        assert waveform.gain_between(vin, vout) == pytest.approx(3.0,
                                                                 rel=1e-3)

    def test_gain_zero_input(self):
        assert waveform.gain_between(np.zeros(10), np.ones(10)) == 0.0
