"""Tests for netlist structure, VHIF validation and DOT export."""

import pytest

from repro.diagnostics import SynthesisError, VaseError
from repro.library import default_library
from repro.synth.netlist import Netlist
from repro.vhif import (
    BlockKind,
    Fsm,
    PortEvent,
    SignalFlowGraph,
    START_STATE,
    VhifDesign,
)
from repro.vhif.dot import design_to_dot, fsm_to_dot, sfg_to_dot
from repro.vhif.validate import validate_design, validate_sfg


class TestNetlist:
    def make(self):
        netlist = Netlist(name="t", library=default_library())
        netlist.inputs["x"] = 0
        netlist.add_instance(
            "inverting_amplifier", params={"gain": -2.0}, inputs=[0],
            output=1, covers=[1],
        )
        netlist.add_instance(
            "voltage_follower", inputs=[1], output=2, covers=[2],
        )
        netlist.outputs["y"] = 2
        return netlist

    def test_total_opamps(self):
        assert self.make().total_opamps() == 2

    def test_driver_of(self):
        netlist = self.make()
        assert netlist.driver_of(1).spec.name == "inverting_amplifier"
        assert netlist.driver_of(99) is None

    def test_instance_lookup(self):
        netlist = self.make()
        assert netlist.instance("U1").spec.name == "inverting_amplifier"
        with pytest.raises(SynthesisError):
            netlist.instance("U99")

    def test_category_counts_and_summary(self):
        netlist = self.make()
        counts = netlist.category_counts()
        assert counts["amplif."] == 1
        assert counts["follower"] == 1
        assert "1 amplif." in netlist.summary()

    def test_covered_blocks(self):
        assert self.make().covered_blocks() == {1, 2}

    def test_validation_passes(self):
        self.make().validate()

    def test_validation_catches_undriven_input(self):
        netlist = self.make()
        netlist.add_instance("voltage_follower", inputs=[999], output=3)
        with pytest.raises(SynthesisError, match="no driver"):
            netlist.validate()

    def test_validation_catches_undriven_output_port(self):
        netlist = self.make()
        netlist.outputs["z"] = 777
        with pytest.raises(SynthesisError, match="undriven"):
            netlist.validate()

    def test_copy_independent(self):
        netlist = self.make()
        clone = netlist.copy()
        clone.instances[0].params["gain"] = -9.0
        assert netlist.instances[0].params["gain"] == -2.0

    def test_by_component(self):
        netlist = self.make()
        assert len(netlist.by_component("voltage_follower")) == 1

    def test_describe(self):
        text = self.make().describe()
        assert "U1" in text and "output y" in text


class TestValidateSfg:
    def test_undriven_input_detected(self):
        g = SignalFlowGraph("t")
        g.add(BlockKind.SCALE, gain=2.0)
        problems = validate_sfg(g)
        assert any("undriven" in p for p in problems)

    def test_missing_control_detected(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT)
        sh = g.add(BlockKind.SAMPLE_HOLD)
        out = g.add(BlockKind.OUTPUT)
        g.connect(x, sh)
        g.connect(sh, out)
        problems = validate_sfg(g)
        assert any("control" in p for p in problems)

    def test_orphan_detected(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=1.0)
        g.connect(x, s)
        problems = validate_sfg(g)
        assert any("drives nothing" in p for p in problems)

    def test_allowed_orphans_suppressed(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE, gain=1.0)
        g.connect(x, s)
        problems = validate_sfg(g, allowed_orphans=[s.block_id])
        assert not any("drives nothing" in p for p in problems)

    def test_comparator_orphan_allowed(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT)
        c = g.add(BlockKind.COMPARATOR, threshold=0.0)
        g.connect(x, c)
        problems = validate_sfg(g)
        assert not any("drives nothing" in p for p in problems)

    def test_scale_without_gain_detected(self):
        g = SignalFlowGraph("t")
        x = g.add(BlockKind.INPUT)
        s = g.add(BlockKind.SCALE)
        o = g.add(BlockKind.OUTPUT)
        g.connect(x, s)
        g.connect(s, o)
        problems = validate_sfg(g)
        assert any("gain" in p for p in problems)


class TestValidateDesign:
    def test_unproduced_control_signal(self):
        design = VhifDesign("t")
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT)
        sw = g.add(BlockKind.SWITCH)
        o = g.add(BlockKind.OUTPUT)
        g.connect(x, sw)
        g.connect(sw, o)
        g.bind_control("ghost", sw)
        design.add_sfg(g)
        with pytest.raises(VaseError, match="ghost"):
            validate_design(design)

    def test_external_signal_accepted_as_control(self):
        design = VhifDesign("t")
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT)
        sw = g.add(BlockKind.SWITCH)
        o = g.add(BlockKind.OUTPUT)
        g.connect(x, sw)
        g.connect(sw, o)
        g.bind_control("strobe", sw)
        design.add_sfg(g)
        design.external_signals.add("strobe")
        validate_design(design)  # no exception


class TestDotExport:
    def build(self):
        design = VhifDesign("t")
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        s = g.add(BlockKind.SCALE, gain=2.0)
        o = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, s)
        g.connect(s, o)
        design.add_sfg(g)
        fsm = Fsm("p")
        fsm.add_state("s1")
        fsm.add_transition(START_STATE, "s1", PortEvent(name="e"))
        design.add_fsm(fsm)
        return design

    def test_sfg_dot(self):
        dot = sfg_to_dot(self.build().main_sfg)
        assert dot.startswith("digraph")
        assert "scale" in dot
        assert "->" in dot

    def test_fsm_dot(self):
        dot = fsm_to_dot(self.build().fsm)
        assert "start" in dot
        assert "s1" in dot

    def test_design_dot_combines(self):
        dot = design_to_dot(self.build())
        assert dot.count("digraph") == 2
