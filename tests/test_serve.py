"""Tests for ``vase serve``: job queue, SSE streaming, /metrics."""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.apps import biquad_filter
from repro.flow import FlowOptions, synthesize
from repro.instrument import (
    RunLedger,
    TelemetryBus,
    disable_telemetry,
    enable_telemetry,
    validate_exposition,
)
from repro.pipeline import ArtifactCache
from repro.serve import (
    JobManager,
    JobOptionsError,
    QueueFullError,
    UnknownJobError,
    build_job_options,
    create_server,
    parse_sse,
    watch,
)
from repro.serve.queue import JobEventLog
from repro.serve.sse import format_comment, format_event, format_message

AMP = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""

BROKEN = """
ENTITY broken IS
PORT (
  QUANTITY vin : IN real IS voltage
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
ARCHITECTURE a OF broken IS
BEGIN
  vout == * vin;
END ARCHITECTURE;
"""


@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port, with bus + ledger wired
    exactly as ``vase serve`` wires them."""
    previous = disable_telemetry()
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    options = FlowOptions(
        trace=True, explog=True, recovery=True, cache=ArtifactCache(),
    )
    manager = JobManager(options, ledger=ledger, workers=2)
    bus = TelemetryBus()
    bus.subscribe(manager.route)
    enable_telemetry(bus)
    server = create_server("127.0.0.1", 0, manager, heartbeat_s=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield {
            "base": f"http://{host}:{port}",
            "manager": manager,
            "bus": bus,
            "ledger": ledger,
        }
    finally:
        server.shutdown()
        server.server_close()
        manager.stop(wait=True)
        thread.join(timeout=5)
        disable_telemetry()
        if previous is not None:
            enable_telemetry(previous)


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get_json(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


def _submit(base, source=AMP, **extra):
    status, body = _post(base, "/jobs", {"source": source, **extra})
    assert status == 202
    return body["id"]


def _wait_terminal(base, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = _get_json(base, f"/jobs/{job_id}")
        if state["status"] in ("ok", "degraded", "failed"):
            return state
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestJobLifecycle:
    def test_job_runs_to_ok_with_artifacts(self, served):
        job_id = _submit(served["base"], label="amp-job")
        state = _wait_terminal(served["base"], job_id)
        assert state["status"] == "ok"
        assert state["design"] == "amp"
        assert sorted(state["artifacts"]) == [
            "explain", "netlist", "report", "spice",
        ]
        assert state["events"]["count"] > 0
        assert state["events"]["dropped"] == 0

    def test_submit_response_links(self, served):
        status, body = _post(
            served["base"], "/jobs", {"source": AMP}
        )
        assert status == 202
        assert body["links"]["events"] == f"/jobs/{body['id']}/events"
        _wait_terminal(served["base"], body["id"])

    def test_parse_failure_is_a_failed_job(self, served):
        job_id = _submit(served["base"], source=BROKEN)
        state = _wait_terminal(served["base"], job_id)
        assert state["status"] == "failed"
        # Error-recovery parsing surfaces every syntax error.
        assert len(state["errors"]) >= 2
        assert state["error"] == state["errors"][0]
        assert state["artifacts"] == []

    def test_artifact_404_until_available(self, served):
        job_id = _submit(served["base"], source=BROKEN)
        _wait_terminal(served["base"], job_id)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                served["base"] + f"/jobs/{job_id}/netlist"
            )
        assert excinfo.value.code == 404

    def test_jobs_listing_is_brief(self, served):
        job_id = _submit(served["base"])
        _wait_terminal(served["base"], job_id)
        listing = _get_json(served["base"], "/jobs")["jobs"]
        assert any(job["id"] == job_id for job in listing)
        assert all("source" not in job for job in listing)

    def test_deadline_option_reaches_the_mapper(self, served):
        manager = served["manager"]
        job = manager.submit(AMP, options={"deadline_s": 12.5})
        assert job.options.mapper.deadline_s == 12.5
        assert job.options.ledger is None
        _wait_terminal(served["base"], job.id)


class TestSseStreaming:
    def _read_stream(self, base, job_id, since=None):
        url = base + f"/jobs/{job_id}/events"
        if since is not None:
            url += f"?since={since}"
        with urllib.request.urlopen(url) as response:
            lines = (raw.decode("utf-8") for raw in response)
            return list(parse_sse(lines))

    def test_late_subscriber_replays_dense_from_zero(self, served):
        job_id = _submit(served["base"])
        _wait_terminal(served["base"], job_id)
        messages = self._read_stream(served["base"], job_id)
        assert messages[-1].event == "end"
        assert json.loads(messages[-1].data)["status"] == "ok"
        events = [m for m in messages[:-1] if not m.is_comment]
        seqs = [int(m.id) for m in events]
        assert seqs == list(range(len(seqs)))  # dense 0..N
        payloads = [json.loads(m.data) for m in events]
        assert all(p["run_id"] == job_id for p in payloads)
        phases = [
            p["payload"].get("phase") for p in payloads
            if p["payload"].get("kind") == "job"
        ]
        assert phases == ["queued", "running", "ok"]

    def test_resume_with_since_skips_the_prefix(self, served):
        job_id = _submit(served["base"])
        _wait_terminal(served["base"], job_id)
        full = [
            m for m in self._read_stream(served["base"], job_id)
            if m.event != "end" and not m.is_comment
        ]
        tail = [
            m for m in self._read_stream(
                served["base"], job_id, since=len(full) - 3
            )
            if m.event != "end" and not m.is_comment
        ]
        assert [m.id for m in tail] == [m.id for m in full[-2:]]

    def test_live_tail_sees_the_whole_stream(self, served):
        """A subscriber that connects immediately still gets seq 0..N:
        replay-from-ring covers whatever raced ahead of the GET."""
        job_id = _submit(served["base"])
        messages = self._read_stream(served["base"], job_id)
        assert messages[-1].event == "end"
        seqs = [
            int(m.id) for m in messages[:-1] if not m.is_comment
        ]
        assert seqs == list(range(len(seqs)))

    def test_heartbeats_on_idle_stream(self, served):
        # A queued-but-never-run job: feed the manager directly so
        # nothing executes while we listen.
        manager = served["manager"]
        log = JobEventLog()
        comments = []
        done = threading.Event()

        def listen():
            events, closed = log.wait(-1, timeout=0.05)
            if not events and not closed:
                comments.append("heartbeat")
            done.set()

        threading.Thread(target=listen, daemon=True).start()
        assert done.wait(2.0)
        assert comments == ["heartbeat"]
        del manager

    def test_concurrent_metrics_scrape_lints_clean(self, served):
        """Satellite + acceptance: /metrics passes validate_exposition
        while jobs are in flight, and carries the serve gauges."""
        job_ids = [_submit(served["base"]) for _ in range(3)]
        texts = []
        for _ in range(5):
            with urllib.request.urlopen(
                served["base"] + "/metrics"
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
                texts.append(response.read().decode("utf-8"))
            time.sleep(0.02)
        for job_id in job_ids:
            _wait_terminal(served["base"], job_id)
        with urllib.request.urlopen(served["base"] + "/metrics") as resp:
            texts.append(resp.read().decode("utf-8"))
        for text in texts:
            assert validate_exposition(text) == []
            assert "vase_serve_jobs_queued" in text
            assert "vase_serve_jobs_running" in text
        assert 'vase_serve_jobs_done_total{outcome="ok"} 3' in texts[-1]


class TestLedgerEndpoints:
    def test_history_shows_completed_jobs(self, served):
        ok_id = _submit(served["base"], label="good-one")
        bad_id = _submit(served["base"], source=BROKEN, label="bad-one")
        _wait_terminal(served["base"], ok_id)
        _wait_terminal(served["base"], bad_id)
        history = _get_json(served["base"], "/history")
        outcomes = {
            rec["run_id"]: rec["outcome"] for rec in history["records"]
        }
        assert outcomes[ok_id] == "ok"
        assert outcomes[bad_id] == "failed"
        only_failed = _get_json(served["base"], "/history?outcome=failed")
        assert [r["run_id"] for r in only_failed["records"]] == [bad_id]

    def test_stats_aggregates_served_jobs(self, served):
        job_id = _submit(served["base"])
        _wait_terminal(served["base"], job_id)
        stats = _get_json(served["base"], "/stats")
        assert stats["runs"] >= 1
        assert stats["outcomes"]["ok"] >= 1


class TestErrorPaths:
    def test_unknown_job_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served["base"] + "/jobs/deadbeef")
        assert excinfo.value.code == 404

    def test_unknown_path_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served["base"] + "/nope")
        assert excinfo.value.code == 404

    def test_bad_json_400(self, served):
        request = urllib.request.Request(
            served["base"] + "/jobs", data=b"{nope"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_option_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served["base"], "/jobs", {
                "source": AMP, "options": {"solver": "hack"},
            })
        assert excinfo.value.code == 400

    def test_empty_source_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served["base"], "/jobs", {"source": "   "})
        assert excinfo.value.code == 400

    def test_queue_full_503(self, tmp_path):
        previous = disable_telemetry()
        options = FlowOptions(recovery=True)
        manager = JobManager(options, workers=1, queue_limit=2)
        # Saturate: the single worker picks jobs up fast, so block it.
        # The blocked job still counts as queued (RUNNING is only set
        # inside _execute), so two submits fill the bound.
        gate = threading.Event()
        original_execute = manager._execute

        def blocked(job):
            gate.wait(10)
            original_execute(job)

        manager._execute = blocked
        try:
            manager.submit(AMP)
            manager.submit(AMP)
            with pytest.raises(QueueFullError):
                manager.submit(AMP)
        finally:
            gate.set()
            manager.stop(wait=True)
            disable_telemetry()
            if previous is not None:
                enable_telemetry(previous)


class TestOptionWhitelist:
    BASE = FlowOptions(recovery=True)

    def test_unknown_key_rejected(self):
        with pytest.raises(JobOptionsError, match="unknown option"):
            build_job_options(self.BASE, {"cache": "/tmp/x"})

    @pytest.mark.parametrize("deadline", [0, -1.5, "3", True, None])
    def test_bad_deadline_rejected(self, deadline):
        with pytest.raises(JobOptionsError, match="deadline_s"):
            build_job_options(self.BASE, {"deadline_s": deadline})

    @pytest.mark.parametrize("flag", ["recovery", "explore_solvers"])
    def test_booleans_enforced(self, flag):
        with pytest.raises(JobOptionsError, match=flag):
            build_job_options(self.BASE, {flag: "yes"})
        built = build_job_options(self.BASE, {flag: False})
        assert getattr(built, flag) is False

    @pytest.mark.parametrize("fanout", [0, 9, 1.5, True])
    def test_jobs_range_enforced(self, fanout):
        with pytest.raises(JobOptionsError, match="jobs"):
            build_job_options(self.BASE, {"jobs": fanout})

    def test_ledger_always_stripped(self):
        base = FlowOptions(ledger=object())
        assert build_job_options(base, None).ledger is None

    def test_executor_and_workers_accepted(self):
        from repro.pipeline import ParallelOptions

        built = build_job_options(
            self.BASE, {"executor": "thread", "workers": 3}
        )
        assert built.parallel == ParallelOptions(
            executor="thread", workers=3
        )

    def test_bad_executor_rejected(self):
        with pytest.raises(JobOptionsError, match="executor"):
            build_job_options(self.BASE, {"executor": "quantum"})

    @pytest.mark.parametrize("width", [0, 9, 1.5, True])
    def test_workers_range_enforced(self, width):
        with pytest.raises(JobOptionsError, match="workers"):
            build_job_options(self.BASE, {"workers": width})


class TestProcessBackendServe:
    def test_job_runs_on_process_pool(self, tmp_path):
        """A process-backend JobManager serves a job end to end: the
        synthesis happens in a spawned worker, yet artifacts, ledger
        record and telemetry arrive exactly like thread-mode serving."""
        from repro.pipeline import ParallelOptions

        previous = disable_telemetry()
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        options = FlowOptions(
            cache=ArtifactCache(disk_dir=tmp_path / "cache")
        )
        manager = JobManager(
            options,
            ledger=ledger,
            execution=ParallelOptions(executor="process", workers=1),
        )
        bus = TelemetryBus()
        bus.subscribe(manager.route)
        enable_telemetry(bus)
        try:
            job = manager.submit(AMP, label="amp.vhd")
            deadline = time.time() + 60.0
            while job.status not in ("ok", "degraded", "failed"):
                assert time.time() < deadline, "job did not finish"
                time.sleep(0.05)
            assert job.status == "ok"
            assert "netlist" in job.artifacts
            assert "report" in job.artifacts
            assert "amp" in job.artifacts["netlist"]
            records = ledger.records()
            assert len(records) == 1
            assert records[0].outcome == "ok"
        finally:
            manager.stop(wait=True)
            disable_telemetry()
            if previous is not None:
                enable_telemetry(previous)

    def test_worker_crash_fails_job_cleanly(self, tmp_path):
        """A worker killed mid-job yields a FAILED job, not a hang."""
        from repro.pipeline import ParallelOptions
        from repro.serve import queue as queue_module

        manager = JobManager(
            FlowOptions(),
            execution=ParallelOptions(executor="process", workers=1),
        )
        try:
            job = manager.submit(AMP, label="doomed.vhd")
            # Kill the resident worker while the job is in flight (or
            # queued — either way the crash must surface as FAILED).
            deadline = time.time() + 60.0
            while time.time() < deadline:
                workers = list(manager._remote._handles)
                if workers and job.status in ("queued", "running"):
                    for handle in workers:
                        if handle.busy:
                            handle.process.terminate()
                            break
                if job.status in ("ok", "degraded", "failed"):
                    break
                time.sleep(0.02)
            assert job.status in ("ok", "degraded", "failed"), (
                "job never reached a terminal state"
            )
        finally:
            manager.stop(wait=True)


class TestJobEventLog:
    def test_bounded_with_drop_count(self):
        from repro.instrument import TelemetryEvent

        log = JobEventLog(capacity=3)
        for seq in range(5):
            log.append(TelemetryEvent("r", seq, 0.0, "span", {}))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.seq for e in log.since(-1)] == [2, 3, 4]
        assert log.last_seq() == 4

    def test_wait_returns_on_close(self):
        log = JobEventLog()
        result = {}

        def waiter():
            result["value"] = log.wait(-1, timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        log.close()
        thread.join(timeout=5)
        assert result["value"] == ([], True)

    def test_unknown_job_error(self):
        previous = disable_telemetry()
        manager = JobManager(FlowOptions(), workers=1)
        try:
            with pytest.raises(UnknownJobError):
                manager.get("nope")
        finally:
            manager.stop(wait=True)
            disable_telemetry()
            if previous is not None:
                enable_telemetry(previous)


class TestByteIdentity:
    def test_served_artifacts_match_direct_synthesis(self, served):
        """Acceptance: server-fetched netlist/SPICE are byte-identical
        to what `vase synth`/`vase spice` produce for the same source
        and options."""
        from repro.spice import to_spice_deck

        source = biquad_filter.VASS_SOURCE
        job_id = _submit(served["base"], source=source)
        state = _wait_terminal(served["base"], job_id)
        assert state["status"] == "ok"
        with urllib.request.urlopen(
            served["base"] + f"/jobs/{job_id}/netlist"
        ) as response:
            served_netlist = response.read().decode("utf-8")
        with urllib.request.urlopen(
            served["base"] + f"/jobs/{job_id}/spice"
        ) as response:
            served_spice = response.read().decode("utf-8")
        direct = synthesize(
            source,
            options=FlowOptions(trace=True, explog=True, recovery=True),
        )
        assert served_netlist == direct.netlist.describe() + "\n"
        assert served_spice == to_spice_deck(direct.netlist)


class TestWatchClient:
    def test_watch_renders_and_exits_zero(self, served):
        job_id = _submit(served["base"], label="watched")
        out = io.StringIO()
        code = watch(served["base"] + f"/jobs/{job_id}", stream=out)
        text = out.getvalue()
        assert code == 0
        assert f"job {job_id}: queued" in text
        assert f"job {job_id}: ok" in text
        assert "job finished: ok" in text

    def test_watch_failed_job_exits_one(self, served):
        job_id = _submit(served["base"], source=BROKEN)
        _wait_terminal(served["base"], job_id)
        out = io.StringIO()
        code = watch(served["base"] + f"/jobs/{job_id}/events", stream=out)
        assert code == 1
        assert "job finished: failed" in out.getvalue()


class TestSseFraming:
    def test_roundtrip_through_parser(self):
        from repro.instrument import TelemetryEvent

        event = TelemetryEvent("r1", 7, 1.5, "lifecycle", {"x": 1})
        wire = (
            format_comment("heartbeat")
            + format_event(event)
            + format_message("{}", event="end")
        )
        messages = list(parse_sse(io.StringIO(wire.decode("utf-8"))))
        assert messages[0].is_comment
        assert messages[0].comments == ["heartbeat"]
        assert messages[1].id == "7"
        assert messages[1].event == "lifecycle"
        assert json.loads(messages[1].data)["payload"] == {"x": 1}
        assert messages[2].event == "end"

    def test_multiline_data_joined(self):
        frames = "data: a\ndata: b\n\n"
        (message,) = parse_sse(io.StringIO(frames))
        assert message.data == "a\nb"


class TestShutdownEndpoint:
    def test_post_shutdown_stops_the_server(self, tmp_path):
        previous = disable_telemetry()
        manager = JobManager(FlowOptions(recovery=True), workers=1)
        server = create_server("127.0.0.1", 0, manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            status, body = _post(
                f"http://{host}:{port}", "/shutdown", {}
            )
            assert status == 200
            assert body == {"status": "shutting down"}
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()
            manager.stop(wait=True)
            disable_telemetry()
            if previous is not None:
                enable_telemetry(previous)
