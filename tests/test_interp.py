"""Tests for the VHIF behavioral interpreter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnostics import SimulationError
from repro.vass.parser import parse_expression
from repro.vhif import (
    BlockKind,
    CONTROL_PORT,
    DataOp,
    Fsm,
    Interpreter,
    PortEvent,
    SignalFlowGraph,
    START_STATE,
    VhifDesign,
    eval_discrete,
    simulate,
)


def design_with(build):
    """Helper: VhifDesign with one SFG built by ``build(g)``."""
    design = VhifDesign("t")
    g = SignalFlowGraph("main")
    build(g)
    design.add_sfg(g)
    return design


class TestEvalDiscrete:
    def test_arithmetic(self):
        assert eval_discrete(parse_expression("2.0 + 3.0 * 4.0"), {}) == 14.0

    def test_names_from_env(self):
        assert eval_discrete(parse_expression("x - 1.0"), {"x": 5.0}) == 4.0

    def test_undefined_name(self):
        with pytest.raises(SimulationError):
            eval_discrete(parse_expression("nope"), {})

    def test_char_equality(self):
        assert eval_discrete(parse_expression("c = '1'"), {"c": "1"}) is True

    def test_boolean_logic(self):
        expr = parse_expression("a = 1.0 and b = 2.0")
        assert eval_discrete(expr, {"a": 1.0, "b": 2.0}) is True

    def test_above_attribute(self):
        expr = parse_expression("q'above(0.5)")
        assert eval_discrete(expr, {"q": 0.7}) is True
        assert eval_discrete(expr, {"q": 0.3}) is False

    def test_functions(self):
        assert eval_discrete(parse_expression("exp(0.0)"), {}) == 1.0

    def test_not(self):
        assert eval_discrete(parse_expression("not (a = '1')"), {"a": "0"})


class TestBlockSemantics:
    def test_scale_and_add(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            s = g.add(BlockKind.SCALE, gain=3.0)
            c = g.add(BlockKind.CONST, value=1.0)
            a = g.add(BlockKind.ADD, n_inputs=2)
            out = g.add(BlockKind.OUTPUT, name="y")
            g.connect(x, s)
            g.connect(s, a, port=0)
            g.connect(c, a, port=1)
            g.connect(a, out)

        traces = simulate(
            design_with(build), 1e-4, dt=1e-5,
            inputs={"x": lambda t: 2.0}, probes=["y"],
        )
        assert traces.final("y") == pytest.approx(7.0)

    def test_sub_mul_div(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            c = g.add(BlockKind.CONST, value=4.0)
            sub = g.add(BlockKind.SUB)
            mul = g.add(BlockKind.MUL)
            div = g.add(BlockKind.DIV)
            out = g.add(BlockKind.OUTPUT, name="y")
            g.connect(c, sub, port=0)
            g.connect(x, sub, port=1)  # 4 - x
            g.connect(sub, mul, port=0)
            g.connect(x, mul, port=1)  # (4-x)*x
            g.connect(mul, div, port=0)
            g.connect(c, div, port=1)  # /4
            g.connect(div, out)

        traces = simulate(
            design_with(build), 1e-4, dt=1e-5,
            inputs={"x": lambda t: 2.0}, probes=["y"],
        )
        assert traces.final("y") == pytest.approx(1.0)

    def test_log_exp_abs_limit(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            log = g.add(BlockKind.LOG)
            exp = g.add(BlockKind.EXP, name="roundtrip")
            ab = g.add(BlockKind.ABS, name="mag")
            lim = g.add(BlockKind.LIMIT, low=-1.0, high=1.0, name="clamped")
            g.connect(x, log)
            g.connect(log, exp)
            g.connect(x, ab)
            g.connect(x, lim)

        interp = Interpreter(
            design_with(build), dt=1e-5, inputs={"x": lambda t: 2.5}
        )
        interp.step()
        assert interp.probe("roundtrip") == pytest.approx(2.5)
        assert interp.probe("mag") == pytest.approx(2.5)
        assert interp.probe("clamped") == pytest.approx(1.0)

    def test_integrator_ramp(self):
        def build(g):
            c = g.add(BlockKind.CONST, value=2.0)
            i = g.add(BlockKind.INTEGRATE, gain=1.0, initial=0.0, name="ramp")
            g.connect(c, i)

        traces = simulate(design_with(build), 1.0, dt=1e-3, probes=["ramp"])
        assert traces.final("ramp") == pytest.approx(2.0, rel=1e-2)

    def test_integrator_initial_condition(self):
        def build(g):
            c = g.add(BlockKind.CONST, value=0.0)
            i = g.add(BlockKind.INTEGRATE, gain=1.0, initial=5.0, name="state")
            g.connect(c, i)

        traces = simulate(design_with(build), 1e-3, dt=1e-4, probes=["state"])
        assert traces.final("state") == pytest.approx(5.0)

    def test_exponential_decay_accuracy(self):
        # x' = -x, x(0)=1 -> e^{-t}
        def build(g):
            i = g.add(BlockKind.INTEGRATE, gain=1.0, initial=1.0, name="x")
            n = g.add(BlockKind.NEG)
            g.connect(i, n)
            g.connect(n, i)

        traces = simulate(design_with(build), 1.0, dt=1e-4, probes=["x"])
        assert traces.final("x") == pytest.approx(math.exp(-1.0), rel=1e-3)

    def test_comparator_hysteresis(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            c = g.add(
                BlockKind.COMPARATOR, threshold=0.0, hysteresis=0.2,
                name="cmp",
            )
            g.connect(x, c)

        values = []
        interp = Interpreter(
            design_with(build), dt=1e-3,
            inputs={"x": lambda t: math.sin(2 * math.pi * t)},
        )
        traces = interp.run(1.0, probes=["cmp"])
        v = traces["cmp"]
        # Exactly two switchings per period despite the slow sine.
        assert int(np.abs(np.diff(v)).sum()) == 2

    def test_comparator_invert(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            c = g.add(BlockKind.COMPARATOR, threshold=0.0, invert=True,
                      name="cmp")
            g.connect(x, c)

        interp = Interpreter(design_with(build), dt=1e-5,
                             inputs={"x": lambda t: 1.0})
        interp.step()
        assert interp.probe("cmp") is False

    def test_sample_hold_tracks_and_holds(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            sh = g.add(BlockKind.SAMPLE_HOLD, name="sh")
            g.connect(x, sh)
            g.bind_control("track", sh)

        design = design_with(build)
        design.external_signals.add("track")
        interp = Interpreter(
            design, dt=1e-3,
            inputs={"x": lambda t: t, "track": lambda t: t < 0.5},
        )
        traces = interp.run(1.0, probes=["sh"])
        held = traces["sh"][-1]
        assert held == pytest.approx(0.5, abs=2e-3)

    def test_mux_selection_by_signal(self):
        def build(g):
            a = g.add(BlockKind.CONST, value=1.0)
            b = g.add(BlockKind.CONST, value=-1.0)
            m = g.add(BlockKind.MUX, n_inputs=2, name="m")
            g.connect(a, m, port=0)
            g.connect(b, m, port=1)
            g.bind_control("sel", m)

        design = design_with(build)
        design.external_signals.add("sel")
        interp = Interpreter(design, dt=1e-3,
                             inputs={"sel": lambda t: 1.0})
        interp.step()
        assert interp.probe("m") == pytest.approx(1.0)
        interp.inputs["sel"] = lambda t: 0.0
        interp.step()
        assert interp.probe("m") == pytest.approx(-1.0)

    def test_adc_quantizes(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            adc = g.add(BlockKind.ADC, bits=2, full_scale=4.0, name="adc")
            g.connect(x, adc)
            g.bind_control("go", adc)

        design = design_with(build)
        design.external_signals.add("go")
        interp = Interpreter(
            design, dt=1e-3,
            inputs={"x": lambda t: 1.9, "go": lambda t: 1.0},
        )
        interp.step()
        # 2 bits over 4 V full scale: LSB = 4/3; 1.9 -> round to 4/3*1=1.33..
        assert interp.probe("adc") == pytest.approx(4.0 / 3.0, rel=1e-6)

    def test_differentiator(self):
        def build(g):
            x = g.add(BlockKind.INPUT, name="x")
            d = g.add(BlockKind.DIFFERENTIATE, name="slope")
            g.connect(x, d)

        interp = Interpreter(design_with(build), dt=1e-3,
                             inputs={"x": lambda t: 3.0 * t})
        traces = interp.run(0.1, probes=["slope"])
        assert traces.final("slope") == pytest.approx(3.0, rel=1e-6)


class TestFsmExecution:
    def build_counter_design(self):
        design = design_with(lambda g: None)
        fsm = Fsm("p")
        s1 = fsm.add_state("s1")
        s1.operations.append(
            DataOp(target="n", expr=parse_expression("n + 1.0"))
        )
        fsm.add_transition(START_STATE, "s1", PortEvent(name="clk"))
        design.add_fsm(fsm)
        design.external_signals.add("clk")
        design.constants["n"] = 0.0
        return design

    def test_process_runs_once_per_event(self):
        design = self.build_counter_design()
        interp = Interpreter(
            design, dt=1e-3,
            inputs={"clk": lambda t: (int(t * 100) % 2) == 1},
        )
        interp.run(0.1, probes=[])
        # clk toggles every 10ms over 100ms -> ~10 events
        assert interp.env["n"] == pytest.approx(10.0, abs=1.0)

    def test_quiet_clock_executes_only_at_time_zero(self):
        # VHDL semantics: every process runs once at t=0, then suspends
        # until an event occurs; a constant clock yields no more events.
        design = self.build_counter_design()
        interp = Interpreter(design, dt=1e-3,
                             inputs={"clk": lambda t: 0.0})
        interp.run(0.05, probes=[])
        assert interp.env["n"] == 1.0

    def test_state_chain_executes_fully(self):
        design = design_with(lambda g: None)
        fsm = Fsm("p")
        s1 = fsm.add_state("s1")
        s1.operations.append(DataOp(target="a", expr=parse_expression("1.0")))
        s2 = fsm.add_state("s2")
        s2.operations.append(
            DataOp(target="b", expr=parse_expression("a + 1.0"))
        )
        fsm.add_transition(START_STATE, "s1", PortEvent(name="go"))
        fsm.add_transition("s1", "s2")
        design.add_fsm(fsm)
        design.external_signals.add("go")
        interp = Interpreter(design, dt=1e-3,
                             inputs={"go": lambda t: t > 0.002})
        interp.run(0.01, probes=[])
        assert interp.env["b"] == 2.0

    def test_probe_unknown_name(self):
        design = design_with(lambda g: None)
        interp = Interpreter(design, dt=1e-3)
        with pytest.raises(SimulationError):
            interp.probe("ghost")

    def test_invalid_dt(self):
        with pytest.raises(SimulationError):
            Interpreter(design_with(lambda g: None), dt=0.0)


class TestProperties:
    @given(
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_integrator_linearity(self, level, gain):
        """Integrating a constant gives gain * level * t."""

        def build(g):
            c = g.add(BlockKind.CONST, value=level)
            i = g.add(BlockKind.INTEGRATE, gain=gain, initial=0.0, name="i")
            g.connect(c, i)

        traces = simulate(design_with(build), 0.5, dt=1e-3, probes=["i"])
        assert traces.final("i") == pytest.approx(gain * level * 0.5, rel=1e-2,
                                                  abs=1e-2)

    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2,
                    max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_nary_add(self, values):
        def build(g):
            adder = g.add(BlockKind.ADD, n_inputs=len(values), name="sum")
            for port, v in enumerate(values):
                c = g.add(BlockKind.CONST, value=v)
                g.connect(c, adder, port=port)

        interp = Interpreter(design_with(build), dt=1e-5)
        interp.step()
        assert interp.probe("sum") == pytest.approx(sum(values))
