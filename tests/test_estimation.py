"""Tests for technology, op-amp sizing and performance estimation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.estimation import (
    ConstraintSet,
    Estimator,
    MOSIS_SCN20,
    OpAmpSpec,
    PerformanceEstimate,
    Technology,
    design_two_stage,
    min_opamp_area,
)
from repro.library import default_library
from repro.synth.netlist import Netlist


class TestTechnology:
    def test_capacitor_area_scales(self):
        tech = MOSIS_SCN20
        assert tech.capacitor_area(2e-12) == pytest.approx(
            2 * tech.capacitor_area(1e-12)
        )

    def test_resistor_area_scales(self):
        tech = MOSIS_SCN20
        assert tech.resistor_area(20e3) == pytest.approx(
            2 * tech.resistor_area(10e3)
        )

    def test_min_dimensions(self):
        assert MOSIS_SCN20.min_width > MOSIS_SCN20.min_length / 2


class TestOpAmpSizing:
    def test_default_spec_feasible(self):
        design = design_two_stage(OpAmpSpec())
        assert design.feasible, design.notes

    def test_meets_ugf(self):
        spec = OpAmpSpec(ugf_hz=2e6)
        design = design_two_stage(spec)
        assert design.ugf_hz >= spec.ugf_hz * 0.99

    def test_meets_slew(self):
        spec = OpAmpSpec(slew_rate=5e6)
        design = design_two_stage(spec)
        assert design.slew_rate >= spec.slew_rate * 0.99

    def test_meets_dc_gain(self):
        spec = OpAmpSpec(dc_gain=20000.0)
        design = design_two_stage(spec)
        assert design.dc_gain >= spec.dc_gain * 0.95

    def test_compensation_cap_tracks_load(self):
        small = design_two_stage(OpAmpSpec(cload=5e-12))
        large = design_two_stage(OpAmpSpec(cload=50e-12))
        assert large.cc > small.cc

    def test_area_grows_with_ugf(self):
        slow = design_two_stage(OpAmpSpec(ugf_hz=0.5e6))
        fast = design_two_stage(OpAmpSpec(ugf_hz=10e6))
        assert fast.area > slow.area

    def test_power_grows_with_slew(self):
        gentle = design_two_stage(OpAmpSpec(slew_rate=1e6))
        hard = design_two_stage(OpAmpSpec(slew_rate=20e6))
        assert hard.power > gentle.power

    def test_excessive_ugf_infeasible(self):
        design = design_two_stage(OpAmpSpec(ugf_hz=500e6))
        assert not design.feasible

    def test_excessive_swing_infeasible(self):
        design = design_two_stage(OpAmpSpec(swing=4.9))
        assert not design.feasible

    def test_ratios_at_least_minimum(self):
        design = design_two_stage(OpAmpSpec())
        tech = design.technology
        for ratio in design.ratios.values():
            assert ratio >= tech.min_width / tech.min_length * 0.999

    def test_min_area_below_any_design(self):
        design = design_two_stage(OpAmpSpec())
        assert min_opamp_area() <= design.area

    @given(
        st.floats(min_value=1e5, max_value=2e7),
        st.floats(min_value=1e5, max_value=2e7),
    )
    @settings(max_examples=30, deadline=None)
    def test_area_monotone_in_ugf(self, f1, f2):
        d1 = design_two_stage(OpAmpSpec(ugf_hz=f1))
        d2 = design_two_stage(OpAmpSpec(ugf_hz=f2))
        if f1 < f2:
            assert d1.area <= d2.area * 1.001
        else:
            assert d2.area <= d1.area * 1.001


class TestConstraints:
    def test_empty_estimate_passes_default(self):
        estimate = PerformanceEstimate(area=1e-6, power=1e-3, opamps=2)
        assert ConstraintSet().satisfied_by(estimate)

    def test_area_violation(self):
        constraints = ConstraintSet(max_area=1e-8)
        estimate = PerformanceEstimate(area=1e-6)
        violations = constraints.check(estimate)
        assert any("area" in v for v in violations)

    def test_power_violation(self):
        constraints = ConstraintSet(max_power=1e-6)
        estimate = PerformanceEstimate(power=1e-3)
        assert constraints.check(estimate)

    def test_opamp_count_violation(self):
        constraints = ConstraintSet(max_opamps=2)
        estimate = PerformanceEstimate(opamps=5)
        assert constraints.check(estimate)

    def test_infeasible_estimate_fails(self):
        estimate = PerformanceEstimate(feasible=False)
        assert ConstraintSet().check(estimate)

    def test_ugf_violation(self):
        constraints = ConstraintSet(min_ugf_hz=1e9)
        estimate = PerformanceEstimate(min_ugf_hz=1e6)
        assert constraints.check(estimate)


class TestEstimator:
    def make_netlist(self, *specs):
        netlist = Netlist(name="t", library=default_library())
        for index, (name, params) in enumerate(specs):
            netlist.add_instance(name, params=params, inputs=[0],
                                 output=index + 10)
        return netlist

    def test_single_amplifier(self):
        estimator = Estimator()
        netlist = self.make_netlist(("inverting_amplifier", {"gain": -2.0}))
        estimate = estimator.estimate(netlist)
        assert estimate.opamps == 1
        assert estimate.area > 0
        assert estimate.feasible

    def test_area_additive(self):
        estimator = Estimator()
        one = estimator.estimate(
            self.make_netlist(("inverting_amplifier", {"gain": -2.0}))
        )
        two = estimator.estimate(
            self.make_netlist(
                ("inverting_amplifier", {"gain": -2.0}),
                ("inverting_amplifier", {"gain": -2.0}),
            )
        )
        assert two.area == pytest.approx(2 * one.area, rel=1e-6)

    def test_high_gain_costs_more(self):
        estimator = Estimator()
        low = estimator.estimate(
            self.make_netlist(("inverting_amplifier", {"gain": -2.0}))
        )
        high = estimator.estimate(
            self.make_netlist(("inverting_amplifier", {"gain": -30.0}))
        )
        assert high.area > low.area

    def test_cascade_cheaper_per_stage_than_single_high_gain(self):
        """The cascade's stages need only sqrt(gain) x UGF each."""
        estimator = Estimator(
            constraints=ConstraintSet(signal_bandwidth_hz=100e3)
        )
        single = estimator.estimate_instance(
            self.make_netlist(("inverting_amplifier", {"gain": -100.0}))
            .instances[0]
        )
        cascade = estimator.estimate_instance(
            self.make_netlist(("inverting_cascade", {"gain": -100.0}))
            .instances[0]
        )
        # The single stage needs 100x bandwidth: infeasible in 2 um;
        # the cascade stays feasible.
        assert not single.feasible
        assert cascade.feasible

    def test_switch_has_area_but_no_opamps(self):
        estimator = Estimator()
        estimate = estimator.estimate(
            self.make_netlist(("analog_switch", {}))
        )
        assert estimate.opamps == 0
        assert estimate.area > 0

    def test_adc_includes_logic_area(self):
        estimator = Estimator()
        adc = estimator.estimate(self.make_netlist(("adc", {"bits": 8})))
        sh = estimator.estimate(self.make_netlist(("sample_hold", {})))
        assert adc.area > sh.area

    def test_integrator_gain_does_not_scale_ugf(self):
        estimator = Estimator()
        slow = estimator.estimate(
            self.make_netlist(("integrator", {"gain": 1.0}))
        )
        fast = estimator.estimate(
            self.make_netlist(("integrator", {"gain": 4000.0}))
        )
        assert fast.area == pytest.approx(slow.area)
        assert fast.feasible

    def test_min_area_positive(self):
        assert Estimator().min_area() > 0

    def test_estimate_caching_consistent(self):
        estimator = Estimator()
        netlist = self.make_netlist(("inverting_amplifier", {"gain": -2.0}))
        first = estimator.estimate(netlist)
        second = estimator.estimate(netlist)
        assert first.area == second.area
