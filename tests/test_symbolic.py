"""Unit tests for the symbolic algebra used by the DAE compiler."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.diagnostics import CompileError
from repro.vass.parser import parse_expression
from repro.compiler import symbolic
from repro.compiler.symbolic import (
    NonlinearError,
    canonical,
    collect_linear,
    count_occurrences,
    equal,
    isolate,
    simplify,
    solve_for,
    substitute,
)


def evaluate(expr, **env):
    """Numeric evaluation of an expression tree for checking identities."""
    from repro.vhif.interp import eval_discrete

    return float(eval_discrete(expr, env))


class TestSimplify:
    def test_constant_folding(self):
        expr = simplify(parse_expression("2.0 * 3.0 + 4.0"))
        assert symbolic.literal_value(expr) == 10.0

    def test_add_zero(self):
        expr = simplify(parse_expression("x + 0.0"))
        assert canonical(expr) == "x"

    def test_mul_one(self):
        expr = simplify(parse_expression("1.0 * x"))
        assert canonical(expr) == "x"

    def test_mul_zero(self):
        expr = simplify(parse_expression("x * 0.0"))
        assert symbolic.literal_value(expr) == 0.0

    def test_sub_self(self):
        expr = simplify(parse_expression("x - x"))
        assert symbolic.literal_value(expr) == 0.0

    def test_double_negation(self):
        expr = simplify(parse_expression("-(-x)"))
        assert canonical(expr) == "x"

    def test_log_exp_cancellation(self):
        expr = simplify(parse_expression("log(exp(x))"))
        assert canonical(expr) == "x"

    def test_exp_log_cancellation(self):
        expr = simplify(parse_expression("exp(log(x))"))
        assert canonical(expr) == "x"

    def test_div_by_one(self):
        expr = simplify(parse_expression("x / 1.0"))
        assert canonical(expr) == "x"

    def test_mul_minus_one(self):
        expr = simplify(parse_expression("x * (-1.0)"))
        assert canonical(expr) == "(- x)"


class TestCanonical:
    def test_commutative_normalization(self):
        assert canonical(parse_expression("a + b")) == canonical(
            parse_expression("b + a")
        )

    def test_noncommutative_preserved(self):
        assert canonical(parse_expression("a - b")) != canonical(
            parse_expression("b - a")
        )

    def test_equal_helper(self):
        assert equal(parse_expression("a * b"), parse_expression("b * a"))


class TestSubstitute:
    def test_simple(self):
        expr = substitute(parse_expression("x + y"), "x", parse_expression("2.0"))
        assert evaluate(expr, y=3.0) == 5.0

    def test_inside_function(self):
        expr = substitute(parse_expression("log(x)"), "x", parse_expression("y"))
        assert "y" in canonical(expr)


class TestCollectLinear:
    def test_simple_linear(self):
        a, b = collect_linear(parse_expression("2.0 * x + 3.0"), "x")
        assert symbolic.literal_value(simplify(a)) == 2.0
        assert symbolic.literal_value(simplify(b)) == 3.0

    def test_repeated_occurrences(self):
        a, b = collect_linear(parse_expression("x + 2.0 * x"), "x")
        assert evaluate(simplify(a)) == 3.0

    def test_symbolic_coefficient(self):
        a, _ = collect_linear(parse_expression("k * x"), "x")
        assert evaluate(a, k=5.0) == 5.0

    def test_division_by_free_expr(self):
        a, _ = collect_linear(parse_expression("x / k"), "x")
        assert evaluate(a, k=4.0) == 0.25

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonlinearError):
            collect_linear(parse_expression("x * x"), "x")

    def test_target_in_denominator_rejected(self):
        with pytest.raises(NonlinearError):
            collect_linear(parse_expression("1.0 / x"), "x")

    def test_target_under_function_rejected(self):
        with pytest.raises(NonlinearError):
            collect_linear(parse_expression("log(x)"), "x")


class TestIsolate:
    def test_add(self):
        solution = isolate(
            parse_expression("x + a"), parse_expression("b"), "x"
        )
        assert evaluate(solution, a=1.0, b=5.0) == 4.0

    def test_sub_right(self):
        solution = isolate(
            parse_expression("a - x"), parse_expression("b"), "x"
        )
        assert evaluate(solution, a=5.0, b=2.0) == 3.0

    def test_mul(self):
        solution = isolate(
            parse_expression("a * x"), parse_expression("b"), "x"
        )
        assert evaluate(solution, a=2.0, b=8.0) == 4.0

    def test_div_denominator(self):
        # a / x == b  =>  x = a / b
        solution = isolate(
            parse_expression("a / x"), parse_expression("b"), "x"
        )
        assert evaluate(solution, a=8.0, b=2.0) == 4.0

    def test_log(self):
        solution = isolate(
            parse_expression("log(x)"), parse_expression("y"), "x"
        )
        assert evaluate(solution, y=0.0) == pytest.approx(1.0)

    def test_exp(self):
        solution = isolate(
            parse_expression("exp(x)"), parse_expression("y"), "x"
        )
        assert evaluate(solution, y=math.e) == pytest.approx(1.0)

    def test_target_on_rhs(self):
        solution = isolate(
            parse_expression("y"), parse_expression("2.0 * x"), "x"
        )
        assert evaluate(solution, y=6.0) == 3.0

    def test_nested_path(self):
        # log(2x + 1) == y  =>  x = (exp(y) - 1)/2
        solution = isolate(
            parse_expression("log(2.0 * x + 1.0)"), parse_expression("y"), "x"
        )
        assert evaluate(solution, y=math.log(7.0)) == pytest.approx(3.0)

    def test_multiple_occurrences_rejected(self):
        with pytest.raises(CompileError):
            isolate(parse_expression("x + x"), parse_expression("y"), "x")


class TestSolveFor:
    def test_explicit_form(self):
        solution = solve_for(
            parse_expression("y"), parse_expression("a + b"), "y"
        )
        assert evaluate(solution, a=1.0, b=2.0) == 3.0

    def test_linear_rearrangement(self):
        # a == (k1*x + k2*x) + c  =>  x = (a - c)/(k1+k2)
        solution = solve_for(
            parse_expression("a"),
            parse_expression("k1 * x + k2 * x + c"),
            "x",
        )
        assert evaluate(solution, a=10.0, c=1.0, k1=2.0, k2=1.0) == pytest.approx(
            3.0
        )

    def test_nonlinear_single_occurrence(self):
        # y == exp(x) + c  =>  x = log(y - c)
        solution = solve_for(
            parse_expression("y"), parse_expression("exp(x) + c"), "x"
        )
        assert evaluate(solution, y=1.0 + math.e, c=1.0) == pytest.approx(1.0)

    def test_receiver_equation(self):
        # earph == (Aline*line + Alocal*local) * rvar, solved for rvar.
        solution = solve_for(
            parse_expression("earph"),
            parse_expression("(al * line + ao * local) * rvar"),
            "rvar",
        )
        value = evaluate(solution, earph=4.2, al=2.0, line=1.0, ao=1.0, local=0.1)
        assert value == pytest.approx(4.2 / 2.1)

    def test_unsolvable(self):
        with pytest.raises(CompileError):
            solve_for(parse_expression("x * x"), parse_expression("y"), "x")

    def test_uninvolved_name(self):
        with pytest.raises(CompileError):
            solve_for(parse_expression("a"), parse_expression("b"), "x")

    def test_vanishing_coefficient(self):
        with pytest.raises(CompileError):
            solve_for(parse_expression("x - x"), parse_expression("y"), "x")


@st.composite
def linear_coeffs(draw):
    a = draw(st.floats(min_value=-100, max_value=100).filter(lambda v: abs(v) > 1e-3))
    b = draw(st.floats(min_value=-100, max_value=100))
    c = draw(st.floats(min_value=-100, max_value=100))
    return a, b, c


class TestSolveForProperties:
    @given(linear_coeffs())
    def test_linear_solution_satisfies_equation(self, coeffs):
        """For a*x + b == c the solved x must satisfy the equation."""
        a, b, c = coeffs
        import repro.vass.ast_nodes as ast

        lhs = parse_expression("a * x + b")
        rhs = parse_expression("c")
        solution = solve_for(lhs, rhs, "x")
        x = evaluate(solution, a=a, b=b, c=c)
        assert a * x + b == pytest.approx(c, rel=1e-6, abs=1e-6)

    @given(
        st.floats(min_value=0.1, max_value=50),
        st.floats(min_value=-5, max_value=5),
    )
    def test_isolation_roundtrip_through_log(self, x_true, c):
        """log(x) + c == y  =>  solving for x recovers x_true."""
        lhs = parse_expression("log(x) + c")
        rhs = parse_expression("y")
        y = math.log(x_true) + c
        solution = solve_for(lhs, rhs, "x")
        assert evaluate(solution, c=c, y=y) == pytest.approx(x_true, rel=1e-9)
