"""Unit tests for the numerical guards and their solver integration."""

import warnings

import numpy as np
import pytest

from repro.robust.guards import (
    ILL_CONDITION_THRESHOLD,
    NumericalWarning,
    check_finite,
    condition_estimate,
    singular_suspects,
)
from repro.spice.mna import Circuit, MnaSolver, dc


class TestConditionEstimate:
    def test_identity_is_perfectly_conditioned(self):
        assert condition_estimate(np.eye(4)) == pytest.approx(1.0)

    def test_singular_is_infinite(self):
        matrix = np.array([[1.0, 2.0], [2.0, 4.0]])
        assert condition_estimate(matrix) > 1e15

    def test_empty_matrix_is_benign(self):
        assert condition_estimate(np.zeros((0, 0))) == 1.0

    def test_scale_spread_raises_estimate(self):
        matrix = np.diag([1.0, 1e-14])
        assert condition_estimate(matrix) > ILL_CONDITION_THRESHOLD


class TestSingularSuspects:
    def test_names_the_null_space_unknown(self):
        # Third unknown is fully undetermined.
        matrix = np.diag([1.0, 2.0, 0.0])
        suspects = singular_suspects(matrix, ["v(a)", "v(b)", "v(c)"])
        assert suspects == ["v(c)"]

    def test_nonsingular_names_nothing(self):
        assert singular_suspects(np.eye(3), ["a", "b", "c"]) == []

    def test_empty_matrix_names_nothing(self):
        assert singular_suspects(np.zeros((0, 0)), []) == []

    def test_caps_the_suspect_count(self):
        matrix = np.zeros((5, 5))
        labels = [f"v(n{i})" for i in range(5)]
        suspects = singular_suspects(matrix, labels, max_suspects=2)
        assert len(suspects) == 2

    def test_missing_labels_are_skipped(self):
        matrix = np.diag([1.0, 0.0])
        assert singular_suspects(matrix, ["v(a)"]) == []


class TestCheckFinite:
    def test_all_finite_returns_none(self):
        assert check_finite(np.array([1.0, -2.0, 0.0]), ["a", "b", "c"]) is None

    def test_names_nan_and_inf(self):
        x = np.array([1.0, np.nan, np.inf])
        assert check_finite(x, ["v(a)", "v(b)", "i(c)"]) == ["v(b)", "i(c)"]

    def test_caps_named_offenders(self):
        x = np.full(10, np.nan)
        named = check_finite(x, [f"v(n{i})" for i in range(10)], max_named=3)
        assert len(named) == 3

    def test_unlabeled_index_gets_placeholder(self):
        assert check_finite(np.array([np.nan]), []) == ["#0"]


class TestSolverIntegration:
    def test_unknown_labels_cover_nodes_and_branches(self):
        circuit = Circuit("labels")
        circuit.vsource("V1", "in", "0", dc(1.0))
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        solver = MnaSolver(circuit)
        assert "v(in)" in solver.unknown_labels
        assert "v(out)" in solver.unknown_labels
        assert "i(V1)" in solver.unknown_labels
        assert len(solver.unknown_labels) == solver._size

    def test_ill_conditioned_system_warns_once(self):
        # A huge conductance spread pushes the 1-norm condition
        # estimate past the threshold while staying solvable (gmin
        # keeps the matrix regular, so the spread must beat it too).
        circuit = Circuit("spread")
        circuit.vsource("V1", "in", "0", dc(1.0))
        circuit.resistor("R1", "in", "out", 1e-12)
        circuit.resistor("R2", "out", "0", 1e9)
        solver = MnaSolver(circuit)
        with pytest.warns(NumericalWarning, match="ill-conditioned"):
            solver.dc_operating_point()

    def test_well_conditioned_system_is_silent(self):
        circuit = Circuit("tame")
        circuit.vsource("V1", "in", "0", dc(1.0))
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", NumericalWarning)
            MnaSolver(circuit).dc_operating_point()
