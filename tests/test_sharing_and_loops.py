"""Tests for compile-time sharing ("reduced" hardware) and multi-variable
while loops."""

import pytest

from repro.compiler import compile_design
from repro.flow import synthesize
from repro.vhif import BlockKind, Interpreter


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestReducedSharing:
    """The missile solver's "(reduced)" log amplifier: identical
    sub-expressions across equations share one block (CSE), and the
    mapper's sharing branch keeps identical cones on one component."""

    TWO_DRAGS = wrap(
        "QUANTITY v : IN real; QUANTITY d1 : OUT real; "
        "QUANTITY d2 : OUT real",
        decls="CONSTANT v0 : real := 0.1;",
        body="""
  d1 == 0.05 * exp(1.8 * log(v + v0));
  d2 == 0.20 * exp(1.8 * log(v + v0));
""",
    )

    def test_log_path_shared_at_compile_time(self):
        design = compile_design(self.TWO_DRAGS)
        sfg = design.main_sfg
        # One LOG, one EXP — the whole v^1.8 path is shared; only the
        # output scalings differ.
        assert len(sfg.blocks_of_kind(BlockKind.LOG)) == 1
        assert len(sfg.blocks_of_kind(BlockKind.EXP)) == 1

    def test_synthesis_keeps_single_log_amplifier(self):
        result = synthesize(self.TWO_DRAGS)
        cats = dict(result.netlist.category_counts())
        assert cats["log.amplif."] == 1
        assert cats["anti-log.amplif."] == 1

    def test_behavior_correct_for_both_outputs(self):
        design = compile_design(self.TWO_DRAGS)
        interp = Interpreter(design, dt=1e-6, inputs={"v": lambda t: 2.0})
        interp.step()
        expected = (2.0 + 0.1) ** 1.8
        assert float(interp.probe("d1")) == pytest.approx(0.05 * expected,
                                                          rel=1e-9)
        assert float(interp.probe("d2")) == pytest.approx(0.20 * expected,
                                                          rel=1e-9)


class TestMultiVariableWhile:
    PAIR_LOOP = wrap(
        "QUANTITY a : IN real; QUANTITY y : OUT real",
        body="""
  PROCEDURAL IS
    VARIABLE lo : real;
    VARIABLE hi : real;
  BEGIN
    lo := 0.0;
    hi := a;
    WHILE (hi - lo > 0.01) LOOP
      lo := lo + (hi - lo) * 0.25;
      hi := hi - (hi - lo) * 0.25;
    END LOOP;
    y := lo;
  END PROCEDURAL;
""",
    )

    def test_two_carried_variables_get_two_loops(self):
        design = compile_design(self.PAIR_LOOP)
        sfg = design.main_sfg
        sh1 = [b for b in sfg.blocks if b.name.startswith("sh1_")]
        sh2 = [b for b in sfg.blocks if b.name.startswith("sh2_")]
        # Both carried variables iterate through their own S/H1 feedback;
        # only `lo` is read after the loop, so dead-code elimination
        # keeps a single output latch S/H2.
        assert {b.name for b in sh1} == {"sh1_lo", "sh1_hi"}
        assert {b.name for b in sh2} == {"sh2_lo"}

    def test_interval_shrinks_to_convergence(self):
        design = compile_design(self.PAIR_LOOP)
        interp = Interpreter(design, dt=1e-4, inputs={"a": lambda t: 8.0})
        traces = interp.run(0.02, probes=["y"])
        final = traces.final("y")
        # lo and hi contract toward each other inside (0, 8).
        assert 0.0 < final < 8.0
        # After convergence |hi - lo| <= 0.01, and both approach the
        # midpoint region; lo must have moved well off zero.
        assert final > 2.0


class TestNestedConditionals:
    def test_if_inside_if_in_procedural(self):
        source = wrap(
            "QUANTITY u : IN real; QUANTITY y : OUT real",
            body="""
  PROCEDURAL IS
    VARIABLE t : real;
  BEGIN
    t := u;
    IF (u > 0.0) THEN
      IF (u > 1.0) THEN
        t := 3.0 * u;
      ELSE
        t := 2.0 * u;
      END IF;
    ELSE
      t := 0.0 - u;
    END IF;
    y := t;
  END PROCEDURAL;
""",
        )
        design = compile_design(source)
        cases = [(2.0, 6.0), (0.5, 1.0), (-1.5, 1.5)]
        for value, expected in cases:
            interp = Interpreter(design, dt=1e-6,
                                 inputs={"u": lambda t, v=value: v})
            for _ in range(3):  # comparator controls settle
                interp.step()
            assert float(interp.probe("y")) == pytest.approx(expected), value
