"""Tests for map_design (multi-SFG) and the greedy fallback path."""

import pytest

from repro.estimation import ConstraintSet, Estimator
from repro.synth import map_design, map_sfg_greedy
from repro.vhif import BlockKind, SignalFlowGraph, VhifDesign


def small_sfg(name, gain):
    g = SignalFlowGraph(name)
    x = g.add(BlockKind.INPUT, name=f"{name}_in")
    s = g.add(BlockKind.SCALE, gain=gain)
    out = g.add(BlockKind.OUTPUT, name=f"{name}_out")
    g.connect(x, s)
    g.connect(s, out)
    return g


class TestMapDesign:
    def test_maps_every_sfg(self):
        design = VhifDesign("multi")
        design.add_sfg(small_sfg("alpha", 2.0))
        design.add_sfg(small_sfg("beta", -3.0))
        results = map_design(design)
        assert set(results) == {"alpha", "beta"}
        assert results["alpha"].netlist.total_opamps() == 1
        assert results["beta"].netlist.total_opamps() == 1

    def test_constraints_shared_across_sfgs(self):
        design = VhifDesign("multi")
        design.add_sfg(small_sfg("alpha", 2.0))
        results = map_design(
            design, constraints=ConstraintSet(max_opamps=10)
        )
        assert results["alpha"].estimate.feasible


class TestGreedyFallback:
    def test_infeasible_constraints_fall_back_to_unconstrained(self):
        """When the first greedy path violates constraints, the greedy
        wrapper retries unconstrained so the benchmark can still report
        an area figure."""
        g = small_sfg("tight", -40.0)
        estimator = Estimator(
            constraints=ConstraintSet(signal_bandwidth_hz=5.0e6)
        )
        result = map_sfg_greedy(g, estimator=estimator)
        assert result.netlist.total_opamps() >= 1

    def test_greedy_on_trivial_graph(self):
        g = small_sfg("trivial", 1.5)
        result = map_sfg_greedy(g)
        assert result.statistics.nodes_visited <= 3
        assert result.netlist.summary().startswith("1 ")
