"""Tests for the run-lifecycle layer: cooperative cancellation,
deadline propagation, executor retries, serve cancel/drain/auth,
crash-safe batch resume and the reconnecting watch client."""

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.diagnostics import VaseError
from repro.flow import FlowOptions, synthesize
from repro.instrument import (
    RunLedger,
    TelemetryBus,
    disable_telemetry,
    enable_telemetry,
)
from repro.instrument.events import TelemetryEvent
from repro.pipeline import ProcessExecutor
from repro.robust import (
    BatchJournal,
    CancellationToken,
    CancelledError,
    DeadlineExceeded,
    RetryPolicy,
    RunContext,
    TransientError,
    WorkerCrashError,
    active_context,
    checkpoint,
    inject_faults,
    is_transient,
    run_batch,
    run_context,
    schedule_longest_first,
)
from repro.robust.batch import BatchEntry, run_source
from repro.robust.lifecycle import task_fingerprint
from repro.serve import (
    JobConflictError,
    JobManager,
    JobOptionsError,
    QueueFullError,
    build_job_options,
    create_server,
    parse_sse,
    watch,
)
from repro.serve.sse import END_EVENT, format_event, format_message

AMP = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""

AMP2 = AMP.replace("amp", "amp2").replace("-5.0", "-3.0")


# -- process-executor task bodies (module-level: they must pickle) -----------


def _double(x):
    return x * 2


def _loop_until_cancelled():
    from repro.robust.lifecycle import checkpoint as cp

    for _ in range(4000):
        cp("test.loop")
        time.sleep(0.005)
    return "never cancelled"


# -----------------------------------------------------------------------------


class TestCancellationToken:
    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.cancel("first") is True
        assert token.cancel("second") is False
        assert token.cancelled
        assert token.reason == "first"

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled("anywhere")  # no-op while unset
        token.cancel("user hit ^C")
        with pytest.raises(CancelledError, match="user hit"):
            token.raise_if_cancelled("stage:map")


class TestRunContext:
    def test_deadline_expiry(self):
        context = RunContext.create(deadline_s=0.0)
        assert context.expired()
        assert context.remaining_s() == 0.0
        with pytest.raises(DeadlineExceeded, match="stage:compile"):
            context.checkpoint("stage:compile")

    def test_unbounded_context_never_expires(self):
        context = RunContext.create()
        assert context.remaining_s() is None
        assert not context.expired()
        context.checkpoint("anywhere")

    def test_child_shares_token_and_takes_min_deadline(self):
        parent = RunContext.create(deadline_s=100.0)
        child = parent.child(deadline_s=0.001)
        assert child.token is parent.token
        assert child.deadline < parent.deadline
        # A child may only tighten, never extend.
        wide = parent.child(deadline_s=10_000.0)
        assert wide.deadline == parent.deadline

    def test_thread_local_install(self):
        assert active_context() is None
        checkpoint("outside")  # cheap no-op without a context
        context = RunContext.create()
        with run_context(context):
            assert active_context() is context
            context.token.cancel("stop")
            with pytest.raises(CancelledError):
                checkpoint("inside")
        assert active_context() is None


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(DeadlineExceeded, CancelledError)
        assert issubclass(CancelledError, VaseError)
        assert issubclass(WorkerCrashError, TransientError)
        assert issubclass(TransientError, VaseError)

    def test_is_transient(self):
        assert is_transient(TransientError("x"))
        assert is_transient(WorkerCrashError("x"))
        assert not is_transient(CancelledError("x"))
        assert not is_transient(ValueError("x"))


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(backoff_s=0.1)
        assert policy.delay_s("k", 1) == policy.delay_s("k", 1)
        # Jitter is keyed, so different tasks spread out.
        delays = {policy.delay_s(f"task-{i}", 1) for i in range(16)}
        assert len(delays) > 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.5,
        )
        assert policy.delay_s("k", 2) > policy.delay_s("k", 1) / 2
        assert policy.delay_s("k", 50) == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_s": -0.1},
        {"breaker_threshold": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_task_fingerprint_stability(self):
        assert task_fingerprint(_double, (1,)) == \
            task_fingerprint(_double, (1,))
        assert task_fingerprint(_double, (1,)) != \
            task_fingerprint(_double, (2,))


class TestFlowBudget:
    def test_exhausted_budget_raises_deadline_exceeded(self):
        with pytest.raises(DeadlineExceeded, match="deadline exceeded"):
            synthesize(AMP, options=FlowOptions(deadline_s=1e-9))

    def test_run_source_maps_budget_to_cancelled_entry(self):
        entry, result, error = run_source(
            AMP, "amp.vhd", FlowOptions(deadline_s=1e-9)
        )
        assert entry.status == "cancelled"
        assert result is None
        assert isinstance(error, DeadlineExceeded)

    def test_mapper_cancel_fault_cancels_the_run(self):
        # The fault needs an installed run context to cancel; a generous
        # budget provides one without ever expiring itself.
        with inject_faults("mapper.cancel"):
            entry, _result, error = run_source(
                AMP, "amp.vhd", FlowOptions(deadline_s=600.0)
            )
        assert entry.status == "cancelled"
        assert "mapper.cancel" in entry.error
        assert isinstance(error, CancelledError)
        assert not isinstance(error, DeadlineExceeded)

    def test_cli_budget_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "amp.vhd"
        path.write_text(AMP)
        assert main(["synth", str(path)]) == 0
        assert main(["synth", str(path), "--budget", "1e-9"]) == 2


class TestBudgetJobOption:
    def test_budget_s_sets_the_flow_deadline_only(self):
        base = FlowOptions()
        options = build_job_options(base, {"budget_s": 2.5})
        assert options.deadline_s == 2.5
        assert options.mapper.deadline_s == base.mapper.deadline_s

    def test_deadline_s_still_maps_to_the_mapper(self):
        options = build_job_options(
            FlowOptions(), {"deadline_s": 1.5, "budget_s": 9.0}
        )
        assert options.mapper.deadline_s == 1.5
        assert options.deadline_s == 9.0

    @pytest.mark.parametrize("bad", [0, -1, "fast", True, None])
    def test_bad_budget_rejected(self, bad):
        with pytest.raises(JobOptionsError):
            build_job_options(FlowOptions(), {"budget_s": bad})


class TestProcessRetries:
    def _executor(self, **kwargs):
        policy = RetryPolicy(backoff_s=0.01, **kwargs)
        return ProcessExecutor(1, retry=policy)

    def test_worker_crash_is_retried_then_succeeds(self):
        with self._executor(max_retries=2) as executor:
            # The fault crashes the worker on attempt 0 only.
            with inject_faults("executor.worker_crash"):
                future = executor.submit(_double, 21)
            assert future.result(timeout=60) == 42

    def test_transient_error_is_retried_in_band(self):
        with self._executor(max_retries=2) as executor:
            with inject_faults("executor.transient"):
                future = executor.submit(_double, 4)
            assert future.result(timeout=60) == 8

    def test_retry_exhaustion_fails_with_worker_crash_error(self):
        with self._executor(
            max_retries=1, breaker_threshold=50
        ) as executor:
            with inject_faults("executor.worker_crash_always"):
                future = executor.submit(_double, 1)
            with pytest.raises(WorkerCrashError, match="crashed"):
                future.result(timeout=60)

    def test_circuit_breaker_trips_and_fails_fast(self):
        with self._executor(
            max_retries=10, breaker_threshold=2
        ) as executor:
            with inject_faults("executor.worker_crash_always"):
                first = executor.submit(_double, 7)
                with pytest.raises(VaseError):
                    first.result(timeout=60)
                # Same task again: the breaker refuses to dispatch it.
                second = executor.submit(_double, 7)
            with pytest.raises(VaseError, match="circuit breaker"):
                second.result(timeout=60)

    def test_cancel_reaches_a_running_task(self):
        with ProcessExecutor(1) as executor:
            future = executor.submit(_loop_until_cancelled)
            deadline = time.monotonic() + 30
            while not future.running() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert future.cancel() is True  # delivered, not yet stopped
            with pytest.raises(CancelledError):
                future.result(timeout=60)


# -- serve: cancellation over HTTP, drain, bearer auth -----------------------


def _fake_run_source(text, label, options, library=None, entity_name=None):
    """A controllable job body: blocks at a cooperative checkpoint
    while the source contains ``block``, finishes quickly otherwise."""
    entry = BatchEntry(file=label, status="failed")
    start = time.perf_counter()
    try:
        if "block" in text:
            for _ in range(4000):
                checkpoint("test.block")
                time.sleep(0.005)
        entry.status = "ok"
        entry.design = "fake"
    except CancelledError as err:
        entry.status = "cancelled"
        entry.error = str(err)
    entry.elapsed_s = time.perf_counter() - start
    return entry, None, None


@pytest.fixture
def served_slow(tmp_path, monkeypatch):
    """A live single-worker server whose jobs run a controllable body,
    so cancel-while-running is deterministic instead of a race."""
    import repro.robust.batch as batch_mod

    monkeypatch.setattr(batch_mod, "run_source", _fake_run_source)
    previous = disable_telemetry()
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    manager = JobManager(FlowOptions(), ledger=ledger, workers=1)
    bus = TelemetryBus()
    bus.subscribe(manager.route)
    enable_telemetry(bus)
    server = create_server("127.0.0.1", 0, manager, heartbeat_s=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield {
            "base": f"http://{host}:{port}",
            "manager": manager,
            "ledger": ledger,
        }
    finally:
        for job in manager.jobs():
            job.token.cancel("test teardown")
        server.shutdown()
        server.server_close()
        manager.stop(wait=True)
        thread.join(timeout=5)
        disable_telemetry()
        if previous is not None:
            enable_telemetry(previous)


def _post(base, path, payload=None, token=None):
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload or {}).encode("utf-8"),
        headers=headers,
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get_json(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


def _submit(base, source, **extra):
    status, body = _post(base, "/jobs", {"source": source, **extra})
    assert status == 202
    return body["id"]


def _wait_status(base, job_id, statuses, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = _get_json(base, f"/jobs/{job_id}")
        if state["status"] in statuses:
            return state
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {statuses}")


def _stream_end_status(base, job_id, timeout=30.0):
    """The status carried by the job stream's terminal ``end`` frame."""
    request = urllib.request.Request(
        f"{base}/jobs/{job_id}/events?since=-1",
        headers={"Accept": "text/event-stream"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        lines = (raw.decode("utf-8") for raw in response)
        for message in parse_sse(lines):
            if message.event == END_EVENT:
                return json.loads(message.data).get("status")
    raise AssertionError("stream ended without an end frame")


class TestServeCancel:
    def test_cancel_running_job(self, served_slow):
        base = served_slow["base"]
        job_id = _submit(base, "block until cancelled")
        _wait_status(base, job_id, ("running",))
        status, body = _post(base, f"/jobs/{job_id}/cancel")
        assert status == 202
        assert body["cancel_requested"] is True
        state = _wait_status(base, job_id, ("cancelled",))
        assert state["cancel_requested"] is True
        # The SSE stream ends with a terminal cancelled frame, and the
        # ledger records the matching outcome under the job's run id.
        assert _stream_end_status(base, job_id) == "cancelled"
        records = [
            r for r in served_slow["ledger"].records()
            if r.run_id == job_id
        ]
        assert [r.outcome for r in records] == ["cancelled"]

    def test_cancel_queued_job_finalizes_immediately(self, served_slow):
        base = served_slow["base"]
        blocker = _submit(base, "block the single worker")
        _wait_status(base, blocker, ("running",))
        queued = _submit(base, "waits in the queue")
        status, _body = _post(base, f"/jobs/{queued}/cancel")
        assert status == 202
        state = _get_json(base, f"/jobs/{queued}")
        assert state["status"] == "cancelled"
        assert _stream_end_status(base, queued) == "cancelled"
        records = [
            r for r in served_slow["ledger"].records()
            if r.run_id == queued
        ]
        assert [r.outcome for r in records] == ["cancelled"]
        # Unblock the worker so teardown is quick.
        _post(base, f"/jobs/{blocker}/cancel")
        _wait_status(base, blocker, ("cancelled",))

    def test_cancel_terminal_job_conflicts(self, served_slow):
        base = served_slow["base"]
        job_id = _submit(base, "finishes fast")
        _wait_status(base, job_id, ("ok",))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, f"/jobs/{job_id}/cancel")
        assert excinfo.value.code == 409

    def test_cancel_unknown_job_404(self, served_slow):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served_slow["base"], "/jobs/nope/cancel")
        assert excinfo.value.code == 404


class TestDrain:
    def test_drain_finishes_quick_jobs_and_cancels_the_queue(
        self, monkeypatch
    ):
        import repro.robust.batch as batch_mod

        monkeypatch.setattr(batch_mod, "run_source", _fake_run_source)
        manager = JobManager(FlowOptions(), workers=1)
        try:
            running = manager.submit("short job")
            deadline = time.monotonic() + 10
            while running.status == "queued" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            counts = manager.drain(timeout_s=10.0)
            assert counts["finished"] >= 1
            assert manager.get(running.id).status == "ok"
            with pytest.raises(QueueFullError):
                manager.submit("too late")
        finally:
            manager.stop(wait=True)

    def test_drain_timeout_cancels_stragglers(self, monkeypatch):
        import repro.robust.batch as batch_mod

        monkeypatch.setattr(batch_mod, "run_source", _fake_run_source)
        manager = JobManager(FlowOptions(), workers=1)
        try:
            stuck = manager.submit("block forever")
            deadline = time.monotonic() + 10
            while stuck.status == "queued" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            queued = manager.submit("never starts: block")
            counts = manager.drain(timeout_s=0.2)
            assert counts["cancelled"] == 2
            assert manager.get(stuck.id).status == "cancelled"
            assert manager.get(queued.id).status == "cancelled"
        finally:
            manager.stop(wait=True)

    def test_manager_cancel_conflicts_on_terminal(self, monkeypatch):
        import repro.robust.batch as batch_mod

        monkeypatch.setattr(batch_mod, "run_source", _fake_run_source)
        manager = JobManager(FlowOptions(), workers=1)
        try:
            job = manager.submit("quick")
            deadline = time.monotonic() + 10
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(JobConflictError):
                manager.cancel(job.id)
        finally:
            manager.stop(wait=True)


@pytest.fixture
def served_with_token(tmp_path):
    previous = disable_telemetry()
    manager = JobManager(FlowOptions(), workers=1)
    server = create_server(
        "127.0.0.1", 0, manager, heartbeat_s=0.2, token="sekrit",
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        manager.stop(wait=True)
        thread.join(timeout=5)
        disable_telemetry()
        if previous is not None:
            enable_telemetry(previous)


class TestBearerAuth:
    def test_get_without_token_is_401(self, served_with_token):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served_with_token + "/")
        assert excinfo.value.code == 401
        assert excinfo.value.headers.get("WWW-Authenticate") == "Bearer"

    def test_wrong_token_is_401(self, served_with_token):
        request = urllib.request.Request(
            served_with_token + "/jobs",
            headers={"Authorization": "Bearer wrong"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 401

    def test_post_without_token_is_401(self, served_with_token):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served_with_token, "/jobs", {"source": AMP})
        assert excinfo.value.code == 401

    def test_correct_token_is_accepted(self, served_with_token):
        request = urllib.request.Request(
            served_with_token + "/",
            headers={"Authorization": "Bearer sekrit"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200

    def test_healthz_is_exempt(self, served_with_token):
        with urllib.request.urlopen(
            served_with_token + "/healthz"
        ) as response:
            assert response.status == 200

    def test_cli_refuses_non_loopback_bind_without_token(self, capsys):
        from repro.cli import main

        assert main(["serve", "--host", "0.0.0.0", "--port", "0"]) == 1
        assert "--token" in capsys.readouterr().err


# -- crash-safe batch resume --------------------------------------------------


class TestBatchJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record("k1", {"file": "a.vhd", "status": "ok"})
            journal.record("k2", {"file": "b.vhd", "status": "failed"})
            journal.record("k1", {"file": "a.vhd", "status": "degraded"})
        loaded = BatchJournal(path).load()
        assert loaded["k2"]["status"] == "failed"
        # Last write wins, so a re-run's fresher entry replaces the old.
        assert loaded["k1"]["status"] == "degraded"

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with BatchJournal(path) as journal:
            journal.record("k1", {"file": "a.vhd", "status": "ok"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "entry": {"file"')  # torn write
        loaded = BatchJournal(path).load()
        assert set(loaded) == {"k1"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert BatchJournal(tmp_path / "absent.jsonl").load() == {}

    def test_entry_key_tracks_content_and_options(self):
        key = BatchJournal.entry_key("source text", "opts-a")
        assert key == BatchJournal.entry_key("source text", "opts-a")
        assert key != BatchJournal.entry_key("source text 2", "opts-a")
        assert key != BatchJournal.entry_key("source text", "opts-b")


@pytest.fixture
def corpus(tmp_path):
    a = tmp_path / "amp1.vhd"
    b = tmp_path / "amp2.vhd"
    a.write_text(AMP)
    b.write_text(AMP2)
    return [a, b]


class TestBatchResume:
    def _count_runs(self, monkeypatch):
        import repro.robust.batch as batch_mod

        calls = []
        real = batch_mod._run_one

        def counting(path, options, library):
            calls.append(str(path))
            return real(path, options, library)

        monkeypatch.setattr(batch_mod, "_run_one", counting)
        return calls

    def test_resume_matches_uninterrupted_run(
        self, corpus, tmp_path, monkeypatch
    ):
        options = FlowOptions(recovery=True)
        baseline = run_batch(corpus, options=options)
        expected = baseline.to_json(timing=False)

        # An "interrupted" run that only got through the first file,
        # then a restart over the full corpus with the same journal.
        journal_path = tmp_path / "batch.journal"
        with BatchJournal(journal_path) as journal:
            run_batch(corpus[:1], options=options, journal=journal)
        calls = self._count_runs(monkeypatch)
        with BatchJournal(journal_path) as journal:
            resumed = run_batch(corpus, options=options, journal=journal)
        assert calls == [str(corpus[1])]  # the finished file was skipped
        assert resumed.to_json(timing=False) == expected

    def test_second_run_is_fully_resumed(
        self, corpus, tmp_path, monkeypatch
    ):
        options = FlowOptions(recovery=True)
        journal_path = tmp_path / "batch.journal"
        with BatchJournal(journal_path) as journal:
            first = run_batch(corpus, options=options, journal=journal)
        calls = self._count_runs(monkeypatch)
        with BatchJournal(journal_path) as journal:
            second = run_batch(corpus, options=options, journal=journal)
        assert calls == []
        assert second.to_json(timing=False) == \
            first.to_json(timing=False)

    def test_edited_file_runs_again(self, corpus, tmp_path, monkeypatch):
        options = FlowOptions(recovery=True)
        journal_path = tmp_path / "batch.journal"
        with BatchJournal(journal_path) as journal:
            run_batch(corpus, options=options, journal=journal)
        corpus[1].write_text(AMP2.replace("-3.0", "-4.0"))
        calls = self._count_runs(monkeypatch)
        with BatchJournal(journal_path) as journal:
            run_batch(corpus, options=options, journal=journal)
        assert calls == [str(corpus[1])]

    def test_cancelled_entry_surfaces_in_the_report(self, corpus):
        # mapper.cancel needs an installed run context; a generous
        # whole-flow budget provides one without expiring.
        with inject_faults("mapper.cancel"):
            report = run_batch(
                corpus[:1], options=FlowOptions(deadline_s=600.0)
            )
        assert report.cancelled == 1
        assert report.entries[0].status == "cancelled"
        assert report.exit_code() == 1
        assert "1 cancelled" in report.describe(timing=False)
        assert report.as_dict(timing=False)["cancelled"] == 1

    def test_cli_batch_resume_round_trip(self, corpus, tmp_path):
        from repro.cli import main

        journal = tmp_path / "cli.journal"
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        root = str(corpus[0].parent)
        assert main([
            "batch", root, "--no-timing", "--json", str(out_a),
            "--resume", str(journal),
        ]) == 0
        assert journal.exists()
        assert main([
            "batch", root, "--no-timing", "--json", str(out_b),
            "--resume", str(journal),
        ]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()


class TestSkewScheduling:
    def test_size_fallback_orders_longest_first(self, tmp_path):
        small = tmp_path / "small.vhd"
        big = tmp_path / "big.vhd"
        medium = tmp_path / "medium.vhd"
        small.write_text("x" * 10)
        big.write_text("x" * 10_000)
        medium.write_text("x" * 1_000)
        order = schedule_longest_first([small, big, medium])
        assert order == [1, 2, 0]

    def test_ties_keep_input_order(self, tmp_path):
        files = []
        for name in ("a.vhd", "b.vhd", "c.vhd"):
            path = tmp_path / name
            path.write_text("x" * 100)
            files.append(path)
        assert schedule_longest_first(files) == [0, 1, 2]

    def test_ledger_durations_beat_file_size(self, tmp_path):
        quick = tmp_path / "quick-but-big.vhd"
        slow = tmp_path / "slow-but-small.vhd"
        quick.write_text("x" * 10_000)
        slow.write_text("x" * 10)
        ledger = SimpleNamespace(records=lambda: [
            SimpleNamespace(
                kind="synth", source=str(quick),
                durations={"total_s": 0.1},
            ),
            SimpleNamespace(
                kind="synth", source=str(slow),
                durations={"total_s": 30.0},
            ),
            SimpleNamespace(kind="batch", source="ignored", durations={}),
        ])
        assert schedule_longest_first([quick, slow], ledger) == [1, 0]


# -- the reconnecting watch client -------------------------------------------


def _frames(seqs, end_status=None):
    """Raw SSE bytes for a sequence of events (and optionally the
    terminal end frame)."""
    chunks = [
        format_event(TelemetryEvent(
            run_id="job-1", seq=seq, ts=0.0, category="lifecycle",
            payload={"kind": "file", "phase": "started", "file": "x"},
        ))
        for seq in seqs
    ]
    if end_status is not None:
        chunks.append(format_message(
            json.dumps({"status": end_status}), event=END_EVENT,
        ))
    return b"".join(chunks)


class _FakeResponse:
    def __init__(self, payload: bytes):
        self._lines = payload.splitlines(keepends=True)

    def __iter__(self):
        return iter(self._lines)

    def close(self):
        pass


class TestWatchReconnect:
    def test_reconnect_resumes_from_last_seq(self):
        calls = []

        def opener(url, since, token):
            calls.append((since, token))
            if len(calls) == 1:
                # First connection drops before the end frame.
                return _FakeResponse(_frames([0, 1, 2]))
            return _FakeResponse(_frames([3, 4], end_status="ok"))

        import io

        out = io.StringIO()
        code = watch(
            "http://x/jobs/job-1", stream=out, token="t",
            retry_backoff_s=0.0, opener=opener,
        )
        assert code == 0
        assert [since for since, _ in calls] == [-1, 2]
        assert all(token == "t" for _, token in calls)
        assert "reconnecting from seq 2" in out.getvalue()
        assert "job finished: ok" in out.getvalue()

    def test_gives_up_after_max_retries(self):
        calls = []

        def opener(url, since, token):
            calls.append(since)
            raise OSError("connection refused")

        import io

        out = io.StringIO()
        code = watch(
            "http://x/jobs/job-1", stream=out,
            max_retries=3, retry_backoff_s=0.0, opener=opener,
        )
        assert code == 1
        assert len(calls) == 4  # initial attempt + 3 retries
        assert "giving up" in out.getvalue()

    def test_events_reset_the_retry_budget(self):
        calls = []

        def opener(url, since, token):
            calls.append(since)
            if len(calls) <= 3:
                # Each connection delivers one fresh event then drops:
                # progress, so the budget never runs out.
                return _FakeResponse(_frames([len(calls) - 1]))
            return _FakeResponse(_frames([3], end_status="degraded"))

        import io

        out = io.StringIO()
        code = watch(
            "http://x/jobs/job-1", stream=out,
            max_retries=1, retry_backoff_s=0.0, opener=opener,
        )
        assert code == 0
        assert calls == [-1, 0, 1, 2]

    def test_cancelled_outcome_exits_one(self):
        def opener(url, since, token):
            return _FakeResponse(_frames([0], end_status="cancelled"))

        import io

        out = io.StringIO()
        code = watch("http://x/jobs/job-1", stream=out, opener=opener)
        assert code == 1
        assert "job finished: cancelled" in out.getvalue()
