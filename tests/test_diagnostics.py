"""Tests for the diagnostics infrastructure."""

import pytest

from repro.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    LexerError,
    NO_LOCATION,
    ParseError,
    SemanticError,
    Severity,
    SourceLocation,
    VaseError,
)


class TestSourceLocation:
    def test_str_with_position(self):
        loc = SourceLocation(3, 7, "f.vams")
        assert str(loc) == "f.vams:3:7"

    def test_str_without_position(self):
        assert str(SourceLocation(0, 0, "f.vams")) == "f.vams"

    def test_frozen(self):
        loc = SourceLocation(1, 1)
        with pytest.raises(AttributeError):
            loc.line = 2


class TestErrors:
    def test_error_message_includes_location(self):
        err = ParseError("bad token", SourceLocation(2, 5, "x.vams"))
        assert "x.vams:2:5" in str(err)
        assert err.bare_message == "bad token"

    def test_hierarchy(self):
        assert issubclass(LexerError, VaseError)
        assert issubclass(ParseError, VaseError)
        assert issubclass(SemanticError, VaseError)


class TestDiagnosticSink:
    def test_collects_by_severity(self):
        sink = DiagnosticSink()
        sink.note("fyi")
        sink.warn("careful")
        sink.error("broken")
        assert len(sink) == 3
        assert len(sink.errors) == 1
        assert len(sink.warnings) == 1
        assert sink.has_errors()

    def test_check_raises_on_errors(self):
        sink = DiagnosticSink()
        sink.error("first", SourceLocation(1, 1))
        sink.error("second", SourceLocation(2, 1))
        with pytest.raises(SemanticError, match="first"):
            sink.check("stage")

    def test_check_silent_without_errors(self):
        sink = DiagnosticSink()
        sink.warn("only a warning")
        sink.check("stage")  # no exception

    def test_check_truncates_long_lists(self):
        sink = DiagnosticSink()
        for i in range(15):
            sink.error(f"e{i}")
        with pytest.raises(SemanticError, match=r"\+5 more"):
            sink.check("stage")

    def test_check_no_overflow_marker_at_exactly_ten(self):
        sink = DiagnosticSink()
        for i in range(10):
            sink.error(f"e{i}")
        with pytest.raises(SemanticError) as exc_info:
            sink.check("stage")
        assert "more" not in str(exc_info.value)
        assert "e9" in str(exc_info.value)

    def test_check_overflow_counts_only_errors(self):
        sink = DiagnosticSink()
        for i in range(12):
            sink.error(f"e{i}")
        for i in range(20):
            sink.warn(f"w{i}")  # warnings never overflow the summary
        with pytest.raises(SemanticError, match=r"\+2 more"):
            sink.check("stage")

    def test_check_with_location_carrying_error_class(self):
        sink = DiagnosticSink()
        sink.error("bad parse", SourceLocation(3, 7, "f.vhd"))
        with pytest.raises(ParseError) as exc_info:
            sink.check("parsing", ParseError)
        assert exc_info.value.location == SourceLocation(3, 7, "f.vhd")
        assert "parsing failed" in str(exc_info.value)

    def test_check_with_non_location_error_class(self):
        from repro.diagnostics import SimulationError, SynthesisError

        for error_class in (SynthesisError, SimulationError):
            sink = DiagnosticSink()
            sink.error("no feasible mapping", SourceLocation(1, 1))
            with pytest.raises(error_class) as exc_info:
                sink.check("mapping", error_class)
            # These classes take no location argument; the summary
            # message still carries the formatted location text.
            assert "mapping failed" in str(exc_info.value)
            assert "no feasible mapping" in str(exc_info.value)

    def test_extend(self):
        a = DiagnosticSink()
        a.error("one")
        b = DiagnosticSink()
        b.extend(a)
        assert b.has_errors()

    def test_iteration(self):
        sink = DiagnosticSink()
        sink.note("n")
        assert [d.severity for d in sink] == [Severity.NOTE]

    def test_diagnostic_str(self):
        d = Diagnostic(Severity.ERROR, "boom", SourceLocation(1, 2, "f"))
        assert "f:1:2" in str(d)
        assert "error" in str(d)
        assert "boom" in str(d)
