"""Tests for interfacing transformations and FSM-to-analog mapping."""

import pytest

from repro.compiler import compile_design
from repro.library import default_library
from repro.synth import InterfacingOptions, apply_interfacing, map_sfg
from repro.synth.fsm_mapping import realize_event_controls
from repro.synth.netlist import Netlist
from repro.vhif import BlockKind, Interpreter


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestInterfacing:
    def make_fanout_netlist(self, loads):
        netlist = Netlist(name="t", library=default_library())
        netlist.inputs["x"] = 0
        netlist.add_instance(
            "inverting_amplifier", params={"gain": -1.0}, inputs=[0],
            output=1, covers=[1],
        )
        for index in range(loads):
            netlist.add_instance(
                "voltage_follower", inputs=[1], output=100 + index,
                covers=[100 + index],
            )
        return netlist

    def test_no_buffer_below_limit(self):
        netlist = self.make_fanout_netlist(loads=3)
        added = apply_interfacing(netlist, options=InterfacingOptions())
        assert added == []

    def test_buffer_inserted_above_limit(self):
        netlist = self.make_fanout_netlist(loads=5)
        added = apply_interfacing(netlist, options=InterfacingOptions())
        assert len(added) == 1
        assert added[0].spec.name == "voltage_follower"

    def test_excess_loads_moved_to_buffer(self):
        netlist = self.make_fanout_netlist(loads=5)
        (buffer,) = apply_interfacing(netlist, options=InterfacingOptions())
        moved = [
            inst
            for inst in netlist.instances
            if buffer.output in inst.inputs and inst is not buffer
        ]
        assert len(moved) == 2  # 5 loads - max_fanout 3

    def test_netlist_still_valid_after_buffering(self):
        netlist = self.make_fanout_netlist(loads=6)
        apply_interfacing(netlist, options=InterfacingOptions())
        netlist.validate()

    def test_high_impedance_input_buffered(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real IMPEDANCE 1.0 mohm; "
                "QUANTITY y : OUT real",
                body="y == 2.0 * u;",
            )
        )
        result = map_sfg(design.main_sfg)
        added = apply_interfacing(result.netlist, design)
        assert any(i.name.startswith("INBUF") for i in added)

    def test_low_impedance_input_not_buffered(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real IMPEDANCE 100.0 ohm; "
                "QUANTITY y : OUT real",
                body="y == 2.0 * u;",
            )
        )
        result = map_sfg(design.main_sfg)
        added = apply_interfacing(result.netlist, design)
        assert not added


RECEIVER_STYLE = wrap(
    "QUANTITY u : IN real; QUANTITY y : OUT real",
    decls="QUANTITY r : real; SIGNAL c : bit;",
    body="""
  y == u * r;
  IF (c = '1') USE r == 1.0; ELSE r == 2.0; END USE;
  PROCESS (u'ABOVE(0.3)) IS
  BEGIN
    IF (u'ABOVE(0.3) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
  END PROCESS;
""",
)

SCHMITT_STYLE = wrap(
    "QUANTITY ramp : OUT real",
    decls="""
  CONSTANT vhi : real := 1.0;
  CONSTANT vlo : real := -1.0;
  QUANTITY vsel : real;
  SIGNAL dir : bit;
""",
    body="""
  ramp'dot == 100.0 * vsel;
  IF (dir = '1') USE vsel == 1.0; ELSE vsel == -1.0; END USE;
  PROCESS (ramp'ABOVE(vhi), ramp'ABOVE(vlo)) IS
  BEGIN
    IF (ramp'ABOVE(vhi) = TRUE) THEN dir <= '0';
    ELSIF (ramp'ABOVE(vlo) = FALSE) THEN dir <= '1';
    END IF;
  END PROCESS;
""",
)


class TestZeroCrossRealization:
    def test_control_signal_realized(self):
        design = compile_design(RECEIVER_STYLE)
        realized = realize_event_controls(design)
        assert len(realized) == 1
        assert realized[0].kind == "zero_cross"
        assert realized[0].signal == "c"

    def test_binding_replaced_by_net(self):
        design = compile_design(RECEIVER_STYLE)
        realize_event_controls(design)
        sfg = design.main_sfg
        assert "c" not in sfg.control_bindings
        (mux,) = sfg.blocks_of_kind(BlockKind.MUX)
        assert sfg.control_driver_of(mux) is not None

    def test_inverted_polarity(self):
        source = wrap(
            "QUANTITY u : IN real; QUANTITY y : OUT real",
            decls="QUANTITY r : real; SIGNAL c : bit;",
            body="""
  y == u * r;
  IF (c = '1') USE r == 1.0; ELSE r == 2.0; END USE;
  PROCESS (u'ABOVE(0.3)) IS
  BEGIN
    IF (u'ABOVE(0.3) = TRUE) THEN c <= '0'; ELSE c <= '1'; END IF;
  END PROCESS;
""",
        )
        design = compile_design(source)
        realize_event_controls(design)
        (cmp_,) = design.main_sfg.blocks_of_kind(BlockKind.COMPARATOR)
        assert cmp_.params.get("invert") is True

    def test_behavior_preserved_after_realization(self):
        design = compile_design(RECEIVER_STYLE)
        realize_event_controls(design)
        interp = Interpreter(design, dt=1e-4, inputs={"u": lambda t: 1.0})
        interp.run(0.01, probes=[])
        # u=1 > 0.3: r should be 1 -> y = 1.
        assert interp.probe("y") == pytest.approx(1.0)
        interp.inputs["u"] = lambda t: 0.1
        interp.run(0.01, probes=[])
        assert interp.probe("y") == pytest.approx(0.2)


class TestSchmittRealization:
    def test_two_thresholds_fuse(self):
        design = compile_design(SCHMITT_STYLE)
        realized = realize_event_controls(design)
        kinds = {r.kind for r in realized}
        assert "schmitt" in kinds

    def test_single_hysteretic_comparator_left(self):
        design = compile_design(SCHMITT_STYLE)
        realize_event_controls(design)
        comparators = design.main_sfg.blocks_of_kind(BlockKind.COMPARATOR)
        assert len(comparators) == 1
        (schmitt,) = comparators
        assert schmitt.params["hysteresis"] == pytest.approx(1.0)
        assert schmitt.params["threshold"] == pytest.approx(0.0)

    def test_oscillation_after_fusion(self):
        design = compile_design(SCHMITT_STYLE)
        realize_event_controls(design)
        interp = Interpreter(design, dt=1e-4)
        traces = interp.run(0.5, probes=["ramp"])
        assert traces["ramp"].max() > 0.9
        assert traces["ramp"].min() < -0.9

    def test_maps_to_schmitt_component(self):
        design = compile_design(SCHMITT_STYLE)
        realize_event_controls(design)
        result = map_sfg(design.main_sfg)
        categories = result.netlist.category_counts()
        assert categories["Schmitt trigger"] == 1
