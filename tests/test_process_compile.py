"""Tests for process-to-FSM compilation (paper Figure 3 rules)."""

import pytest

from repro.compiler import compile_design
from repro.vhif import BlockKind, Interpreter, START_STATE


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


RECEIVER_LIKE = wrap(
    "QUANTITY u : IN real; QUANTITY y : OUT real",
    decls="SIGNAL c : bit; CONSTANT th : real := 0.5;",
    body="""
  y == u;
  PROCESS (u'ABOVE(th)) IS
  BEGIN
    IF (u'ABOVE(th) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
  END PROCESS;
""",
)


class TestResumeSemantics:
    def test_start_state_present(self):
        design = compile_design(RECEIVER_LIKE)
        fsm = design.fsm
        assert fsm is not None
        assert START_STATE in fsm

    def test_resume_transitions_from_start(self):
        design = compile_design(RECEIVER_LIKE)
        arcs = design.fsm.transitions_from(START_STATE)
        assert len(arcs) == 2  # one per if branch, both guarded by resume

    def test_above_event_creates_comparator(self):
        design = compile_design(RECEIVER_LIKE)
        comparators = design.main_sfg.blocks_of_kind(BlockKind.COMPARATOR)
        assert len(comparators) == 1
        assert comparators[0].params["threshold"] == pytest.approx(0.5)

    def test_event_source_registered(self):
        design = compile_design(RECEIVER_LIKE)
        assert "u'above(0.5)" in design.event_sources

    def test_sensitivity_or_of_events(self):
        design = compile_design(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                decls="SIGNAL s : bit;",
                body="""
  y == a + b;
  PROCESS (a'ABOVE(0.1), b'ABOVE(0.2)) IS
  BEGIN
    s <= '1';
  END PROCESS;
""",
            )
        )
        names = design.fsm.event_names()
        assert "a'above(0.1)" in names
        assert "b'above(0.2)" in names


class TestConcurrencyGrouping:
    def test_independent_assignments_share_state(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="SIGNAL p : bit; SIGNAL q : bit;",
                body="""
  y == u;
  PROCESS (u'ABOVE(0.0)) IS
  BEGIN
    p <= '1';
    q <= '0';
  END PROCESS;
""",
            )
        )
        assert design.fsm.n_states() == 1
        assert len(design.fsm.state("state1").operations) == 2

    def test_dependent_assignments_split_states(self):
        # Figure 3a: assignment 6 depends on assignment 5 through n.
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="SIGNAL s : bit;",
                body="""
  y == u;
  PROCESS (u'ABOVE(0.0)) IS
    VARIABLE m : real;
    VARIABLE n : real;
  BEGIN
    m := 1.0;
    n := 2.0;
    m := n + 1.0;
    s <= '1';
  END PROCESS;
""",
            )
        )
        # m:=1 and n:=2 group; m:=n+1 depends on n (and rewrites m);
        # s<='1' is independent of m but lands after.
        fsm = design.fsm
        assert fsm.n_states() == 2
        state1 = fsm.state("state1")
        assert {op.target for op in state1.operations} == {"m", "n"}

    def test_write_after_write_splits(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="",
                body="""
  y == u;
  PROCESS (u'ABOVE(0.0)) IS
    VARIABLE v : real;
  BEGIN
    v := 1.0;
    v := 2.0;
  END PROCESS;
""",
            )
        )
        assert design.fsm.n_states() == 2


class TestBranching:
    def test_if_creates_conditional_arcs(self):
        design = compile_design(RECEIVER_LIKE)
        fsm = design.fsm
        assert fsm.n_states() == 2
        conditions = [str(t.condition) for t in fsm.transitions]
        assert any("above" in c for c in conditions)

    def test_elsif_chain(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="SIGNAL s : bit;",
                body="""
  y == u;
  PROCESS (u'ABOVE(1.0), u'ABOVE(2.0)) IS
  BEGIN
    IF (u'ABOVE(2.0) = TRUE) THEN s <= '1';
    ELSIF (u'ABOVE(1.0) = TRUE) THEN s <= '0';
    END IF;
  END PROCESS;
""",
            )
        )
        assert design.fsm.n_states() == 2

    def test_statements_after_if_join(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="SIGNAL s : bit; SIGNAL t : bit;",
                body="""
  y == u;
  PROCESS (u'ABOVE(0.0)) IS
  BEGIN
    IF (u'ABOVE(0.0) = TRUE) THEN s <= '1'; ELSE s <= '0'; END IF;
    t <= '1';
  END PROCESS;
""",
            )
        )
        fsm = design.fsm
        # Both branch states plus a join state for t.
        assert fsm.n_states() == 3
        join_writers = [
            s.name for s in fsm.states if "t" in s.writes()
        ]
        assert len(join_writers) == 1

    def test_fsm_behavior_through_interpreter(self):
        design = compile_design(RECEIVER_LIKE)
        interp = Interpreter(
            design, dt=1e-4,
            inputs={"u": lambda t: 1.0 if t > 0.01 else 0.0},
        )
        interp.run(0.005, probes=[])
        assert interp.env["c"] == "0"
        interp.run(0.02, probes=[])
        assert interp.env["c"] == "1"


class TestSamplingLowering:
    SAMPLED = wrap(
        "QUANTITY u : IN real; SIGNAL sclk : IN bit; "
        "SIGNAL code : OUT bit_vector(0 TO 7); SIGNAL held : OUT real",
        body="""
  PROCESS (sclk) IS
  BEGIN
    IF (sclk = '1') THEN
      code <= u;
      held <= u;
    END IF;
  END PROCESS;
""",
    )

    def test_bit_vector_target_gets_sh_and_adc(self):
        design = compile_design(self.SAMPLED)
        sfg = design.main_sfg
        assert len(sfg.blocks_of_kind(BlockKind.SAMPLE_HOLD)) == 2
        assert len(sfg.blocks_of_kind(BlockKind.ADC)) == 1

    def test_adc_bits_from_vector_bounds(self):
        design = compile_design(self.SAMPLED)
        (adc,) = design.main_sfg.blocks_of_kind(BlockKind.ADC)
        assert adc.params["bits"] == 8

    def test_sample_control_is_trigger_signal(self):
        design = compile_design(self.SAMPLED)
        sfg = design.main_sfg
        for sh in sfg.blocks_of_kind(BlockKind.SAMPLE_HOLD):
            assert sfg.control_signal_of(sh) == "sclk"

    def test_sampled_value_visible_to_fsm(self):
        design = compile_design(self.SAMPLED)
        assert "held_sampled" in design.quantity_taps

    def test_sampling_behavior(self):
        design = compile_design(self.SAMPLED)
        interp = Interpreter(
            design, dt=1e-3,
            inputs={
                "u": lambda t: t,
                "sclk": lambda t: 0.04 < t < 0.06,
            },
        )
        interp.run(0.1, probes=[])
        held = float(interp.env["held"])
        assert 0.03 < held < 0.07  # sampled around the strobe window
