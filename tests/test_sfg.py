"""Unit tests for signal-flow graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnostics import VaseError
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT, SignalFlowGraph


def build_chain():
    """in -> scale -> add <- const; add -> out"""
    g = SignalFlowGraph("chain")
    inp = g.add(BlockKind.INPUT, name="x")
    scale = g.add(BlockKind.SCALE, gain=2.0)
    const = g.add(BlockKind.CONST, value=1.0)
    adder = g.add(BlockKind.ADD, n_inputs=2)
    out = g.add(BlockKind.OUTPUT, name="y")
    g.connect(inp, scale)
    g.connect(scale, adder, port=0)
    g.connect(const, adder, port=1)
    g.connect(adder, out)
    return g, (inp, scale, const, adder, out)


class TestConstruction:
    def test_block_ids_unique(self):
        g, blocks = build_chain()
        ids = [b.block_id for b in blocks]
        assert len(set(ids)) == len(ids)

    def test_block_default_names(self):
        g = SignalFlowGraph()
        b = g.add(BlockKind.ADD)
        assert b.name.startswith("add")

    def test_arity_fixed_kinds(self):
        g = SignalFlowGraph()
        assert g.add(BlockKind.SUB).n_inputs == 2
        assert g.add(BlockKind.SCALE, gain=1.0).n_inputs == 1
        assert g.add(BlockKind.INPUT).n_inputs == 0

    def test_variadic_add(self):
        g = SignalFlowGraph()
        assert g.add(BlockKind.ADD, n_inputs=5).n_inputs == 5
        assert g.add(BlockKind.ADD).n_inputs == 2  # minimum

    def test_connect_invalid_port(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.SCALE, gain=1.0)
        with pytest.raises(VaseError):
            g.connect(a, b, port=3)

    def test_double_drive_rejected(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.INPUT)
        c = g.add(BlockKind.SCALE, gain=1.0)
        g.connect(a, c)
        with pytest.raises(VaseError, match="already driven"):
            g.connect(b, c)

    def test_control_port_requires_controllable_kind(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        b = g.add(BlockKind.SCALE, gain=1.0)
        with pytest.raises(VaseError, match="control"):
            g.connect(a, b, port=CONTROL_PORT)

    def test_control_port_on_switch(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        cmp_ = g.add(BlockKind.COMPARATOR, threshold=0.0)
        sw = g.add(BlockKind.SWITCH)
        g.connect(a, cmp_)
        g.connect(a, sw)
        g.connect(cmp_, sw, port=CONTROL_PORT)
        assert g.control_driver_of(sw) is cmp_

    def test_bind_control_signal(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.INPUT)
        mux = g.add(BlockKind.MUX, n_inputs=2)
        g.bind_control("c1", mux)
        assert g.control_signal_of(mux) == "c1"


class TestQueries:
    def test_driver_and_successors(self):
        g, (inp, scale, const, adder, out) = build_chain()
        assert g.driver_of(scale, 0) is inp
        assert g.driver_of(adder, 1) is const
        assert g.successors(scale) == [(adder, 0)]
        assert g.fanout(adder) == 1

    def test_data_predecessors(self):
        g, (inp, scale, const, adder, out) = build_chain()
        assert g.data_predecessors(adder) == [scale, const]

    def test_inputs_outputs(self):
        g, blocks = build_chain()
        assert [b.name for b in g.inputs] == ["x"]
        assert [b.name for b in g.outputs] == ["y"]

    def test_processing_blocks_exclude_io_const(self):
        g, blocks = build_chain()
        names = {b.kind for b in g.processing_blocks()}
        assert names == {BlockKind.SCALE, BlockKind.ADD}

    def test_transitive_fanin(self):
        g, (inp, scale, const, adder, out) = build_chain()
        fanin = g.transitive_fanin(out)
        assert inp.block_id in fanin
        assert const.block_id in fanin


class TestTopologicalOrder:
    def test_respects_dataflow(self):
        g, (inp, scale, const, adder, out) = build_chain()
        order = [b.block_id for b in g.topological_order()]
        assert order.index(inp.block_id) < order.index(scale.block_id)
        assert order.index(scale.block_id) < order.index(adder.block_id)
        assert order.index(adder.block_id) < order.index(out.block_id)

    def test_integrator_breaks_cycle(self):
        g = SignalFlowGraph()
        integ = g.add(BlockKind.INTEGRATE, gain=1.0, initial=0.0)
        neg = g.add(BlockKind.NEG)
        g.connect(integ, neg)
        g.connect(neg, integ)  # feedback loop x' = -x
        order = g.topological_order()
        assert len(order) == 2

    def test_pure_combinational_cycle_rejected(self):
        g = SignalFlowGraph()
        a = g.add(BlockKind.NEG)
        b = g.add(BlockKind.NEG)
        g.connect(a, b)
        g.connect(b, a)
        with pytest.raises(VaseError, match="loop"):
            g.topological_order()
        assert g.has_algebraic_loop()

    def test_control_edges_do_not_order(self):
        # mux -> comparator -> mux(control) must not be a loop.
        g = SignalFlowGraph()
        inp = g.add(BlockKind.INPUT)
        mux = g.add(BlockKind.MUX, n_inputs=2)
        cmp_ = g.add(BlockKind.COMPARATOR, threshold=0.0)
        g.connect(inp, mux, port=0)
        g.connect(inp, mux, port=1)
        g.connect(mux, cmp_)
        g.connect(cmp_, mux, port=CONTROL_PORT)
        assert not g.has_algebraic_loop()


class TestCones:
    def test_single_block_cone_always_present(self):
        g, (inp, scale, const, adder, out) = build_chain()
        cones = list(g.iter_cones(adder))
        assert frozenset({adder.block_id}) in cones

    def test_cone_includes_single_fanout_pred(self):
        g, (inp, scale, const, adder, out) = build_chain()
        cones = list(g.iter_cones(adder))
        assert frozenset({adder.block_id, scale.block_id}) in cones

    def test_cone_never_includes_sources(self):
        g, (inp, scale, const, adder, out) = build_chain()
        for cone in g.iter_cones(adder):
            assert inp.block_id not in cone
            assert const.block_id not in cone

    def test_multi_fanout_pred_excluded(self):
        g = SignalFlowGraph()
        inp = g.add(BlockKind.INPUT)
        scale = g.add(BlockKind.SCALE, gain=2.0)
        a = g.add(BlockKind.NEG)
        b = g.add(BlockKind.NEG)
        g.connect(inp, scale)
        g.connect(scale, a)
        g.connect(scale, b)  # scale fans out to both
        cones_a = list(g.iter_cones(a))
        assert all(scale.block_id not in cone for cone in cones_a)

    def test_cones_sorted_largest_first(self):
        g, (inp, scale, const, adder, out) = build_chain()
        sizes = [len(c) for c in g.iter_cones(adder)]
        assert sizes == sorted(sizes, reverse=True)

    def test_max_size_respected(self):
        g, (inp, scale, const, adder, out) = build_chain()
        for cone in g.iter_cones(adder, max_size=1):
            assert len(cone) == 1

    def test_cone_inputs(self):
        g, (inp, scale, const, adder, out) = build_chain()
        cone = frozenset({adder.block_id, scale.block_id})
        external = g.cone_inputs(cone)
        drivers = {driver.block_id for driver, _, _ in external}
        assert drivers == {inp.block_id, const.block_id}


class TestMutation:
    def test_remove_block(self):
        g, (inp, scale, const, adder, out) = build_chain()
        g.remove_block(scale)
        assert scale not in g
        assert g.driver_of(adder, 0) is None

    def test_copy_is_independent(self):
        g, blocks = build_chain()
        clone = g.copy()
        clone.add(BlockKind.NEG)
        assert len(clone) == len(g) + 1

    def test_copy_preserves_structure(self):
        g, (inp, scale, const, adder, out) = build_chain()
        clone = g.copy()
        assert clone.driver_of(clone.block(adder.block_id), 0).block_id == (
            scale.block_id
        )

    def test_describe_mentions_blocks(self):
        g, blocks = build_chain()
        text = g.describe()
        assert "scale" in text and "add" in text


@st.composite
def random_dag(draw):
    """Random layered DAG of arithmetic blocks over one input."""
    g = SignalFlowGraph("random")
    inp = g.add(BlockKind.INPUT, name="x")
    available = [inp]
    n = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n):
        kind = draw(st.sampled_from(
            [BlockKind.SCALE, BlockKind.NEG, BlockKind.ADD]))
        if kind is BlockKind.ADD:
            block = g.add(kind, n_inputs=2)
            for port in range(2):
                src = draw(st.sampled_from(available))
                g.connect(src, block, port=port)
        else:
            block = g.add(kind, gain=2.0)
            src = draw(st.sampled_from(available))
            g.connect(src, block)
        available.append(block)
    return g


class TestProperties:
    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_is_consistent(self, g):
        order = g.topological_order()
        position = {b.block_id: i for i, b in enumerate(order)}
        for block in g.blocks:
            for port in range(block.n_inputs):
                pred = g.driver_of(block, port)
                if pred is not None and not block.kind.is_stateful():
                    assert position[pred.block_id] < position[block.block_id]

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_cones_are_closed(self, g):
        """Non-root cone members never fan out of the cone."""
        for root in g.processing_blocks():
            for cone in g.iter_cones(root, max_size=3):
                for member_id in cone:
                    if member_id == root.block_id:
                        continue
                    member = g.block(member_id)
                    for sink, _port in g.successors(member):
                        assert sink.block_id in cone

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_copy_roundtrip_preserves_topology(self, g):
        clone = g.copy()
        original = [(b.block_id, b.kind) for b in g.topological_order()]
        copied = [(b.block_id, b.kind) for b in clone.topological_order()]
        assert original == copied
