"""The incremental CandidateIndex must not change mapper decisions.

The index is a pure speed refactor: identical candidate ordering,
identical alloc/share/prune/complete sequence, identical best mapping.
The exploration log records every decision the search makes, so
comparing full (timestamp-stripped) event streams between index-on and
index-off runs proves behavioral equivalence end to end.
"""

import os

import pytest

from repro.apps import biquad_filter
from repro.flow import FlowOptions, synthesize
from repro.instrument import explogging, metrics
from repro.synth import ArchitectureMapper, MapperOptions

#: every event type the mapper search emits
MAPPER_EVENTS = {
    "search_start", "candidates", "alloc", "share", "prune",
    "complete", "dead_end", "truncated", "search_end",
}

#: wall-clock fields that legitimately differ between two runs
TIMING_FIELDS = {"ts", "runtime_s"}

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def biquad_source() -> str:
    path = os.path.join(EXAMPLES, "biquad.vhd")
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def mapper_decisions(source: str, **mapper_kwargs):
    """The mapper's decision sequence for one synthesis run."""
    with explogging() as log:
        result = synthesize(
            source, options=FlowOptions(mapper=MapperOptions(**mapper_kwargs))
        )
    decisions = [
        {k: v for k, v in event.items() if k not in TIMING_FIELDS}
        for event in log.events
        if event["event"] in MAPPER_EVENTS
    ]
    return decisions, result


class TestDecisionParity:
    def test_biquad_explog_sequence_identical(self):
        indexed, indexed_result = mapper_decisions(
            biquad_source(), candidate_index=True
        )
        legacy, legacy_result = mapper_decisions(
            biquad_source(), candidate_index=False
        )
        assert indexed == legacy
        assert (
            indexed_result.mapping.estimate.area
            == legacy_result.mapping.estimate.area
        )
        assert (
            indexed_result.netlist.describe()
            == legacy_result.netlist.describe()
        )

    @pytest.mark.parametrize(
        "sequencing", ["largest_first", "smallest_first", "arbitrary"]
    )
    def test_sequencing_modes_identical(self, sequencing):
        indexed, _ = mapper_decisions(
            biquad_source(), candidate_index=True, sequencing=sequencing
        )
        legacy, _ = mapper_decisions(
            biquad_source(), candidate_index=False, sequencing=sequencing
        )
        assert indexed == legacy


class TestMinAreaMemoBound:
    """Sharing off: the memo bound prunes more, never a different best."""

    def _map(self, **kwargs):
        source = biquad_filter.VASS_SOURCE
        return synthesize(
            source,
            options=FlowOptions(
                mapper=MapperOptions(enable_sharing=False, **kwargs)
            ),
        ).mapping

    def test_same_best_area_smaller_search(self):
        indexed = self._map(candidate_index=True)
        legacy = self._map(candidate_index=False)
        assert indexed.estimate.area == pytest.approx(legacy.estimate.area)
        # The tighter bound cuts subtrees earlier, so the indexed
        # search never visits more nodes (a branch pruned at its root
        # also records *fewer* individual prune events than pruning
        # each of its children would).
        assert (
            indexed.statistics.nodes_visited
            <= legacy.statistics.nodes_visited
        )
        assert (
            indexed.statistics.feasible_mappings
            >= 1
        )


class TestIndexMechanics:
    def _mapper(self, **kwargs):
        from repro.compiler import compile_design

        design = compile_design(biquad_filter.VASS_SOURCE)
        sfg = design.sfgs[0]
        return ArchitectureMapper(
            sfg, options=MapperOptions(**kwargs)
        )

    def test_enumerates_each_root_once(self):
        mapper = self._mapper(candidate_index=True)
        registry = metrics()
        calls_before = registry.counter("patterns.candidate_calls")
        mapper.run()
        index = mapper._index
        assert index is not None
        # One matcher enumeration per distinct root, by construction.
        assert (
            registry.counter("patterns.candidate_calls") - calls_before
            == index.misses
        )
        assert index.misses == len(index._entries)

    def test_hit_rate_published(self):
        registry = metrics()
        hits_before = registry.counter("mapper.index.hits")
        misses_before = registry.counter("mapper.index.misses")
        self._mapper(candidate_index=True).run()
        assert registry.counter("mapper.index.misses") > misses_before
        # Any search deeper than one node re-queries enumerated roots.
        assert registry.counter("mapper.index.hits") >= hits_before

    def test_cover_uncover_roundtrip(self):
        mapper = self._mapper(candidate_index=True)
        index = mapper._index
        root = mapper.sfg.block(max(mapper._initial_pending()))
        full = index.candidates(root)
        assert full, "biquad root should have candidates"
        cone = full[0].cone
        index.cover(cone)
        filtered = index.candidates(root)
        assert all(not (m.cone & cone) for m in filtered)
        index.uncover(cone)
        assert index.candidates(root) == full

    def test_index_off_has_no_index(self):
        mapper = self._mapper(candidate_index=False)
        assert mapper._index is None
        assert mapper._area_by_match is None
