"""Tests for the specification-vs-circuit equivalence checker."""

import math

import pytest

from repro.apps import biquad_filter, receiver
from repro.flow import synthesize
from repro.spice import sin_wave
from repro.verify import verify_equivalence


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestEquivalence:
    def test_linear_design_equivalent(self):
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == 2.0 * u + 0.5;",
            )
        )
        report = verify_equivalence(
            result, inputs={"u": sin_wave(0.3, 1e3)}, t_end=2e-3
        )
        assert report.passed, report.describe()

    def test_multiplier_design_equivalent(self):
        result = synthesize(
            wrap(
                "QUANTITY a : IN real; QUANTITY b : IN real; "
                "QUANTITY y : OUT real",
                body="y == a * b;",
            )
        )
        report = verify_equivalence(
            result,
            inputs={"a": sin_wave(0.5, 1e3), "b": lambda t: 0.7},
            t_end=2e-3,
        )
        assert report.passed, report.describe()

    def test_receiver_equivalent(self):
        result = synthesize(receiver.VASS_SOURCE)
        report = verify_equivalence(
            result,
            inputs={
                "line": sin_wave(0.8, 1e3),
                "local": lambda t: 0.1,
            },
            t_end=2e-3,
            tolerance=0.10,  # comparator switching instants differ
        )
        assert report.passed, report.describe()

    def test_biquad_equivalent(self):
        result = biquad_filter.synthesize_biquad()
        report = verify_equivalence(
            result,
            inputs={"vin": sin_wave(0.5, 200.0)},
            t_end=10e-3,
            dt=5e-6,
        )
        assert report.passed, report.describe()

    def test_multiple_outputs_compared(self):
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y1 : OUT real; "
                "QUANTITY y2 : OUT real",
                body="y1 == 2.0 * u;\n  y2 == -1.0 * u;",
            )
        )
        report = verify_equivalence(
            result, inputs={"u": sin_wave(0.4, 1e3)}, t_end=1e-3
        )
        assert len(report.comparisons) == 2
        assert report.passed, report.describe()

    def test_describe_output(self):
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        report = verify_equivalence(
            result, inputs={"u": sin_wave(0.2, 1e3)}, t_end=1e-3
        )
        text = report.describe()
        assert "EQUIVALENT" in text
        assert "y:" in text

    def test_deviation_detected(self):
        """Tampering with the netlist must be caught."""
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == 2.0 * u;",
            )
        )
        # Corrupt the synthesized gain.
        result.netlist.instances[0].params["gain"] = 5.0
        report = verify_equivalence(
            result, inputs={"u": sin_wave(0.4, 1e3)}, t_end=1e-3
        )
        assert not report.passed

    def test_no_outputs_rejected(self):
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        with pytest.raises(ValueError):
            verify_equivalence(result, outputs=[])
