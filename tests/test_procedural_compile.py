"""Tests for procedural compilation: dataflow sequencing, if-merge,
for-unrolling and the Figure-4 while-loop structure."""

import math

import pytest

from repro.diagnostics import CompileError
from repro.compiler import compile_design
from repro.vhif import BlockKind, Interpreter


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


def procedural(inner, ports="QUANTITY u : IN real; QUANTITY y : OUT real",
               decls=""):
    return wrap(
        ports,
        decls=decls,
        body=f"""
  PROCEDURAL IS
{inner[0]}
  BEGIN
{inner[1]}
  END PROCEDURAL;
""",
    )


class TestSequencing:
    def test_assignment_chain_becomes_dataflow(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := 2.0 * u;
    t := t + 1.0;
    y := t * 3.0;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 1.0})
        interp.step()
        assert interp.probe("y") == pytest.approx((2.0 + 1.0) * 3.0)

    def test_instruction_order_preserved_by_dependence(self):
        # Same names, different order => different result; the compiler
        # must honor the written sequence (Figure 3's rule).
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := u + 1.0;
    t := t * t;
    y := t;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 2.0})
        interp.step()
        assert interp.probe("y") == pytest.approx(9.0)

    def test_stateless_rule_enforced_by_frontend(self):
        with pytest.raises(Exception, match="read before"):
            compile_design(procedural((
                "    VARIABLE t : real;",
                "    y := t;\n",
            )))


class TestIfMerge:
    def test_quantity_condition_creates_mux_and_comparator(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := 0.0;
    IF (u > 1.0) THEN
      t := 2.0 * u;
    ELSE
      t := u;
    END IF;
    y := t;
""",
        ))
        design = compile_design(source)
        sfg = design.main_sfg
        assert len(sfg.blocks_of_kind(BlockKind.MUX)) == 1
        assert len(sfg.blocks_of_kind(BlockKind.COMPARATOR)) == 1

    def test_if_behavior(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := 0.0;
    IF (u > 1.0) THEN
      t := 2.0 * u;
    ELSE
      t := u;
    END IF;
    y := t;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 3.0})
        interp.step()
        interp.step()  # comparator control settles after one step
        assert interp.probe("y") == pytest.approx(6.0)

    def test_branch_without_prior_value_rejected(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    IF (u > 0.0) THEN
      t := 1.0;
    END IF;
    y := t;
""",
        ))
        with pytest.raises(Exception):
            compile_design(source)


class TestForUnrolling:
    def test_unrolled_sum(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := u;
    FOR i IN 1 TO 3 LOOP
      t := t + 1.0;
    END LOOP;
    y := t;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 0.5})
        interp.step()
        assert interp.probe("y") == pytest.approx(3.5)

    def test_loop_variable_usable_as_constant(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := 0.0;
    FOR i IN 1 TO 4 LOOP
      t := t + i;
    END LOOP;
    y := t;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 0.0})
        interp.step()
        assert interp.probe("y") == pytest.approx(10.0)

    def test_huge_unroll_rejected(self):
        source = procedural((
            "    VARIABLE t : real;",
            """
    t := 0.0;
    FOR i IN 1 TO 1000 LOOP
      t := t + 1.0;
    END LOOP;
    y := t;
""",
        ))
        with pytest.raises(CompileError, match="unroll"):
            compile_design(source)


class TestWhileLoop:
    SQRT_SOURCE = procedural((
        "    VARIABLE x : real;",
        """
    x := u;
    WHILE (abs(x * x - u) > 0.001) LOOP
      x := 0.5 * (x + u / x);
    END LOOP;
    y := x;
""",
    ))

    def test_figure4_blocks_present(self):
        design = compile_design(self.SQRT_SOURCE)
        sfg = design.main_sfg
        holds = sfg.blocks_of_kind(BlockKind.SAMPLE_HOLD)
        switches = sfg.blocks_of_kind(BlockKind.SWITCH)
        comparators = sfg.blocks_of_kind(BlockKind.COMPARATOR)
        # S/H1 + S/H2 per carried variable, sw1 + sw3, icontr + contr
        # (+ the inverted-contr detector).
        assert len(holds) == 2
        assert len(switches) == 2
        assert len(comparators) >= 2

    def test_two_conditional_blocks(self):
        """The transformation duplicates the conditional (Figure 4)."""
        design = compile_design(self.SQRT_SOURCE)
        names = [b.name for b in design.main_sfg.blocks]
        assert any(n.startswith("icontr") for n in names)
        assert any(n.startswith("contr") for n in names)

    def test_newton_iteration_converges(self):
        design = compile_design(self.SQRT_SOURCE)
        interp = Interpreter(design, dt=1e-4, inputs={"u": lambda t: 9.0})
        traces = interp.run(0.02, probes=["y"])
        assert traces.final("y") == pytest.approx(3.0, abs=0.01)

    def test_loop_with_no_assignment_rejected(self):
        source = procedural((
            "    VARIABLE x : real;",
            """
    x := u;
    WHILE (x > 0.0) LOOP
      NULL;
    END LOOP;
    y := x;
""",
        ))
        with pytest.raises(Exception):
            compile_design(source)

    def test_loop_variable_without_initial_value_rejected(self):
        source = procedural((
            "    VARIABLE x : real;\n    VARIABLE w : real;",
            """
    x := u;
    WHILE (abs(x) > 1.0) LOOP
      x := x / 2.0;
      w := x;
    END LOOP;
    y := x;
""",
        ))
        with pytest.raises(CompileError, match="no value before"):
            compile_design(source)

    def test_halving_loop(self):
        source = procedural((
            "    VARIABLE x : real;",
            """
    x := u;
    WHILE (abs(x) > 1.0) LOOP
      x := x / 2.0;
    END LOOP;
    y := x;
""",
        ))
        design = compile_design(source)
        interp = Interpreter(design, dt=1e-4, inputs={"u": lambda t: 10.0})
        traces = interp.run(0.01, probes=["y"])
        # 10 -> 5 -> 2.5 -> 1.25 -> 0.625
        assert traces.final("y") == pytest.approx(0.625, abs=1e-6)
