"""Tests for the VHIF optimization passes (semantics preservation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vhif import BlockKind, Interpreter, SignalFlowGraph, VhifDesign
from repro.vhif.optimize import optimize_design, optimize_sfg


def design_of(sfg):
    design = VhifDesign("t")
    design.add_sfg(sfg)
    return design


def evaluate(design, x=0.7):
    interp = Interpreter(design, dt=1e-5, inputs={"x": lambda t: x})
    interp.step()
    return float(interp.probe("y"))


class TestScaleFusion:
    def build_chain(self, gains):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        current = x
        for gain in gains:
            s = g.add(BlockKind.SCALE, gain=gain)
            g.connect(current, s)
            current = s
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(current, out)
        return g

    def test_two_scales_fuse(self):
        g = self.build_chain([2.0, 3.0])
        report = optimize_sfg(g)
        assert report.fused_scales == 1
        assert len(g.blocks_of_kind(BlockKind.SCALE)) == 1
        assert g.blocks_of_kind(BlockKind.SCALE)[0].gain == 6.0

    def test_long_chain_collapses(self):
        g = self.build_chain([2.0, 3.0, 0.5, 4.0])
        optimize_sfg(g)
        scales = g.blocks_of_kind(BlockKind.SCALE)
        assert len(scales) == 1
        assert scales[0].gain == pytest.approx(12.0)

    def test_semantics_preserved(self):
        g = self.build_chain([2.0, -1.5])
        before = evaluate(design_of(g.copy()))
        optimize_sfg(g)
        after = evaluate(design_of(g))
        assert after == pytest.approx(before)

    def test_fanout_blocks_fusion(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        s1 = g.add(BlockKind.SCALE, gain=2.0)
        s2 = g.add(BlockKind.SCALE, gain=3.0)
        extra = g.add(BlockKind.NEG, name="tap2")
        out = g.add(BlockKind.OUTPUT, name="y")
        out2 = g.add(BlockKind.OUTPUT, name="y2")
        g.connect(x, s1)
        g.connect(s1, s2)
        g.connect(s1, extra)  # s1 fans out: must not fuse
        g.connect(s2, out)
        g.connect(extra, out2)
        report = optimize_sfg(g)
        assert report.fused_scales == 0


class TestNegation:
    def test_double_negation_cancels(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        n1 = g.add(BlockKind.NEG)
        n2 = g.add(BlockKind.NEG)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, n1)
        g.connect(n1, n2)
        g.connect(n2, out)
        report = optimize_sfg(g)
        assert report.cancelled_negations == 1
        assert not g.blocks_of_kind(BlockKind.NEG)
        assert evaluate(design_of(g)) == pytest.approx(0.7)

    def test_neg_absorbs_into_scale(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        n = g.add(BlockKind.NEG)
        s = g.add(BlockKind.SCALE, gain=4.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, n)
        g.connect(n, s)
        g.connect(s, out)
        optimize_sfg(g)
        assert not g.blocks_of_kind(BlockKind.NEG)
        assert g.blocks_of_kind(BlockKind.SCALE)[0].gain == -4.0

    def test_neg_absorbs_into_integrator(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        n = g.add(BlockKind.NEG)
        i = g.add(BlockKind.INTEGRATE, gain=2.0, initial=0.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, n)
        g.connect(n, i)
        g.connect(i, out)
        optimize_sfg(g)
        assert not g.blocks_of_kind(BlockKind.NEG)
        assert g.blocks_of_kind(BlockKind.INTEGRATE)[0].gain == -2.0


class TestIdentityAndPinning:
    def test_unity_scale_removed(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        s = g.add(BlockKind.SCALE, gain=1.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, s)
        g.connect(s, out)
        report = optimize_sfg(g)
        assert report.removed_identities == 1
        assert not g.blocks_of_kind(BlockKind.SCALE)

    def test_pinned_block_survives(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        s = g.add(BlockKind.SCALE, gain=1.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, s)
        g.connect(s, out)
        report = optimize_sfg(g, pinned={s.block_id})
        assert report.total == 0
        assert g.blocks_of_kind(BlockKind.SCALE)

    def test_design_level_pins_taps(self):
        g = SignalFlowGraph("main")
        x = g.add(BlockKind.INPUT, name="x")
        s = g.add(BlockKind.SCALE, gain=1.0)
        out = g.add(BlockKind.OUTPUT, name="y")
        g.connect(x, s)
        g.connect(s, out)
        design = design_of(g)
        design.quantity_taps["q"] = ("main", s.block_id)
        report = optimize_design(design)
        assert report.total == 0


@st.composite
def chain_graph(draw):
    """A random single-path chain of SCALE/NEG blocks."""
    g = SignalFlowGraph("main")
    x = g.add(BlockKind.INPUT, name="x")
    current = x
    n = draw(st.integers(min_value=1, max_value=8))
    for _ in range(n):
        if draw(st.booleans()):
            block = g.add(
                BlockKind.SCALE,
                gain=draw(
                    st.floats(min_value=-4.0, max_value=4.0).filter(
                        lambda v: abs(v) > 1e-3
                    )
                ),
            )
        else:
            block = g.add(BlockKind.NEG)
        g.connect(current, block)
        current = block
    out = g.add(BlockKind.OUTPUT, name="y")
    g.connect(current, out)
    return g


class TestProperties:
    @given(chain_graph(), st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_optimization_preserves_function(self, g, x):
        before = evaluate(design_of(g.copy()), x=x)
        optimize_sfg(g)
        after = evaluate(design_of(g), x=x)
        assert after == pytest.approx(before, rel=1e-9, abs=1e-9)

    @given(chain_graph())
    @settings(max_examples=40, deadline=None)
    def test_chain_collapses_to_at_most_one_block(self, g):
        optimize_sfg(g)
        remaining = g.processing_blocks()
        # Any SCALE/NEG chain reduces to at most one SCALE (or nothing,
        # when the net gain is exactly 1) or one NEG (net gain -1).
        assert len(remaining) <= 1
