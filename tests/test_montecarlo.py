"""Tests for Monte-Carlo mismatch / yield analysis."""

import math

import pytest

from repro.apps import receiver
from repro.estimation.montecarlo import mismatch_analysis
from repro.flow import synthesize


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


@pytest.fixture(scope="module")
def amp_result():
    return synthesize(
        wrap(
            "QUANTITY u : IN real; QUANTITY y : OUT real",
            body="y == 3.0 * u + 0.2;",
        )
    )


SINE = {"u": lambda t: 0.5 * math.sin(2 * math.pi * 1e3 * t)}


class TestMismatchAnalysis:
    def test_zero_tolerance_full_yield(self, amp_result):
        report = mismatch_analysis(
            amp_result, inputs=SINE, tolerance=0.0, n_trials=5
        )
        assert report.yield_fraction == 1.0
        assert report.mean_rms_error == pytest.approx(0.0, abs=1e-12)

    def test_huge_tolerance_fails(self, amp_result):
        report = mismatch_analysis(
            amp_result, inputs=SINE, tolerance=0.5, n_trials=20,
            error_budget=0.01,
        )
        assert report.yield_fraction < 1.0

    def test_yield_monotone_in_tolerance(self, amp_result):
        tight = mismatch_analysis(
            amp_result, inputs=SINE, tolerance=0.002, n_trials=30,
            error_budget=0.02,
        )
        loose = mismatch_analysis(
            amp_result, inputs=SINE, tolerance=0.2, n_trials=30,
            error_budget=0.02,
        )
        assert tight.yield_fraction >= loose.yield_fraction
        assert tight.mean_rms_error <= loose.mean_rms_error

    def test_deterministic_under_seed(self, amp_result):
        a = mismatch_analysis(amp_result, inputs=SINE, tolerance=0.05,
                              n_trials=10, seed=7)
        b = mismatch_analysis(amp_result, inputs=SINE, tolerance=0.05,
                              n_trials=10, seed=7)
        assert [t.rms_error for t in a.trials] == [
            t.rms_error for t in b.trials
        ]

    def test_trial_count(self, amp_result):
        report = mismatch_analysis(amp_result, inputs=SINE, n_trials=12)
        assert report.n_trials == 12

    def test_describe(self, amp_result):
        report = mismatch_analysis(amp_result, inputs=SINE, n_trials=5)
        text = report.describe()
        assert "yield" in text and "trials" in text

    def test_receiver_reasonably_robust(self):
        result = synthesize(receiver.VASS_SOURCE)
        report = mismatch_analysis(
            result,
            inputs={
                "line": lambda t: 0.5 * math.sin(2 * math.pi * 1e3 * t),
                "local": lambda t: 0.1,
            },
            tolerance=0.01,
            n_trials=15,
            error_budget=0.10,
        )
        assert report.yield_fraction >= 0.8

    def test_unknown_output_rejected(self):
        result = synthesize(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        with pytest.raises(Exception):
            mismatch_analysis(result, inputs=SINE, output="ghost",
                              n_trials=1)
