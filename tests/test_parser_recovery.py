"""Tests for the parser's error-recovery (multi-error) mode."""

import pytest

from repro.diagnostics import ParseError
from repro.vass.lexer import tokenize
from repro.vass.parser import Parser, parse_source, parse_source_collecting

CLEAN = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""

# Three independent defects: a missing semicolon in the port list, a
# malformed simultaneous statement, and a second malformed statement.
MULTI_ERROR = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == * vin;
  vout == vin +;
END ARCHITECTURE;
"""

LEX_ERROR = "ENTITY e IS ` END ENTITY;"


class TestCollectingMode:
    def test_clean_source_has_no_errors(self):
        source, errors = parse_source_collecting(CLEAN)
        assert errors == []
        assert len(source.entities) == 1
        assert len(source.architectures) == 1

    def test_multiple_errors_collected(self):
        _source, errors = parse_source_collecting(
            MULTI_ERROR, filename="multi.vhd"
        )
        assert len(errors) >= 2
        for err in errors:
            assert isinstance(err, ParseError)
            assert "multi.vhd" in str(err)

    def test_first_collected_error_matches_strict_mode(self):
        with pytest.raises(ParseError) as info:
            parse_source(MULTI_ERROR, filename="multi.vhd")
        _source, errors = parse_source_collecting(
            MULTI_ERROR, filename="multi.vhd"
        )
        assert str(errors[0]) == str(info.value)

    def test_resync_recovers_later_units(self):
        # The architecture after the broken entity still parses.
        text = (
            "ENTITY broken IS PORT (QUANTITY vin IN real); END ENTITY;"
            + CLEAN
        )
        source, errors = parse_source_collecting(text)
        assert errors
        assert any(e.name == "amp" for e in source.entities)

    def test_lexer_errors_are_collected_not_raised(self):
        source, errors = parse_source_collecting(LEX_ERROR)
        assert len(errors) == 1
        assert not source.units

    def test_garbage_terminates(self):
        # Pure token soup must neither hang nor raise in collect mode.
        source, errors = parse_source_collecting(
            "); ; == ENTITY ( IF end ;;"
        )
        assert errors
        assert isinstance(errors[0], ParseError)


class TestStrictModeUnchanged:
    def test_parse_source_still_raises_first_error(self):
        with pytest.raises(ParseError):
            parse_source(MULTI_ERROR)

    def test_parser_default_does_not_collect(self):
        parser = Parser(tokenize(MULTI_ERROR))
        with pytest.raises(ParseError):
            parser.parse_source_file()
        assert parser.errors == []

    def test_clean_source_parses_identically(self):
        strict = parse_source(CLEAN)
        collected, errors = parse_source_collecting(CLEAN)
        assert errors == []
        assert len(strict.units) == len(collected.units)
