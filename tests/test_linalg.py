"""Tests for the pluggable linear-solver backends (repro.spice.linalg).

The refactor's correctness bar: every backend produces *identical*
results — same netlists, same AC responses, same error messages on
singular systems — so the backend knob can stay excluded from every
content fingerprint.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPLICATIONS
from repro.diagnostics import SimulationError
from repro.flow import FlowOptions, synthesize
from repro.instrument import metrics
from repro.robust.faultinject import inject_faults
from repro.spice import dc, elaborate, to_spice_deck
from repro.spice import linalg as linalg_module
from repro.spice.ac import ac_sweep
from repro.spice.linalg import (
    BACKENDS,
    HAVE_SCIPY,
    BatchedSolver,
    DenseSolver,
    SparseSolver,
    default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.spice.mna import Circuit, simulate_transient


def rc_ladder(n_sections=5, r=1e3, c=1e-8):
    """An n-section RC ladder driven by one source."""
    circuit = Circuit()
    circuit.vsource("VIN", "n0", "0", dc(0.0))
    for i in range(n_sections):
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", r)
        circuit.capacitor(f"C{i}", f"n{i + 1}", "0", c)
    return circuit


def random_systems(m=7, n=6, seed=11):
    """A stack of well-conditioned complex systems + one shared RHS."""
    rng = np.random.default_rng(seed)
    stack = rng.normal(size=(m, n, n)) + 1j * rng.normal(size=(m, n, n))
    stack += n * np.eye(n)  # diagonally dominant -> well-conditioned
    b = rng.normal(size=n) + 1j * rng.normal(size=n)
    return stack, b


class TestBackendSelection:
    def test_backends_tuple(self):
        assert BACKENDS == ("auto", "dense", "batched", "sparse")

    def test_explicit_names(self):
        assert isinstance(resolve_backend("dense"), DenseSolver)
        assert isinstance(resolve_backend("batched"), BatchedSolver)
        if HAVE_SCIPY:
            assert isinstance(resolve_backend("sparse"), SparseSolver)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown linalg backend"):
            resolve_backend("cholesky")

    def test_auto_picks_dense_for_small_single_solves(self):
        assert isinstance(resolve_backend("auto", size=8), DenseSolver)

    def test_auto_picks_batched_for_grids(self):
        assert isinstance(
            resolve_backend("auto", size=8, grid=100), BatchedSolver
        )

    @pytest.mark.skipif(not HAVE_SCIPY, reason="needs scipy")
    def test_auto_picks_sparse_past_threshold(self):
        backend = resolve_backend(
            "auto", size=linalg_module.SPARSE_THRESHOLD
        )
        assert isinstance(backend, SparseSolver)

    def test_sparse_without_scipy_degrades_to_dense(self, monkeypatch):
        monkeypatch.setattr(linalg_module, "HAVE_SCIPY", False)
        registry = metrics()
        before = registry.counter("spice.linalg.sparse_unavailable")
        backend = resolve_backend("sparse")
        assert isinstance(backend, DenseSolver)
        assert (
            registry.counter("spice.linalg.sparse_unavailable")
            == before + 1
        )

    def test_use_backend_is_scoped(self):
        assert default_backend() == "auto"
        with use_backend("dense"):
            assert default_backend() == "dense"
            with use_backend("batched"):
                assert default_backend() == "batched"
            assert default_backend() == "dense"
        assert default_backend() == "auto"

    def test_use_backend_none_is_noop(self):
        with use_backend(None):
            assert default_backend() == "auto"

    def test_use_backend_validates(self):
        with pytest.raises(ValueError, match="unknown linalg backend"):
            with use_backend("qr"):
                pass  # pragma: no cover

    def test_set_default_backend_returns_previous(self):
        previous = set_default_backend("dense")
        try:
            assert previous == "auto"
            assert default_backend() == "dense"
        finally:
            set_default_backend(previous)
        assert default_backend() == "auto"


class TestSolverEquivalence:
    def test_batched_matches_dense_loop(self):
        stack, b = random_systems()
        dense = DenseSolver().solve_grid(stack, b)
        batched = BatchedSolver().solve_grid(stack, b)
        assert np.allclose(dense, batched, rtol=1e-12, atol=0.0)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="needs scipy")
    def test_sparse_matches_dense(self):
        stack, b = random_systems()
        dense = DenseSolver().solve_grid(stack, b)
        sparse = SparseSolver().solve_grid(stack, b)
        assert np.allclose(dense, sparse, rtol=1e-12, atol=1e-12)

    def test_batched_raises_linalgerror_on_singular_point(self):
        stack, b = random_systems()
        stack[3] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            BatchedSolver().solve_grid(stack, b)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="needs scipy")
    def test_sparse_normalizes_singular_to_linalgerror(self):
        singular = np.zeros((3, 3), dtype=complex)
        with pytest.raises(np.linalg.LinAlgError):
            SparseSolver().solve(singular, np.ones(3, dtype=complex))


class TestAcBackendParity:
    @pytest.mark.parametrize(
        "backend",
        ["batched"] + (["sparse"] if HAVE_SCIPY else []),
    )
    def test_ladder_response_matches_dense(self, backend):
        reference = ac_sweep(
            rc_ladder(), 10.0, 1e6, points_per_decade=20,
            probes=["n5"], linalg="dense",
        )
        other = ac_sweep(
            rc_ladder(), 10.0, 1e6, points_per_decade=20,
            probes=["n5"], linalg=backend,
        )
        assert np.array_equal(reference.frequencies, other.frequencies)
        assert np.allclose(
            reference.voltages["n5"], other.voltages["n5"],
            rtol=1e-12, atol=0.0,
        )

    def test_backend_metric_published(self):
        registry = metrics()
        before = registry.counter("spice.linalg.backend.batched")
        ac_sweep(rc_ladder(), 10.0, 1e4, probes=["n5"], linalg="batched")
        assert registry.counter("spice.linalg.backend.batched") > before


class TestGuardParity:
    """Errors and fault injection behave identically per backend."""

    def _singular_message(self, backend):
        with inject_faults("spice.ac.singular"):
            with pytest.raises(SimulationError) as err:
                ac_sweep(
                    rc_ladder(), 10.0, 1e4, probes=["n5"],
                    linalg=backend,
                )
        return str(err.value)

    def test_batched_fallback_reproduces_dense_error(self):
        registry = metrics()
        before = registry.counter("spice.linalg.batched_fallbacks")
        dense_message = self._singular_message("dense")
        batched_message = self._singular_message("batched")
        assert batched_message == dense_message
        assert "singular AC matrix at" in batched_message
        assert (
            registry.counter("spice.linalg.batched_fallbacks")
            == before + 1
        )

    def test_mna_singular_fault_names_time(self):
        with inject_faults("spice.singular"):
            with pytest.raises(SimulationError, match="singular MNA"):
                simulate_transient(rc_ladder(), t_end=1e-5, dt=1e-6)


class TestFactorizationCounters:
    """Satellite: successes-only counting plus a failures counter."""

    def test_success_counts_factorizations_not_failures(self):
        registry = metrics()
        ok_before = registry.counter("spice.mna.factorizations")
        bad_before = registry.counter("spice.mna.factorization_failures")
        simulate_transient(rc_ladder(), t_end=1e-5, dt=1e-6)
        assert registry.counter("spice.mna.factorizations") > ok_before
        assert (
            registry.counter("spice.mna.factorization_failures")
            == bad_before
        )

    def test_failed_factorization_counts_failure_only(self):
        registry = metrics()
        bad_before = registry.counter("spice.mna.factorization_failures")
        with inject_faults("spice.ac.singular"):
            ok_before = registry.counter("spice.mna.factorizations")
            with pytest.raises(SimulationError):
                ac_sweep(
                    rc_ladder(), 10.0, 1e4, probes=["n5"],
                    linalg="dense",
                )
            # The DC bias point solves fine; the first AC point fails
            # and must not land on the success counter.
            ok_after = registry.counter("spice.mna.factorizations")
        assert (
            registry.counter("spice.mna.factorization_failures")
            > bad_before
        )
        assert ok_after >= ok_before  # successes never decremented
        with inject_faults("spice.ac.singular"):
            with pytest.raises(SimulationError):
                ac_sweep(
                    rc_ladder(), 10.0, 1e4, probes=["n5"],
                    linalg="dense",
                )
            # Identical failing sweep: the success counter gained only
            # the bias-point factorizations, no AC-point successes.
            gained = (
                registry.counter("spice.mna.factorizations") - ok_after
            )
        assert gained == ok_after - ok_before


def _app_sources():
    return sorted(ALL_APPLICATIONS.items())


@pytest.mark.parametrize(
    "name,app", _app_sources(), ids=[n for n, _ in _app_sources()]
)
class TestTable1Differential:
    """Every Table-1 app: bit-identical netlists, matching AC sweeps."""

    def test_netlists_bit_identical_across_backends(self, name, app):
        decks = {}
        for backend in ("dense", "batched", "sparse"):
            result = synthesize(
                app.VASS_SOURCE, options=FlowOptions(linalg=backend)
            )
            decks[backend] = to_spice_deck(result.netlist)
        assert decks["dense"] == decks["batched"]
        assert decks["dense"] == decks["sparse"]

    def test_ac_responses_allclose_across_backends(self, name, app):
        result = synthesize(app.VASS_SOURCE)
        in_ports = [
            p for p, info in result.design.ports.items()
            if info.direction == "in"
        ]
        out_ports = [
            p for p, info in result.design.ports.items()
            if info.direction == "out"
        ]
        if not in_ports or not out_ports:
            pytest.skip(f"{name} has no in/out port pair")
        circuit = elaborate(
            result.netlist,
            input_waves={p: dc(0.0) for p in in_ports},
        )
        probe = circuit.output_nodes[out_ports[0]]
        responses = {
            backend: ac_sweep(
                circuit.circuit, 10.0, 1e5, points_per_decade=10,
                probes=[probe], ac_source=f"VIN_{in_ports[0]}",
                linalg=backend,
            )
            for backend in ("dense", "batched", "sparse")
        }
        reference = responses["dense"].voltages[probe]
        # batched runs the same LAPACK path and matches exactly;
        # sparse (SuperLU) may differ by a few ulps of rounding.
        assert np.array_equal(
            reference, responses["batched"].voltages[probe]
        ), f"{name}: batched diverged from dense"
        assert np.allclose(
            reference, responses["sparse"].voltages[probe], rtol=1e-12
        ), f"{name}: sparse diverged from dense"
