"""Fuzz/property tests on the VASS frontend's robustness.

The contract: on arbitrary input, the lexer/parser either succeed or
raise a :class:`~repro.diagnostics.VaseError` subclass with a source
location — never an unhandled Python exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnostics import VaseError
from repro.vass.lexer import TokenKind, tokenize
from repro.vass.parser import parse_expression, parse_source


printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=120,
)

vass_ish = st.text(
    alphabet=(
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789"
        " \n\t()+-*/=<>:;,.'\"_"
    ),
    max_size=200,
)


class TestLexerRobustness:
    @given(printable)
    @settings(max_examples=200, deadline=None)
    def test_tokenize_never_crashes(self, text):
        try:
            tokens = tokenize(text)
        except VaseError:
            return
        assert tokens[-1].kind is TokenKind.EOF

    @given(vass_ish)
    @settings(max_examples=200, deadline=None)
    def test_tokenize_vass_alphabet(self, text):
        try:
            tokens = tokenize(text)
        except VaseError:
            return
        # All non-EOF tokens carry positions inside the text.
        for token in tokens[:-1]:
            assert token.location.line >= 1
            assert token.location.column >= 1

    @given(printable)
    @settings(max_examples=100, deadline=None)
    def test_tokenize_is_deterministic(self, text):
        def run():
            try:
                return [(t.kind, t.value) for t in tokenize(text)]
            except VaseError as err:
                return str(err)

        assert run() == run()


class TestParserRobustness:
    @given(vass_ish)
    @settings(max_examples=200, deadline=None)
    def test_parse_source_never_crashes(self, text):
        try:
            parse_source(text)
        except VaseError:
            pass
        except RecursionError:
            pass  # pathological nesting is acceptable to reject this way

    @given(vass_ish)
    @settings(max_examples=200, deadline=None)
    def test_parse_expression_never_crashes(self, text):
        try:
            parse_expression(text)
        except VaseError:
            pass
        except RecursionError:
            pass

    def test_deeply_nested_parentheses(self):
        text = "(" * 50 + "x" + ")" * 50
        expr = parse_expression(text)
        assert expr is not None

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(VaseError):
            parse_expression("((x)")

    def test_empty_source_is_empty_design_file(self):
        source = parse_source("")
        assert source.units == []

    def test_error_location_points_into_source(self):
        try:
            parse_source("ENTITY e IS PORT (QUANTITY ); END ENTITY;")
        except VaseError as err:
            assert getattr(err, "location", None) is not None
        else:  # pragma: no cover
            pytest.fail("expected a parse error")
