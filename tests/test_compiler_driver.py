"""Tests for the end-to-end VASS-to-VHIF compiler driver."""

import math

import pytest

from repro.diagnostics import CompileError
from repro.compiler import CompilerOptions, compile_design, enumerate_solvers
from repro.vhif import BlockKind, Interpreter, simulate


def wrap(ports, decls="", body=""):
    return f"""
ENTITY e IS PORT ({ports}); END ENTITY;
ARCHITECTURE a OF e IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestBasicCompilation:
    def test_pure_equation(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == 3.0 * u;",
            )
        )
        kinds = {b.kind for b in design.main_sfg.processing_blocks()}
        assert kinds == {BlockKind.SCALE}

    def test_input_blocks_named_after_ports(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        assert [b.name for b in design.main_sfg.inputs] == ["u"]

    def test_output_block_exists(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        assert [b.name for b in design.main_sfg.outputs] == ["y"]

    def test_undefined_output_rejected(self):
        with pytest.raises(CompileError, match="never defined"):
            compile_design(
                wrap("QUANTITY u : IN real; QUANTITY y : OUT real")
            )

    def test_double_definition_rejected(self):
        with pytest.raises(CompileError, match="more than one"):
            compile_design(
                wrap(
                    "QUANTITY u : IN real; QUANTITY y : OUT real",
                    body="""
  y == u;
  PROCEDURAL IS BEGIN
    y := 2.0 * u;
  END PROCEDURAL;
""",
                )
            )

    def test_constants_recorded(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="CONSTANT k : real := 2.5;",
                body="y == k * u;",
            )
        )
        assert design.constants["k"] == 2.5

    def test_quantity_taps_registered(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY mid : real;",
                body="mid == 2.0 * u;\n  y == mid + 1.0;",
            )
        )
        assert "mid" in design.quantity_taps


class TestAnnotationDrivenOutputs:
    def test_limit_annotation_creates_output_stage(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; "
                "QUANTITY y : OUT real LIMITED AT 2.0 v",
                body="y == u;",
            )
        )
        limits = design.main_sfg.blocks_of_kind(BlockKind.LIMIT)
        assert len(limits) == 1
        assert limits[0].params["role"] == "output_stage"
        assert limits[0].params["high"] == 2.0

    def test_drive_annotation_creates_buffer(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; "
                "QUANTITY y : OUT real DRIVES 100.0 ohm AT 1.0 v PEAK",
                body="y == u;",
            )
        )
        buffers = design.main_sfg.blocks_of_kind(BlockKind.BUFFER)
        assert len(buffers) == 1
        assert buffers[0].params["load_ohms"] == 100.0

    def test_unannotated_output_direct(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == u;",
            )
        )
        assert not design.main_sfg.blocks_of_kind(
            BlockKind.LIMIT, BlockKind.BUFFER
        )

    def test_port_info_carries_annotations(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real IS current; "
                "QUANTITY y : OUT real LIMITED AT 1.5 v",
                body="y == u;",
            )
        )
        assert design.ports["u"].kind == "current"
        assert design.ports["y"].limit_level == 1.5


class TestConstructOrdering:
    def test_conditional_feeds_equation(self):
        # The receiver pattern: the DAE reads rvar defined conditionally.
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY r : real; SIGNAL c : bit;",
                body="""
  y == u * r;
  IF (c = '1') USE r == 1.0; ELSE r == 2.0; END USE;
  PROCESS (u'ABOVE(0.0)) IS
  BEGIN
    IF (u'ABOVE(0.0) = TRUE) THEN c <= '1'; ELSE c <= '0'; END IF;
  END PROCESS;
""",
            )
        )
        assert design.statistics().n_blocks > 0

    def test_procedural_feeds_equation(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY pre : real;",
                body="""
  y == pre + 1.0;
  PROCEDURAL IS
  BEGIN
    pre := 2.0 * u;
  END PROCEDURAL;
""",
            )
        )
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 3.0})
        interp.step()
        assert interp.probe("y") == pytest.approx(7.0)

    def test_cyclic_constructs_rejected(self):
        with pytest.raises(CompileError, match="cyclic|loop"):
            compile_design(
                wrap(
                    "QUANTITY u : IN real; QUANTITY y : OUT real",
                    decls="QUANTITY p : real; QUANTITY q : real;",
                    body="""
  p == q + u;
  PROCEDURAL IS
  BEGIN
    q := p * 2.0;
    y := q;
  END PROCEDURAL;
""",
                )
            )


class TestSolverSelection:
    SOURCE = wrap(
        "QUANTITY u : IN real; QUANTITY y : OUT real",
        decls="QUANTITY a : real;",
        body="""
  u == a * 2.0;
  y == a + u;
""",
    )

    def test_enumerate_solvers(self):
        solvers = enumerate_solvers(self.SOURCE)
        assert len(solvers) >= 1

    def test_solver_index_selects(self):
        design0 = compile_design(
            self.SOURCE, options=CompilerOptions(solver_index=0)
        )
        # The selected solver still computes the same function.
        interp = Interpreter(design0, dt=1e-5, inputs={"u": lambda t: 4.0})
        interp.step()
        assert interp.probe("y") == pytest.approx(6.0)

    def test_solver_index_out_of_range_clamps(self):
        design = compile_design(
            self.SOURCE, options=CompilerOptions(solver_index=99)
        )
        assert design is not None


class TestCompiledBehavior:
    def test_first_order_filter(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY x : real := 0.0; CONSTANT tau : real := 0.1;",
                body="""
  tau * x'dot == u - x;
  y == x;
""",
            )
        )
        traces = simulate(
            design, 0.5, dt=1e-4, inputs={"u": lambda t: 1.0}, probes=["y"]
        )
        expected = 1.0 - math.exp(-0.5 / 0.1)
        assert traces.final("y") == pytest.approx(expected, rel=1e-2)

    def test_nonlinear_drag_equation(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                body="y == 0.5 * exp(1.5 * log(u));",  # 0.5 * u^1.5
            )
        )
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 4.0})
        interp.step()
        assert interp.probe("y") == pytest.approx(0.5 * 4.0 ** 1.5)

    def test_simultaneous_case_compiles(self):
        design = compile_design(
            wrap(
                "QUANTITY u : IN real; QUANTITY y : OUT real",
                decls="QUANTITY g : real; SIGNAL mode : bit;",
                body="""
  y == g * u;
  CASE mode USE
    WHEN '1' => g == 2.0;
    WHEN OTHERS => g == 1.0;
  END CASE;
  PROCESS (u'ABOVE(1.0)) IS
  BEGIN
    IF (u'ABOVE(1.0) = TRUE) THEN mode <= '1'; ELSE mode <= '0'; END IF;
  END PROCESS;
""",
            )
        )
        muxes = design.main_sfg.blocks_of_kind(BlockKind.MUX)
        assert len(muxes) == 1
