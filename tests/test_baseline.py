"""Tests for the metrics regression gate (``vase bench-check``)."""

import json

import pytest

from repro.cli import main
from repro.instrument.baseline import (
    DEFAULT_REL_TOLERANCE,
    Regression,
    check_baselines,
    compare_metrics,
    extract_metrics,
)


def make_dump(**payload):
    """A minimal benchmark metrics document like benchmarks/out/ holds."""
    return {
        "benchmark": "table1",
        "payload": payload,
        "metrics": {
            "counters": {
                "mapper.nodes_visited": 120,
                "mapper.runtime_s": 0.004,  # timing: must be excluded
            },
            "gauges": {"mapper.best_area": 1.2e-7},
            "histograms": {
                "sizing.iterations": {"count": 8, "sum_s": 0.1},
            },
        },
    }


class TestExtractMetrics:
    def test_flattens_counters_gauges_histogram_counts(self):
        metrics = extract_metrics(make_dump())
        assert metrics["counters.mapper.nodes_visited"] == 120.0
        assert metrics["gauges.mapper.best_area"] == pytest.approx(1.2e-7)
        assert metrics["histograms.sizing.iterations.count"] == 8.0

    def test_payload_scalars_included(self):
        metrics = extract_metrics(make_dump(nodes=16, feasible=True))
        assert metrics["payload.nodes"] == 16.0
        assert metrics["payload.feasible"] == 1.0

    def test_timing_keys_excluded(self):
        metrics = extract_metrics(
            make_dump(runtime_s=0.5, elapsed_ms=2.0, phases={"map": 1.0})
        )
        assert not any("runtime" in k for k in metrics)
        assert not any(k.endswith("_ms") for k in metrics)
        assert not any("phases" in k for k in metrics)

    def test_nested_payload_flattened(self):
        metrics = extract_metrics(make_dump(search={"pruned": 9}))
        assert metrics["payload.search.pruned"] == 9.0


class TestCompareMetrics:
    def test_identical_metrics_pass(self):
        base = {"payload.nodes": 16.0, "payload.pruned": 9.0}
        regressions, compared = compare_metrics("t", base, dict(base))
        assert regressions == []
        assert compared == 2

    def test_drift_beyond_tolerance_regresses(self):
        regressions, _ = compare_metrics(
            "t", {"payload.nodes": 100.0}, {"payload.nodes": 120.0},
            rel_tolerance=0.05,
        )
        (regression,) = regressions
        assert regression.metric == "payload.nodes"
        assert "drifted" in str(regression)
        assert "payload.nodes" in str(regression)

    def test_drift_within_tolerance_passes(self):
        regressions, _ = compare_metrics(
            "t", {"payload.nodes": 100.0}, {"payload.nodes": 102.0},
            rel_tolerance=0.05,
        )
        assert regressions == []

    def test_zero_baseline_flags_any_change(self):
        regressions, _ = compare_metrics(
            "t", {"payload.pruned": 0.0}, {"payload.pruned": 1.0}
        )
        assert regressions

    def test_missing_metric_regresses(self):
        regressions, _ = compare_metrics("t", {"payload.nodes": 16.0}, {})
        (regression,) = regressions
        assert regression.current is None
        assert "missing" in str(regression)

    def test_per_metric_tolerance_override(self):
        regressions, _ = compare_metrics(
            "t", {"payload.nodes": 100.0}, {"payload.nodes": 120.0},
            rel_tolerance=0.05, tolerances={"payload.nodes": 0.5},
        )
        assert regressions == []


class TestCheckBaselines:
    @pytest.fixture()
    def dirs(self, tmp_path):
        metrics = tmp_path / "out"
        baselines = tmp_path / "baselines"
        metrics.mkdir()
        (metrics / "table1.json").write_text(
            json.dumps(make_dump(nodes=16, pruned=9))
        )
        return str(baselines), str(metrics)

    def test_update_then_check_passes(self, dirs):
        baselines, metrics = dirs
        update = check_baselines(baselines, metrics, update=True)
        assert update.updated == ["table1.json"]
        report = check_baselines(baselines, metrics)
        assert report.passed
        assert report.metrics_compared > 0
        assert "PASS" in report.describe()

    def test_update_preserves_tolerance_overrides(self, dirs, tmp_path):
        baselines, metrics = dirs
        check_baselines(baselines, metrics, update=True)
        path = tmp_path / "baselines" / "table1.json"
        doc = json.loads(path.read_text())
        doc["tolerances"] = {"payload.nodes": 0.5}
        path.write_text(json.dumps(doc))
        check_baselines(baselines, metrics, update=True)
        doc = json.loads(path.read_text())
        assert doc["tolerances"] == {"payload.nodes": 0.5}

    def test_perturbed_baseline_fails_and_names_metric(self, dirs, tmp_path):
        baselines, metrics = dirs
        check_baselines(baselines, metrics, update=True)
        path = tmp_path / "baselines" / "table1.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["payload.pruned"] = 42.0  # fabricated regression
        path.write_text(json.dumps(doc))
        report = check_baselines(baselines, metrics)
        assert not report.passed
        (regression,) = report.regressions
        assert regression.metric == "payload.pruned"
        assert "REGRESSION" in report.describe()
        assert "FAIL" in report.describe()

    def test_missing_dump_skips_unless_strict(self, dirs, tmp_path):
        baselines, metrics = dirs
        check_baselines(baselines, metrics, update=True)
        empty = tmp_path / "empty"
        empty.mkdir()
        report = check_baselines(baselines, str(empty))
        assert report.passed
        assert report.skipped == ["table1.json"]
        strict = check_baselines(baselines, str(empty), strict=True)
        assert not strict.passed
        assert "run the benchmarks first" in str(strict.regressions[0])

    def test_missing_baseline_dir_is_empty_pass(self, tmp_path):
        report = check_baselines(
            str(tmp_path / "nope"), str(tmp_path / "also-nope")
        )
        assert report.passed
        assert report.checked == []


class TestBenchCheckCli:
    def setup_dirs(self, tmp_path):
        metrics = tmp_path / "out"
        baselines = tmp_path / "baselines"
        metrics.mkdir()
        (metrics / "table1.json").write_text(
            json.dumps(make_dump(nodes=16, pruned=9))
        )
        return baselines, metrics

    def test_update_then_check_round_trip(self, tmp_path, capsys):
        baselines, metrics = self.setup_dirs(tmp_path)
        assert main([
            "bench-check", "--update",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ]) == 0
        assert "updated baseline" in capsys.readouterr().out
        assert main([
            "bench-check",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fabricated_regression_exits_non_zero(self, tmp_path, capsys):
        baselines, metrics = self.setup_dirs(tmp_path)
        main([
            "bench-check", "--update",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ])
        capsys.readouterr()
        path = baselines / "table1.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["counters.mapper.nodes_visited"] = 9999.0
        path.write_text(json.dumps(doc))
        assert main([
            "bench-check",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "counters.mapper.nodes_visited" in out

    def test_tolerance_flag(self, tmp_path, capsys):
        baselines, metrics = self.setup_dirs(tmp_path)
        main([
            "bench-check", "--update",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ])
        (metrics / "table1.json").write_text(
            json.dumps(make_dump(nodes=17, pruned=9))  # ~6% drift
        )
        capsys.readouterr()
        assert main([
            "bench-check",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ]) == 1
        capsys.readouterr()
        assert main([
            "bench-check", "--tolerance", "0.2",
            "--baselines", str(baselines), "--metrics", str(metrics),
        ]) == 0


def test_default_tolerance_is_tight():
    assert 0 < DEFAULT_REL_TOLERANCE <= 0.1


def test_regression_str_handles_missing_dump():
    text = str(Regression("table1", "<metrics dump>", None, None, 0.0))
    assert "table1" in text
    assert "run the benchmarks" in text
