"""Tests for batch synthesis (``vase batch``) and ``vase check``."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.robust.batch import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    find_sources,
    run_batch,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

GOOD = """
ENTITY amp IS
PORT (
  QUANTITY vin : IN real IS voltage;
  QUANTITY vout : OUT real IS voltage LIMITED AT 2.0 v
);
END ENTITY;
ARCHITECTURE behavioral OF amp IS
BEGIN
  vout == -5.0 * vin;
END ARCHITECTURE;
"""

BROKEN = """
ENTITY broken IS
PORT (
  QUANTITY vin : IN real IS voltage
  QUANTITY vout : OUT real IS voltage
);
END ENTITY;
ARCHITECTURE a OF broken IS
BEGIN
  vout == * vin;
END ARCHITECTURE;
"""

SEMANTIC = """
ENTITY ghostly IS
PORT (QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE a OF ghostly IS
BEGIN
  y == ghost;
END ARCHITECTURE;
"""


@pytest.fixture
def batch_dir(tmp_path):
    (tmp_path / "good.vhd").write_text(GOOD)
    (tmp_path / "broken.vhd").write_text(BROKEN)
    (tmp_path / "semantic.vhdl").write_text(SEMANTIC)
    (tmp_path / "notes.txt").write_text("not a source file")
    return tmp_path


class TestFindSources:
    def test_filters_by_suffix_and_sorts(self, batch_dir):
        names = [p.name for p in find_sources(batch_dir)]
        assert names == ["broken.vhd", "good.vhd", "semantic.vhdl"]

    def test_single_file_passthrough(self, batch_dir):
        target = batch_dir / "good.vhd"
        assert find_sources(target) == [target]

    def test_recurses_into_subdirectories(self, tmp_path):
        nested = tmp_path / "deep" / "er"
        nested.mkdir(parents=True)
        (nested / "x.vass").write_text(GOOD)
        assert [p.name for p in find_sources(tmp_path)] == ["x.vass"]


class TestRunBatch:
    def test_one_bad_file_does_not_stop_the_rest(self, batch_dir):
        report = run_batch(find_sources(batch_dir))
        assert len(report.entries) == 3
        by_name = {Path(e.file).name: e for e in report.entries}
        assert by_name["good.vhd"].status == STATUS_OK
        assert by_name["good.vhd"].design == "amp"
        assert by_name["broken.vhd"].status == STATUS_FAILED
        assert by_name["semantic.vhdl"].status == STATUS_FAILED
        assert "ghost" in by_name["semantic.vhdl"].error

    def test_parse_failures_collect_every_error(self, batch_dir):
        report = run_batch([batch_dir / "broken.vhd"])
        entry = report.entries[0]
        assert entry.status == STATUS_FAILED
        # Error-recovery parsing: more than the first syntax error.
        assert len(entry.errors) >= 2
        assert entry.error == entry.errors[0]
        assert "broken.vhd" in entry.error

    def test_missing_file_is_isolated_too(self, batch_dir):
        report = run_batch(
            [batch_dir / "nope.vhd", batch_dir / "good.vhd"]
        )
        assert report.failed == 1
        assert report.ok == 1
        assert "cannot read" in report.entries[0].error

    def test_exit_code_policy(self, batch_dir):
        report = run_batch(find_sources(batch_dir))
        assert report.exit_code() == 1  # failures present
        clean = run_batch([batch_dir / "good.vhd"])
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=True) == 0

    def test_strict_promotes_degraded(self, batch_dir):
        report = run_batch([batch_dir / "good.vhd"])
        report.entries[0].status = STATUS_DEGRADED
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_json_roundtrip(self, batch_dir):
        report = run_batch(find_sources(batch_dir))
        payload = json.loads(report.to_json())
        assert payload["files"] == 3
        assert payload["ok"] == 1
        assert payload["failed"] == 2
        statuses = {e["file"]: e["status"] for e in payload["entries"]}
        assert set(statuses.values()) == {STATUS_OK, STATUS_FAILED}

    def test_describe_summarizes(self, batch_dir):
        text = run_batch(find_sources(batch_dir)).describe()
        assert "OK" in text
        assert "FAILED" in text
        assert "3 files: 1 ok, 0 degraded, 2 failed" in text


class TestBatchCli:
    def test_batch_command(self, batch_dir, capsys):
        assert main(["batch", str(batch_dir)]) == 1
        out = capsys.readouterr().out
        assert "good.vhd" in out
        assert "FAILED" in out

    def test_batch_clean_directory_exits_zero(self, tmp_path, capsys):
        (tmp_path / "good.vhd").write_text(GOOD)
        assert main(["batch", str(tmp_path)]) == 0

    def test_batch_json_artifact(self, batch_dir, tmp_path, capsys):
        target = tmp_path / "out" / "report.json"
        main(["batch", str(batch_dir), "--json", str(target)])
        payload = json.loads(target.read_text())
        assert payload["files"] == 3

    def test_batch_empty_directory_errors(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path)]) == 1
        assert "no VASS sources" in capsys.readouterr().err

    def test_batch_over_bundled_examples(self, capsys):
        assert main(["batch", str(EXAMPLES)]) == 0
        out = capsys.readouterr().out
        assert "biquad" in out


class TestCheckCli:
    def test_check_reports_all_errors(self, batch_dir, capsys):
        assert main(["check", str(batch_dir / "broken.vhd")]) == 1
        captured = capsys.readouterr()
        assert captured.err.count("error") >= 2
        assert "broken.vhd" in captured.err
        assert "error(s)" in captured.out

    def test_check_clean_file_ok(self, batch_dir, capsys):
        assert main(["check", str(batch_dir / "good.vhd")]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_multiple_files(self, batch_dir, capsys):
        code = main(
            ["check", str(batch_dir / "good.vhd"),
             str(batch_dir / "broken.vhd")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "ok" in out  # the clean file is still reported
