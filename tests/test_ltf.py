"""Tests for the 'ltf attribute (Laplace transfer functions).

Section 3 of the paper lists transfer functions among the behavior
description styles.  ``u'ltf(num, den)`` (coefficients in ascending
powers of s) compiles into the phase-variable integrator chain of the
classical analog computer.
"""

import math

import numpy as np
import pytest

from repro.diagnostics import CompileError
from repro.compiler import compile_design
from repro.flow import synthesize
from repro.spice import ac_sweep, dc, elaborate
from repro.vhif import BlockKind, Interpreter


def wrap(body, decls=""):
    return f"""
ENTITY f IS PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;
ARCHITECTURE tf OF f IS
{decls}
BEGIN
{body}
END ARCHITECTURE;
"""


class TestStructure:
    def test_first_order_has_one_integrator(self):
        design = compile_design(
            wrap("  y == u'ltf((1.0), (1.0, 0.001));")
        )
        assert len(design.main_sfg.blocks_of_kind(BlockKind.INTEGRATE)) == 1

    def test_second_order_has_two_integrators(self):
        design = compile_design(
            wrap("  y == u'ltf((1.0), (1.0, 0.5, 0.25));")
        )
        assert len(design.main_sfg.blocks_of_kind(BlockKind.INTEGRATE)) == 2

    def test_pure_integrator(self):
        design = compile_design(wrap("  y == u'ltf((1.0), (0.0, 1.0));"))
        integrators = design.main_sfg.blocks_of_kind(BlockKind.INTEGRATE)
        assert len(integrators) == 1

    def test_improper_rejected(self):
        with pytest.raises(CompileError, match="proper"):
            compile_design(
                wrap("  y == u'ltf((1.0, 1.0, 1.0), (1.0, 1.0));")
            )

    def test_zero_order_denominator_rejected(self):
        with pytest.raises(CompileError, match="order"):
            compile_design(wrap("  y == u'ltf((1.0), (2.0));"))

    def test_nonstatic_coefficients_rejected(self):
        with pytest.raises(CompileError, match="static"):
            compile_design(wrap("  y == u'ltf((u), (1.0, 1.0));"))

    def test_zero_numerator_rejected(self):
        with pytest.raises(CompileError, match="zero"):
            compile_design(wrap("  y == u'ltf((0.0), (1.0, 1.0));"))


class TestBehavior:
    def test_first_order_step_response(self):
        # H(s) = 1/(1 + 0.01 s): tau = 10 ms.
        design = compile_design(wrap("  y == u'ltf((1.0), (1.0, 0.01));"))
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 1.0})
        traces = interp.run(0.01, probes=["y"])
        assert traces.final("y") == pytest.approx(1 - math.exp(-1), rel=5e-3)

    def test_dc_gain(self):
        # H(0) = b0/a0 = 3/2.
        design = compile_design(wrap("  y == u'ltf((3.0), (2.0, 0.001));"))
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 1.0})
        traces = interp.run(0.02, probes=["y"])
        assert traces.final("y") == pytest.approx(1.5, rel=1e-2)

    def test_pure_integrator_ramp(self):
        design = compile_design(wrap("  y == u'ltf((1.0), (0.0, 1.0));"))
        interp = Interpreter(design, dt=1e-4, inputs={"u": lambda t: 2.0})
        traces = interp.run(1.0, probes=["y"])
        assert traces.final("y") == pytest.approx(2.0, rel=1e-2)

    def test_second_order_matches_biquad_math(self):
        w0 = 2 * math.pi * 100.0
        q = 0.707
        # H(s) = w0^2/(s^2 + w0/q s + w0^2), normalized by w0^2:
        a0, a1, a2 = 1.0, 1.0 / (q * w0), 1.0 / w0**2
        design = compile_design(
            wrap(f"  y == u'ltf((1.0), ({a0!r}, {a1!r}, {a2!r}));")
        )
        interp = Interpreter(design, dt=1e-5, inputs={"u": lambda t: 1.0})
        traces = interp.run(0.05, probes=["y"])
        assert traces.final("y") == pytest.approx(1.0, rel=1e-2)

    def test_bandpass_numerator_with_s_term(self):
        # H(s) = s*tau/(1 + s*tau): high-pass; step response decays to 0.
        tau = 1e-3
        design = compile_design(
            wrap(f"  y == u'ltf((0.0, {tau!r}), (1.0, {tau!r}));")
        )
        interp = Interpreter(design, dt=1e-6, inputs={"u": lambda t: 1.0})
        traces = interp.run(8e-3, probes=["y"])
        assert traces.final("y") == pytest.approx(0.0, abs=2e-2)

    def test_direct_feedthrough_allpass_like(self):
        # H(s) = (1 + s*tau)/(1 + s*tau) = 1 exactly.
        tau = 1e-3
        design = compile_design(
            wrap(f"  y == u'ltf((1.0, {tau!r}), (1.0, {tau!r}));")
        )
        interp = Interpreter(design, dt=1e-6, inputs={"u": lambda t: 0.7})
        traces = interp.run(5e-3, probes=["y"])
        assert traces.final("y") == pytest.approx(0.7, rel=1e-3)


class TestSynthesisOfLtf:
    def test_maps_to_integrators(self):
        result = synthesize(
            wrap("  y == u'ltf((1.0), (1.0, 0.002, 0.000001));")
        )
        cats = dict(result.netlist.category_counts())
        assert cats["integ."] == 2

    def test_ac_response_matches_transfer_function(self):
        tau = 1.0 / (2 * math.pi * 500.0)  # 500 Hz pole
        result = synthesize(wrap(f"  y == u'ltf((1.0), (1.0, {tau!r}));"))
        circuit = elaborate(result.netlist, input_waves={"u": dc(0.0)})
        out = circuit.output_nodes["y"]
        response = ac_sweep(circuit.circuit, 10.0, 50e3,
                            points_per_decade=30, probes=[out],
                            ac_source="VIN_u")
        assert response.cutoff_frequency(out) == pytest.approx(500.0,
                                                               rel=0.05)
