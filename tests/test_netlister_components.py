"""Unit tests for individual component elaborations."""

import math

import pytest

from repro.library import default_library
from repro.spice import dc, elaborate, sin_wave
from repro.spice.mna import MnaSolver
from repro.synth.netlist import Netlist


def single_instance_netlist(component, params=None, n_inputs=1,
                            control=None):
    netlist = Netlist(name="t", library=default_library())
    inputs = []
    for index in range(n_inputs):
        port = f"in{index}"
        netlist.inputs[port] = index
        inputs.append(index)
    netlist.add_instance(
        component, params=params or {}, inputs=inputs, output=100,
        control=control, covers=[100],
    )
    netlist.outputs["out"] = 100
    return netlist


def dc_response(netlist, values, control_waves=None):
    waves = {f"in{i}": dc(v) for i, v in enumerate(values)}
    circuit = elaborate(netlist, input_waves=waves,
                        control_waves=control_waves)
    sim = circuit.transient(1e-3, 1e-5, probes=["n100"])
    return sim.final("n100")


class TestCascade:
    def test_positive_gain_cascade(self):
        netlist = single_instance_netlist(
            "inverting_cascade", params={"gain": 36.0}
        )
        assert dc_response(netlist, [0.05]) == pytest.approx(1.8, rel=3e-2)

    def test_negative_gain_cascade(self):
        netlist = single_instance_netlist(
            "inverting_cascade", params={"gain": -36.0}
        )
        assert dc_response(netlist, [0.05]) == pytest.approx(-1.8, rel=3e-2)


class TestSmallStages:
    def test_voltage_follower(self):
        netlist = single_instance_netlist("voltage_follower")
        assert dc_response(netlist, [0.42]) == pytest.approx(0.42, rel=1e-2)

    def test_rectifier(self):
        netlist = single_instance_netlist("rectifier")
        assert dc_response(netlist, [-0.6]) == pytest.approx(0.6, rel=1e-3)

    def test_divider(self):
        netlist = single_instance_netlist("divider", n_inputs=2)
        assert dc_response(netlist, [1.2, 0.4]) == pytest.approx(3.0,
                                                                 rel=1e-3)

    def test_log_amplifier(self):
        netlist = single_instance_netlist("log_amplifier")
        assert dc_response(netlist, [math.e]) == pytest.approx(1.0,
                                                               rel=1e-3)

    def test_limiter(self):
        netlist = single_instance_netlist(
            "limiter", params={"low": -0.5, "high": 0.5}
        )
        assert dc_response(netlist, [2.0]) == pytest.approx(0.5, rel=1e-2)

    def test_analog_switch_closed_and_open(self):
        closed = single_instance_netlist("analog_switch", control="go")
        value = dc_response(closed, [0.9], control_waves={"go": dc(1.0)})
        assert value == pytest.approx(0.9, rel=1e-2)
        opened = single_instance_netlist("analog_switch", control="go")
        value = dc_response(opened, [0.9], control_waves={"go": dc(0.0)})
        assert abs(value) < 0.01

    def test_schmitt_trigger_is_bistable(self):
        netlist = single_instance_netlist(
            "schmitt_trigger",
            params={"threshold": 0.0, "hysteresis": 0.3},
        )
        circuit = elaborate(netlist,
                            input_waves={"in0": sin_wave(1.0, 500.0)})
        sim = circuit.transient(4e-3, 2e-6, probes=["n100"])
        v = sim["n100"]
        # Output is a clean 0/1 square wave.
        import numpy as np

        mid = np.logical_and(v > 0.2, v < 0.8)
        assert float(np.mean(mid)) < 0.05

    def test_differentiator(self):
        netlist = single_instance_netlist("differentiator")
        circuit = elaborate(
            netlist, input_waves={"in0": lambda t: 100.0 * t}
        )
        sim = circuit.transient(2e-3, 1e-6, probes=["n100"])
        # out = RC * dv/dt with RC = 1e-3 s -> 0.1 V for 100 V/s.
        assert sim.final("n100") == pytest.approx(0.1, rel=0.05)

    def test_unknown_component_rejected(self):
        from repro.library import ComponentLibrary, ComponentSpec
        from repro.diagnostics import SynthesisError

        library = ComponentLibrary(
            [ComponentSpec(name="mystery", category="?", opamps=1)],
            name="odd",
        )
        netlist = Netlist(name="t", library=library)
        netlist.inputs["in0"] = 0
        netlist.add_instance("mystery", inputs=[0], output=1)
        with pytest.raises(SynthesisError, match="elaboration"):
            elaborate(netlist, input_waves={"in0": dc(0.0)})
