"""Unit tests for the FSM half of VHIF."""

import pytest

from repro.diagnostics import VaseError
from repro.vass.parser import parse_expression
from repro.vhif.fsm import (
    ALWAYS,
    AboveEvent,
    AllOf,
    AnyOf,
    BoolTest,
    DataOp,
    ExprCondition,
    Fsm,
    Not,
    PortEvent,
    SignalEquals,
    START_STATE,
    sensitivity_condition,
)


class TestConditions:
    def test_above_event_key_includes_threshold(self):
        ev = AboveEvent(quantity="line", threshold=0.2)
        assert ev.key == "line'above(0.2)"

    def test_above_event_evaluation(self):
        ev = AboveEvent(quantity="line", threshold=0.2)
        assert ev.evaluate({"event:line'above(0.2)": True})
        assert not ev.evaluate({})

    def test_port_event(self):
        ev = PortEvent(name="sclk")
        assert ev.evaluate({"event:sclk": True})
        assert not ev.evaluate({"event:sclk": False})

    def test_signal_equals(self):
        cond = SignalEquals(name="c1", value="1")
        assert cond.evaluate({"c1": "1"})
        assert not cond.evaluate({"c1": "0"})

    def test_bool_test_with_negate(self):
        assert BoolTest(name="f", negate=True).evaluate({"f": False})

    def test_not(self):
        cond = Not(operand=SignalEquals(name="c", value="1"))
        assert cond.evaluate({"c": "0"})

    def test_any_of_is_or(self):
        cond = AnyOf(operands=(
            PortEvent(name="a"), PortEvent(name="b")))
        assert cond.evaluate({"event:b": True})
        assert not cond.evaluate({})

    def test_all_of_is_and(self):
        cond = AllOf(operands=(
            SignalEquals(name="x", value="1"),
            SignalEquals(name="y", value="1"),
        ))
        assert cond.evaluate({"x": "1", "y": "1"})
        assert not cond.evaluate({"x": "1", "y": "0"})

    def test_always(self):
        assert ALWAYS.evaluate({})

    def test_event_names_aggregate(self):
        cond = AnyOf(operands=(
            AboveEvent(quantity="q", threshold=1.0),
            PortEvent(name="clk"),
        ))
        assert cond.event_names() == frozenset({"q'above(1)", "clk"})

    def test_expr_condition_evaluates_vass_expression(self):
        cond = ExprCondition(expr=parse_expression("x > 2.0"), text="x > 2.0")
        assert cond.evaluate({"x": 3.0})
        assert not cond.evaluate({"x": 1.0})

    def test_sensitivity_condition_single(self):
        ev = PortEvent(name="clk")
        assert sensitivity_condition([ev]) is ev

    def test_sensitivity_condition_multiple_is_or(self):
        cond = sensitivity_condition([PortEvent(name="a"), PortEvent(name="b")])
        assert isinstance(cond, AnyOf)

    def test_sensitivity_condition_empty_rejected(self):
        with pytest.raises(VaseError):
            sensitivity_condition([])


class TestFsmStructure:
    def test_start_state_exists(self):
        fsm = Fsm("p")
        assert START_STATE in fsm
        assert fsm.n_states() == 0  # start not counted

    def test_add_state_and_transition(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        fsm.add_transition(START_STATE, "s1", PortEvent(name="e"))
        assert fsm.n_states() == 1
        assert len(fsm.transitions_from(START_STATE)) == 1

    def test_duplicate_state_rejected(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        with pytest.raises(VaseError):
            fsm.add_state("s1")

    def test_transition_to_unknown_state_rejected(self):
        fsm = Fsm("p")
        with pytest.raises(VaseError):
            fsm.add_transition(START_STATE, "nowhere")

    def test_validate_unreachable_state(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        fsm.add_state("island")
        fsm.add_transition(START_STATE, "s1")
        with pytest.raises(VaseError, match="unreachable"):
            fsm.validate()

    def test_validate_start_without_resume(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        with pytest.raises(VaseError, match="resume"):
            fsm.validate()

    def test_output_signals(self):
        fsm = Fsm("p")
        state = fsm.add_state("s1")
        state.operations.append(
            DataOp(target="c1", expr=parse_expression("'1'"), is_signal=True)
        )
        state.operations.append(
            DataOp(target="n", expr=parse_expression("2.0"), is_signal=False)
        )
        assert fsm.output_signals() == {"c1"}

    def test_event_names_from_transitions(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        fsm.add_transition(
            START_STATE, "s1", AboveEvent(quantity="q", threshold=0.5)
        )
        assert "q'above(0.5)" in fsm.event_names()


class TestDatapathCounting:
    def test_distinct_targets_counted(self):
        fsm = Fsm("p")
        s1 = fsm.add_state("s1")
        s2 = fsm.add_state("s2")
        s1.operations.append(
            DataOp(target="c", expr=parse_expression("'1'"), is_signal=True)
        )
        s2.operations.append(
            DataOp(target="c", expr=parse_expression("'0'"), is_signal=True)
        )
        # One memory element (c), literal sources cost nothing.
        assert fsm.datapath_elements() == 1

    def test_operator_expressions_counted(self):
        fsm = Fsm("p")
        s1 = fsm.add_state("s1")
        s1.operations.append(
            DataOp(target="n", expr=parse_expression("n + 1.0"))
        )
        # One target + one operator expression.
        assert fsm.datapath_elements() == 2

    def test_duplicate_operator_expression_shared(self):
        fsm = Fsm("p")
        s1 = fsm.add_state("s1")
        s2 = fsm.add_state("s2")
        s1.operations.append(DataOp(target="a", expr=parse_expression("x + y")))
        s2.operations.append(DataOp(target="b", expr=parse_expression("x + y")))
        # Two targets share one adder element.
        assert fsm.datapath_elements() == 3

    def test_state_reads_and_writes(self):
        fsm = Fsm("p")
        s = fsm.add_state("s1")
        s.operations.append(DataOp(target="a", expr=parse_expression("x + y")))
        assert s.writes() == {"a"}
        assert s.reads() == {"x", "y"}

    def test_describe_smoke(self):
        fsm = Fsm("p")
        fsm.add_state("s1")
        fsm.add_transition(START_STATE, "s1", PortEvent(name="e"))
        assert "s1" in fsm.describe()
