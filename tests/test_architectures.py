"""Tests for multi-architecture entities and architecture selection."""

import pytest

from repro.diagnostics import SemanticError
from repro.compiler import compile_design
from repro.flow import synthesize
from repro.vass.parser import parse_source
from repro.vass.semantics import analyze
from repro.vhif import BlockKind, Interpreter

TWO_ARCH = """
ENTITY gain IS
PORT (QUANTITY u : IN real; QUANTITY y : OUT real);
END ENTITY;

ARCHITECTURE slow OF gain IS
BEGIN
  y == 2.0 * u;
END ARCHITECTURE;

ARCHITECTURE fast OF gain IS
BEGIN
  y == 10.0 * u;
END ARCHITECTURE;
"""


class TestArchitectureSelection:
    def test_default_is_last_analyzed(self):
        design = analyze(parse_source(TWO_ARCH))
        assert design.architecture.name == "fast"

    def test_select_by_name(self):
        design = analyze(parse_source(TWO_ARCH), architecture_name="slow")
        assert design.architecture.name == "slow"

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SemanticError, match="ghost"):
            analyze(parse_source(TWO_ARCH), architecture_name="ghost")

    def test_compile_selected_architecture(self):
        slow = compile_design(TWO_ARCH, architecture_name="slow")
        fast = compile_design(TWO_ARCH, architecture_name="fast")
        slow_gain = slow.main_sfg.blocks_of_kind(BlockKind.SCALE)[0].gain
        fast_gain = fast.main_sfg.blocks_of_kind(BlockKind.SCALE)[0].gain
        assert slow_gain == 2.0
        assert fast_gain == 10.0

    def test_synthesize_selected_architecture(self):
        slow = synthesize(TWO_ARCH, architecture_name="slow")
        fast = synthesize(TWO_ARCH, architecture_name="fast")
        assert slow.estimate.area <= fast.estimate.area

    def test_behavior_of_each(self):
        for name, expected in (("slow", 1.0), ("fast", 5.0)):
            design = compile_design(TWO_ARCH, architecture_name=name)
            interp = Interpreter(design, dt=1e-6,
                                 inputs={"u": lambda t: 0.5})
            interp.step()
            assert float(interp.probe("y")) == pytest.approx(expected)
