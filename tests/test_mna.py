"""Tests for the MNA circuit simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnostics import SimulationError
from repro.spice.mna import (
    Circuit,
    MnaSolver,
    dc,
    pulse_wave,
    pwl_wave,
    simulate_transient,
    sin_wave,
)
from repro.spice.macromodel import OpAmpMacro, add_limiter_stage, add_opamp


class TestWaveforms:
    def test_dc(self):
        assert dc(3.0)(123.0) == 3.0

    def test_sin(self):
        wave = sin_wave(2.0, 1000.0)
        assert wave(0.0) == pytest.approx(0.0)
        assert wave(0.25e-3) == pytest.approx(2.0)

    def test_sin_offset(self):
        wave = sin_wave(1.0, 1000.0, offset=0.5)
        assert wave(0.0) == pytest.approx(0.5)

    def test_pulse(self):
        wave = pulse_wave(0.0, 1.0, delay=1e-3, rise=1e-6, fall=1e-6,
                          width=1e-3, period=4e-3)
        assert wave(0.0) == 0.0
        assert wave(1.5e-3) == 1.0
        assert wave(3.0e-3) == 0.0
        assert wave(5.5e-3) == 1.0  # periodic

    def test_pwl(self):
        wave = pwl_wave([(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)])
        assert wave(0.5) == pytest.approx(1.0)
        assert wave(5.0) == pytest.approx(2.0)


class TestDcAnalysis:
    def test_voltage_divider(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(10.0))
        c.resistor("R1", "in", "mid", 1e3)
        c.resistor("R2", "mid", "0", 3e3)
        op = MnaSolver(c).dc_operating_point()
        assert op["mid"] == pytest.approx(7.5)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource("I1", "0", "out", dc(1e-3))
        c.resistor("R1", "out", "0", 2e3)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(2.0)

    def test_vcvs(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        c.resistor("Rl", "in", "0", 1e6)
        c.vcvs("E1", "out", "0", "in", "0", 5.0)
        c.resistor("R2", "out", "0", 1e3)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(5.0)

    def test_vccs(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(2.0))
        c.vccs("G1", "0", "out", "in", "0", 1e-3)  # 2 mA into out
        c.resistor("R1", "out", "0", 1e3)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(2.0)

    def test_function_source(self):
        c = Circuit()
        c.vsource("V1", "a", "0", dc(3.0))
        c.vsource("V2", "b", "0", dc(4.0))
        c.resistor("Ra", "a", "0", 1e6)
        c.resistor("Rb", "b", "0", 1e6)
        c.function_source("F1", "out", ["a", "b"],
                          lambda x, y: math.hypot(x, y))
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(5.0, rel=1e-6)

    def test_saturating_vcvs_linear_region(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1e-4))
        c.resistor("Rl", "in", "0", 1e6)
        c.saturating_vcvs("E1", "out", "0", "in", "0", 1000.0, 5.0)
        c.resistor("R2", "out", "0", 1e6)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(0.1, rel=1e-2)

    def test_saturating_vcvs_clips(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        c.resistor("Rl", "in", "0", 1e6)
        c.saturating_vcvs("E1", "out", "0", "in", "0", 1000.0, 5.0)
        c.resistor("R2", "out", "0", 1e6)
        op = MnaSolver(c).dc_operating_point()
        assert abs(op["out"]) <= 5.0
        assert op["out"] == pytest.approx(5.0, rel=1e-2)


class TestTransient:
    def test_rc_charging(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6)
        result = MnaSolver(c).transient(5e-3, 1e-5, probes=["out"])
        analytic = 1.0 - math.exp(-5.0)
        assert result.final("out") == pytest.approx(analytic, abs=5e-3)

    def test_rc_time_constant(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-6)
        result = MnaSolver(c).transient(1e-3, 1e-6, probes=["out"])
        # After one tau, ~63.2 %.
        assert result.final("out") == pytest.approx(0.632, abs=5e-3)

    def test_capacitor_initial_condition(self):
        c = Circuit()
        c.resistor("R1", "out", "0", 1e3)
        c.capacitor("C1", "out", "0", 1e-6, ic=2.0)
        result = MnaSolver(c).transient(1e-3, 1e-6, probes=["out"])
        assert result["out"][0] == pytest.approx(2.0, rel=5e-2)
        assert result.final("out") == pytest.approx(2.0 * math.exp(-1.0),
                                                    rel=5e-2)

    def test_sine_through_divider(self):
        c = Circuit()
        c.vsource("V1", "in", "0", sin_wave(2.0, 1e3))
        c.resistor("R1", "in", "out", 1e3)
        c.resistor("R2", "out", "0", 1e3)
        result = simulate_transient(c, 2e-3, 1e-6, probes=["out"])
        assert np.max(result["out"]) == pytest.approx(1.0, rel=1e-2)

    def test_switch_follows_control(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        c.vsource("VC", "ctl", "0", pulse_wave(0.0, 1.0, 1e-3, 1e-6, 1e-6,
                                               5e-3, 10e-3))
        c.switch("S1", "in", "out", "ctl")
        c.resistor("RL", "out", "0", 1e4)
        result = simulate_transient(c, 3e-3, 1e-5, probes=["out"])
        v = result["out"]
        assert v[10] == pytest.approx(0.0, abs=1e-3)   # before control
        assert v[-1] == pytest.approx(1.0, rel=2e-2)   # switch closed

    def test_unknown_probe_rejected(self):
        c = Circuit()
        c.vsource("V1", "a", "0", dc(1.0))
        c.resistor("R", "a", "0", 1.0e3)
        with pytest.raises(SimulationError):
            MnaSolver(c).transient(1e-3, 1e-5, probes=["ghost"])

    def test_bad_timestep_rejected(self):
        c = Circuit()
        c.vsource("V1", "a", "0", dc(1.0))
        c.resistor("R", "a", "0", 1.0e3)
        with pytest.raises(SimulationError):
            MnaSolver(c).transient(1e-3, 0.0)


class TestCircuitConstruction:
    def test_duplicate_element_rejected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(SimulationError):
            c.resistor("R1", "b", "0", 1e3)

    def test_nonpositive_resistor_rejected(self):
        c = Circuit()
        with pytest.raises(SimulationError):
            c.resistor("R1", "a", "0", 0.0)

    def test_nonpositive_capacitor_rejected(self):
        c = Circuit()
        with pytest.raises(SimulationError):
            c.capacitor("C1", "a", "0", -1e-9)

    def test_ground_aliases(self):
        c = Circuit()
        c.vsource("V1", "a", "gnd", dc(1.0))
        c.resistor("R1", "a", "0", 1e3)
        op = MnaSolver(c).dc_operating_point()
        assert op["a"] == pytest.approx(1.0)


class TestOpAmpMacromodel:
    def test_follower(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(1.0))
        add_opamp(c, "OA", "in", "out", "out")
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(1.0, rel=1e-3)

    def test_inverting_gain(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(0.25))
        c.resistor("R1", "in", "vm", 10e3)
        c.resistor("RF", "vm", "out", 40e3)
        add_opamp(c, "OA", "0", "vm", "out")
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(-1.0, rel=1e-2)

    def test_noninverting_gain(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(0.5))
        c.resistor("RG", "vm", "0", 10e3)
        c.resistor("RF", "vm", "out", 10e3)
        add_opamp(c, "OA", "in", "vm", "out")
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(1.0, rel=1e-2)

    def test_output_saturation(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(2.0))
        c.resistor("R1", "in", "vm", 10e3)
        c.resistor("RF", "vm", "out", 100e3)
        add_opamp(c, "OA", "0", "vm", "out", OpAmpMacro(vsat=3.0))
        op = MnaSolver(c).dc_operating_point()
        assert abs(op["out"]) < 3.05

    def test_limiter_stage_passes_small(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(0.5))
        c.resistor("Rin", "in", "0", 1e6)
        add_limiter_stage(c, "LIM", "in", "out", level=1.5)
        c.resistor("RL", "out", "0", 270.0)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(0.5, rel=1e-2)

    def test_limiter_stage_clips_large(self):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(3.0))
        c.resistor("Rin", "in", "0", 1e6)
        add_limiter_stage(c, "LIM", "in", "out", level=1.5)
        c.resistor("RL", "out", "0", 270.0)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(1.5 * 270 / 271, rel=1e-2)

    def test_pole_limits_bandwidth(self):
        # A follower with a 1 kHz pole attenuates a 100 kHz signal.
        c = Circuit()
        c.vsource("V1", "in", "0", sin_wave(1.0, 100e3))
        add_opamp(c, "OA", "in", "out", "out", OpAmpMacro(pole_hz=1e3))
        c.resistor("RL", "out", "0", 1e5)
        result = simulate_transient(c, 1e-4, 1e-7, probes=["out"])
        assert np.max(np.abs(result["out"][len(result["out"]) // 2:])) < 0.6


class TestProperties:
    @given(
        st.floats(min_value=100.0, max_value=1e5),
        st.floats(min_value=100.0, max_value=1e5),
        st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_divider_formula(self, r1, r2, vin):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(vin))
        c.resistor("R1", "in", "out", r1)
        c.resistor("R2", "out", "0", r2)
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(vin * r2 / (r1 + r2), rel=1e-6,
                                          abs=1e-9)

    @given(st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_inverting_amp_linearity(self, vin):
        c = Circuit()
        c.vsource("V1", "in", "0", dc(vin))
        c.resistor("R1", "in", "vm", 10e3)
        c.resistor("RF", "vm", "out", 20e3)
        add_opamp(c, "OA", "0", "vm", "out", OpAmpMacro(vsat=10.0))
        op = MnaSolver(c).dc_operating_point()
        assert op["out"] == pytest.approx(-2.0 * vin, rel=1e-2, abs=1e-3)
