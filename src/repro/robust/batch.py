"""Batch synthesis: many VASS files, per-file fault isolation.

``vase batch <dir>`` runs the full flow over every ``.vhd``/``.vhdl``
file it finds and keeps going when individual files fail: a parse error
in one design must not cost the remaining ninety-nine.  Each file lands
in exactly one bucket:

* ``ok`` — synthesized cleanly;
* ``degraded`` — synthesized, but only after the recovery ladder
  loosened something (the entry records every
  :class:`~repro.robust.recovery.RecoveryEvent`);
* ``failed`` — no netlist: syntax errors (collected with the parser's
  error-recovery mode, so *all* of them are reported), semantic or
  synthesis errors, or an unexpected exception.

The exit-code policy is deliberate: ``0`` when every file is at least
degraded, ``1`` when anything failed — and ``--strict`` promotes
degraded results to failures for CI gates that must not ship loosened
constraints silently.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

#: Per-file outcome buckets.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"

#: Source suffixes ``vase batch <dir>`` picks up.
SOURCE_SUFFIXES = (".vhd", ".vhdl", ".vass")


@dataclass
class BatchEntry:
    """Outcome of one file of a batch run."""

    file: str
    status: str
    elapsed_s: float = 0.0
    #: name of the synthesized design (ok / degraded only)
    design: Optional[str] = None
    #: Table-1 style component summary (ok / degraded only)
    summary: str = ""
    #: the fatal error (failed only; first of ``errors`` when parsing)
    error: str = ""
    #: every collected syntax error (parser error-recovery mode)
    errors: List[str] = field(default_factory=list)
    #: non-fatal diagnostics of the synthesis
    warnings: List[str] = field(default_factory=list)
    #: recovery-ladder events, when the ladder ran
    recovery: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 6),
            "design": self.design,
            "summary": self.summary,
            "error": self.error,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "recovery": list(self.recovery),
        }

    def describe(self) -> str:
        text = f"{self.status.upper():9s} {self.file}"
        if self.design:
            text += f" ({self.design})"
        if self.status == STATUS_FAILED:
            head = self.error or (self.errors[0] if self.errors else "")
            if head:
                text += f": {head}"
            extra = len(self.errors) - 1
            if extra > 0:
                text += f" (+{extra} more)"
        elif self.recovery:
            text += f" [recovery: {len(self.recovery)} attempts]"
        return text


@dataclass
class BatchReport:
    """Aggregate of a whole batch run."""

    entries: List[BatchEntry] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_OK)

    @property
    def degraded(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_DEGRADED)

    @property
    def failed(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_FAILED)

    def as_dict(self) -> Dict[str, object]:
        return {
            "files": len(self.entries),
            "ok": self.ok,
            "degraded": self.degraded,
            "failed": self.failed,
            "elapsed_s": round(self.elapsed_s, 6),
            "entries": [e.as_dict() for e in self.entries],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def describe(self) -> str:
        lines = [entry.describe() for entry in self.entries]
        lines.append(
            f"{len(self.entries)} files: {self.ok} ok, "
            f"{self.degraded} degraded, {self.failed} failed "
            f"({self.elapsed_s:.2f} s)"
        )
        return "\n".join(lines)

    def exit_code(self, strict: bool = False) -> int:
        """``0`` all usable, ``1`` any failure (degraded too if strict)."""
        if self.failed:
            return 1
        if strict and self.degraded:
            return 1
        return 0


def find_sources(root: Path) -> List[Path]:
    """The batch work list: VASS sources under ``root``, sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*")
        if path.is_file() and path.suffix.lower() in SOURCE_SUFFIXES
    )


def run_batch(
    files: Iterable[Path],
    options: Optional[object] = None,
    library: Optional[object] = None,
) -> BatchReport:
    """Synthesize every file, isolating failures per file.

    ``options`` is a :class:`~repro.flow.FlowOptions` (defaults enable
    the recovery ladder — batch runs want usable-but-degraded results
    over hard stops).  Nothing a single file does — syntax error,
    infeasible constraints, even an unexpected exception — stops the
    remaining files.
    """
    # Imported lazily: repro.flow imports the mapper, which imports the
    # fault-injection hooks from this package.
    from repro.diagnostics import Severity, VaseError
    from repro.flow import FlowOptions, synthesize
    from repro.vass.parser import parse_source_collecting

    if options is None:
        options = FlowOptions(recovery=True)

    report = BatchReport()
    batch_start = time.perf_counter()
    for path in files:
        path = Path(path)
        entry = BatchEntry(file=str(path), status=STATUS_FAILED)
        start = time.perf_counter()
        try:
            text = path.read_text()
        except OSError as err:
            entry.error = f"cannot read: {err}"
            entry.elapsed_s = time.perf_counter() - start
            report.entries.append(entry)
            continue
        try:
            _units, parse_errors = parse_source_collecting(
                text, filename=str(path)
            )
            if parse_errors:
                entry.errors = [str(err) for err in parse_errors]
                entry.error = entry.errors[0]
                entry.elapsed_s = time.perf_counter() - start
                report.entries.append(entry)
                continue
            result = synthesize(
                text,
                options=options,
                library=library,
                source_filename=str(path),
            )
        except VaseError as err:
            entry.error = str(err)
        except Exception as err:  # noqa: BLE001 - isolation is the point
            entry.error = f"internal error: {type(err).__name__}: {err}"
        else:
            entry.design = result.design.name
            entry.summary = result.summary
            entry.warnings = [
                str(d)
                for d in result.diagnostics
                if d.severity is not Severity.NOTE
            ]
            entry.recovery = [e.as_dict() for e in result.recovery]
            recovered = any(
                e.outcome == "recovered" for e in result.recovery
            )
            entry.status = STATUS_DEGRADED if recovered else STATUS_OK
        entry.elapsed_s = time.perf_counter() - start
        report.entries.append(entry)
    report.elapsed_s = time.perf_counter() - batch_start
    return report
