"""Batch synthesis: many VASS files, per-file fault isolation.

``vase batch <dir>`` runs the full flow over every ``.vhd``/``.vhdl``
file it finds and keeps going when individual files fail: a parse error
in one design must not cost the remaining ninety-nine.  Each file lands
in exactly one bucket:

* ``ok`` — synthesized cleanly;
* ``degraded`` — synthesized, but only after the recovery ladder
  loosened something (the entry records every
  :class:`~repro.robust.recovery.RecoveryEvent`);
* ``failed`` — no netlist: syntax errors (collected with the parser's
  error-recovery mode, so *all* of them are reported), semantic or
  synthesis errors, or an unexpected exception;
* ``cancelled`` — the run was cancelled (or exhausted its wall-clock
  budget) before the file could finish.

``parallel`` selects the execution backend
(:class:`~repro.pipeline.ParallelOptions`: ``serial``, the in-process
``thread`` pool, or ``process`` spawn workers that sidestep the GIL);
results come back in input order, so a parallel run's report is
identical to the serial one no matter the backend (``--no-timing``
additionally zeroes the wall-clock fields, making the JSON
byte-identical).  An :class:`~repro.pipeline.ArtifactCache` passed as
``cache`` is shared by every file — and, with a ``disk_dir``, across
whole batch runs *and* across the worker processes of the ``process``
backend, which share the disk tier.

The exit-code policy is deliberate: ``0`` when every file is at least
degraded, ``1`` when anything failed — and ``--strict`` promotes
degraded results to failures for CI gates that must not ship loosened
constraints silently.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.instrument.events import (
    CATEGORY_LIFECYCLE,
    active_bus,
    current_run_id,
    new_run_id,
    run_scope,
)
from repro.pipeline import (
    ArtifactCache,
    ParallelOptions,
    create_executor,
    stats_delta,
    worker_cache,
)

#: Per-file outcome buckets.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
#: the run was cancelled (or ran out of its wall-clock budget) before
#: this file could finish
STATUS_CANCELLED = "cancelled"

#: Source suffixes ``vase batch <dir>`` picks up.
SOURCE_SUFFIXES = (".vhd", ".vhdl", ".vass")


@dataclass
class BatchEntry:
    """Outcome of one file of a batch run."""

    file: str
    status: str
    elapsed_s: float = 0.0
    #: name of the synthesized design (ok / degraded only)
    design: Optional[str] = None
    #: Table-1 style component summary (ok / degraded only)
    summary: str = ""
    #: the fatal error (failed only; first of ``errors`` when parsing)
    error: str = ""
    #: every collected syntax error (parser error-recovery mode)
    errors: List[str] = field(default_factory=list)
    #: non-fatal diagnostics of the synthesis
    warnings: List[str] = field(default_factory=list)
    #: recovery-ladder events, when the ladder ran
    recovery: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self, timing: bool = True) -> Dict[str, object]:
        return {
            "file": self.file,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 6) if timing else 0.0,
            "design": self.design,
            "summary": self.summary,
            "error": self.error,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "recovery": list(self.recovery),
        }

    def describe(self) -> str:
        text = f"{self.status.upper():9s} {self.file}"
        if self.design:
            text += f" ({self.design})"
        if self.status == STATUS_FAILED:
            head = self.error or (self.errors[0] if self.errors else "")
            if head:
                text += f": {head}"
            extra = len(self.errors) - 1
            if extra > 0:
                text += f" (+{extra} more)"
        elif self.recovery:
            text += f" [recovery: {len(self.recovery)} attempts]"
        return text


@dataclass
class BatchReport:
    """Aggregate of a whole batch run."""

    entries: List[BatchEntry] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: counters of the shared artifact cache, when one was used
    cache: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_OK)

    @property
    def degraded(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_DEGRADED)

    @property
    def failed(self) -> int:
        return sum(1 for e in self.entries if e.status == STATUS_FAILED)

    @property
    def cancelled(self) -> int:
        return sum(
            1 for e in self.entries if e.status == STATUS_CANCELLED
        )

    def as_dict(self, timing: bool = True) -> Dict[str, object]:
        """JSON-ready report; ``timing=False`` zeroes wall-clock fields
        (and drops the cache counters) so two runs of the same inputs
        serialize byte-identically."""
        payload: Dict[str, object] = {
            "files": len(self.entries),
            "ok": self.ok,
            "degraded": self.degraded,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "elapsed_s": round(self.elapsed_s, 6) if timing else 0.0,
            "entries": [e.as_dict(timing=timing) for e in self.entries],
        }
        if timing and self.cache is not None:
            payload["cache"] = self.cache
        return payload

    def to_json(self, indent: int = 2, timing: bool = True) -> str:
        return json.dumps(self.as_dict(timing=timing), indent=indent)

    def describe(self, timing: bool = True) -> str:
        lines = [entry.describe() for entry in self.entries]
        tail = (
            f"{len(self.entries)} files: {self.ok} ok, "
            f"{self.degraded} degraded, {self.failed} failed"
        )
        if self.cancelled:
            tail += f", {self.cancelled} cancelled"
        if timing:
            tail += f" ({self.elapsed_s:.2f} s)"
        lines.append(tail)
        return "\n".join(lines)

    def exit_code(self, strict: bool = False) -> int:
        """``0`` all usable, ``1`` any failure or cancellation
        (degraded too if strict)."""
        if self.failed or self.cancelled:
            return 1
        if strict and self.degraded:
            return 1
        return 0


def find_sources(root: Path) -> List[Path]:
    """The batch work list: VASS sources under ``root``, sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*")
        if path.is_file() and path.suffix.lower() in SOURCE_SUFFIXES
    )


#: nominal synthesis throughput used to turn a file size into a
#: duration estimate when the ledger has no history for the file
_EST_BYTES_PER_SECOND = 1e6


def schedule_longest_first(files, ledger=None) -> List[int]:
    """Submission order for a batch: indices into ``files``, longest
    first.

    Long-pole scheduling: a parallel batch that starts its slowest
    file last serializes the whole tail of the run behind it.  With a
    run ledger available, each file's expected duration is the
    ``total_s`` of its most recent ``synth`` record (matched by source
    label); files the ledger has never seen fall back to a
    size-derived estimate.  Ties (and the no-ledger case with
    equal-sized files) keep input order, so the schedule is
    deterministic.  Only *scheduling* is affected — batch reports
    always list entries in input order.
    """
    durations: Dict[str, float] = {}
    if ledger is not None:
        try:
            for record in ledger.records():
                if record.kind != "synth":
                    continue
                total = record.durations.get("total_s")
                if total is not None:
                    durations[record.source] = float(total)
        except OSError:  # pragma: no cover - unreadable ledger
            pass
    weighted = []
    for index, path in enumerate(files):
        weight = durations.get(str(path))
        if weight is None:
            try:
                size = Path(path).stat().st_size
            except OSError:
                size = 0
            weight = size / _EST_BYTES_PER_SECOND
        weighted.append((-weight, index))
    return [index for _, index in sorted(weighted)]


def run_source(
    text: str,
    label: str,
    options,
    library=None,
    entity_name: Optional[str] = None,
):
    """Synthesize one source text with per-entry fault isolation.

    The shared execution core of ``vase batch`` and the ``vase serve``
    job queue: every failure mode — syntax errors (collected, so all
    of them are reported), semantic/synthesis errors, unexpected
    exceptions — becomes a FAILED :class:`BatchEntry` instead of an
    exception.  Returns ``(entry, result, error)``: ``result`` is the
    :class:`~repro.flow.SynthesisResult` on success (the server builds
    its artifacts from it), ``error`` the captured exception on
    failure (the server feeds it to the ledger's ``record_for_failure``);
    exactly one of the two is not ``None`` unless parsing failed, in
    which case ``error`` is the first collected parse error.
    """
    # Imported lazily: repro.flow imports the mapper, which imports the
    # fault-injection hooks from this package.
    from repro.diagnostics import Severity, VaseError
    from repro.flow import synthesize
    from repro.robust.lifecycle import CancelledError
    from repro.vass.parser import parse_source_collecting

    entry = BatchEntry(file=label, status=STATUS_FAILED)
    start = time.perf_counter()
    result = None
    error: Optional[BaseException] = None
    try:
        _units, parse_errors = parse_source_collecting(
            text, filename=label
        )
        if parse_errors:
            entry.errors = [str(err) for err in parse_errors]
            entry.error = entry.errors[0]
            entry.elapsed_s = time.perf_counter() - start
            return entry, None, parse_errors[0]
        result = synthesize(
            text,
            entity_name=entity_name,
            options=options,
            library=library,
            source_filename=label,
        )
    except CancelledError as err:
        # Before VaseError: CancelledError subclasses it, and a
        # cancelled run is an outcome of its own, not a failure.
        entry.status = STATUS_CANCELLED
        entry.error = str(err)
        error = err
    except VaseError as err:
        entry.error = str(err)
        error = err
    except Exception as err:  # noqa: BLE001 - isolation is the point
        entry.error = f"internal error: {type(err).__name__}: {err}"
        error = err
    else:
        entry.design = result.design.name
        entry.summary = result.summary
        entry.warnings = [
            str(d)
            for d in result.diagnostics
            if d.severity is not Severity.NOTE
        ]
        entry.recovery = [e.as_dict() for e in result.recovery]
        recovered = any(
            e.outcome == "recovered" for e in result.recovery
        )
        entry.status = STATUS_DEGRADED if recovered else STATUS_OK
    entry.elapsed_s = time.perf_counter() - start
    return entry, result, error


def _run_one(path: Path, options, library) -> BatchEntry:
    """Synthesize one file; every failure becomes a FAILED entry."""
    bus = active_bus()
    if bus is not None:
        bus.publish(
            CATEGORY_LIFECYCLE,
            {"kind": "file", "phase": "started", "file": str(path)},
        )
    start = time.perf_counter()
    try:
        text = path.read_text()
    except OSError as err:
        entry = BatchEntry(
            file=str(path), status=STATUS_FAILED,
            error=f"cannot read: {err}",
        )
        entry.elapsed_s = time.perf_counter() - start
        return _finish_entry(entry, bus)
    entry, _result, _error = run_source(
        text, str(path), options, library
    )
    return _finish_entry(entry, bus)


def _finish_entry(entry: BatchEntry, bus) -> BatchEntry:
    """Publish the terminal lifecycle event of one file's entry."""
    if bus is not None:
        payload: Dict[str, object] = {
            "kind": "file",
            "phase": entry.status,
            "file": entry.file,
            "elapsed_s": entry.elapsed_s,
        }
        if entry.design:
            payload["design"] = entry.design
        if entry.status in (STATUS_FAILED, STATUS_CANCELLED) \
                and (entry.error or entry.errors):
            payload["error"] = entry.error or entry.errors[0]
        bus.publish(CATEGORY_LIFECYCLE, payload)
    return entry


def _run_one_remote(
    path_str: str, options, library, cache_dir: Optional[str]
):
    """One batch file inside a worker process.

    The worker rebuilds its cache from the shared disk directory (the
    memory tier stays warm per worker across tasks) and ships back the
    cache-counter delta this file caused, so the submitting side's
    aggregate report stays truthful."""
    from dataclasses import replace

    cache = worker_cache(cache_dir) if cache_dir is not None else None
    before = cache.stats.as_dict() if cache is not None else None
    opts = replace(options, cache=cache) if cache is not None else options
    entry = _run_one(Path(path_str), opts, library)
    delta = (
        stats_delta(before, cache.stats.as_dict())
        if cache is not None else None
    )
    return entry, delta


def run_batch(
    files: Iterable[Path],
    options: Optional[object] = None,
    library: Optional[object] = None,
    parallel: Optional[ParallelOptions] = None,
    cache: Optional[ArtifactCache] = None,
    ledger=None,
    source_label: Optional[str] = None,
    jobs: Optional[int] = None,
    journal=None,
) -> BatchReport:
    """Synthesize every file, isolating failures per file.

    ``options`` is a :class:`~repro.flow.FlowOptions` (defaults enable
    the recovery ladder — batch runs want usable-but-degraded results
    over hard stops).  Nothing a single file does — syntax error,
    infeasible constraints, even an unexpected exception — stops the
    remaining files.

    ``parallel`` selects the execution backend and width
    (:class:`~repro.pipeline.ParallelOptions`; defaults to
    ``options.parallel``).  Entries always come back in input order,
    so the report content is independent of backend and worker count.
    Under a parallel backend, *submission* order is long-pole
    scheduled (:func:`schedule_longest_first`): the files the ledger
    knows to be slowest start first, so a straggler never serializes
    the tail of the run.  ``cache`` is an artifact cache shared by
    every file of the run (stage keys are content-addressed, so
    sharing is always safe); under the ``process`` backend its on-disk
    tier is the store the worker processes share.  ``jobs`` is the
    deprecated pre-executor width knob (mapped onto ``parallel``, with
    a :class:`DeprecationWarning`).

    ``journal`` is a :class:`~repro.robust.journal.BatchJournal`: each
    completed entry is appended (fsync'd) as it finishes, and entries
    a previous interrupted run already journaled — keyed by source
    *content* plus the options digest — are resumed instead of re-run,
    so a killed batch restarted with the same journal produces the
    same report without repeating finished work.

    With a telemetry bus active, the whole batch shares one run id:
    every file emits ``lifecycle`` events (``queued`` up front, then
    ``started`` and a terminal ``ok``/``degraded``/``failed``/
    ``cancelled`` — or ``resumed`` for journaled entries), and the
    per-file synthesis events carry the same id from the workers —
    process workers forward theirs over the result channel.  A
    ``ledger`` (:class:`~repro.instrument.ledger.RunLedger`) gets one
    batch-level record appended.
    """
    from dataclasses import replace

    from repro.flow import FlowOptions, transportable_options

    if jobs is not None:
        warnings.warn(
            "run_batch(jobs=...) is deprecated; pass "
            "parallel=ParallelOptions(executor=..., workers=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if parallel is None:
            parallel = ParallelOptions.from_jobs(jobs)
    if options is None:
        options = FlowOptions(recovery=True)
    if parallel is None:
        parallel = options.parallel
    if cache is not None:
        options = replace(options, cache=cache)

    paths = [Path(path) for path in files]
    entries: List[Optional[BatchEntry]] = [None] * len(paths)
    keys: List[Optional[str]] = [None] * len(paths)
    if journal is not None:
        from repro.instrument.ledger import options_digest

        opts_fp = options_digest(options)
        completed = journal.load()
        for index, path in enumerate(paths):
            try:
                text = path.read_text()
            except OSError:
                continue  # unreadable: runs (and fails) again below
            key = journal.entry_key(text, opts_fp)
            keys[index] = key
            data = completed.get(key)
            if data is not None:
                entries[index] = BatchEntry(**data)
    pending = [
        (index, path)
        for index, path in enumerate(paths)
        if entries[index] is None
    ]

    report = BatchReport()
    rid = current_run_id() or new_run_id()
    with run_scope(rid):
        bus = active_bus()
        if bus is not None:
            for path in paths:
                bus.publish(
                    CATEGORY_LIFECYCLE,
                    {"kind": "file", "phase": "queued", "file": str(path)},
                )
            for entry in entries:
                if entry is not None:
                    bus.publish(CATEGORY_LIFECYCLE, {
                        "kind": "file",
                        "phase": "resumed",
                        "file": entry.file,
                        "status": entry.status,
                    })
        batch_start = time.perf_counter()

        effective = parallel.bounded(max(1, len(pending)))
        if effective.executor != "serial" and len(pending) > 1:
            # Long-pole scheduling: submit the expected-slowest files
            # first.  Input order is restored via the indices.
            order = schedule_longest_first(
                [path for _, path in pending], ledger
            )
            pending = [pending[position] for position in order]

        def journal_entry(index: int, entry: BatchEntry) -> None:
            if journal is not None and keys[index] is not None:
                journal.record(keys[index], entry.as_dict())

        # The executor propagates this scope's run id to its workers
        # (thread workers re-enter it, process workers ship it and
        # forward their telemetry), so the whole batch shares one run.
        with create_executor(effective) as executor:
            if executor.distributed:
                shared = options.cache
                cache_dir = (
                    str(shared.disk_dir)
                    if shared is not None and shared.disk_dir is not None
                    else None
                )
                opts = transportable_options(options)
                futures = [
                    executor.submit(
                        _run_one_remote, str(path), opts, library,
                        cache_dir,
                    )
                    for _, path in pending
                ]
                try:
                    for (index, _path), future in zip(pending, futures):
                        entry, delta = future.result()
                        if delta is not None and shared is not None:
                            shared.stats.apply_delta(delta)
                        entries[index] = entry
                        journal_entry(index, entry)
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
            elif executor.kind == "serial":
                # Inline, one file at a time: each entry is journaled
                # before the next file starts, so a kill at any point
                # loses at most the file that was running.
                for index, path in pending:
                    entry = _run_one(path, options, library)
                    entries[index] = entry
                    journal_entry(index, entry)
            else:
                futures = [
                    executor.submit(_run_one, path, options, library)
                    for _, path in pending
                ]
                try:
                    for (index, _path), future in zip(pending, futures):
                        entry = future.result()
                        entries[index] = entry
                        journal_entry(index, entry)
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
        report.entries = [entry for entry in entries if entry is not None]
        report.elapsed_s = time.perf_counter() - batch_start
        if cache is not None:
            report.cache = cache.stats.as_dict()
        if ledger is not None:
            from repro.instrument.ledger import record_for_batch

            ledger.append(record_for_batch(
                report,
                rid,
                source_label or (str(paths[0]) if paths else "<empty>"),
                paths,
                options,
            ))
    return report
