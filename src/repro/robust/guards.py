"""Numerical guards for the SPICE substrate.

Three failure classes the MNA/AC engines previously reported badly (or
not at all):

* **ill-conditioned systems** — the factorization succeeds but the
  solution is numerically meaningless; :func:`condition_estimate` plus
  :class:`NumericalWarning` surface it once per analysis;
* **singular systems** — ``numpy`` raises a bare ``LinAlgError`` that
  names nothing; :func:`singular_suspects` maps the near-null space of
  the assembled matrix back to circuit node / branch labels so the
  error names the part of the circuit that is floating or
  short-circuit-conflicted;
* **non-finite solutions** — NaN/Inf silently propagate through a
  waveform; :func:`check_finite` locates the first offending unknowns
  so the simulator can raise a located ``SimulationError`` instead.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

#: 1-norm condition estimate beyond which a solve is flagged.
ILL_CONDITION_THRESHOLD = 1e12


class NumericalWarning(UserWarning):
    """An analysis continued, but its numerics are suspect."""


def condition_estimate(matrix: np.ndarray) -> float:
    """Cheap 1-norm condition-number estimate of a square system.

    Returns ``inf`` for singular (or empty-pivot) systems.  Uses
    ``numpy``'s exact 1-norm condition number — the systems this flow
    assembles are small (tens of unknowns), so the O(n^3) inverse is
    noise next to the Newton iterations around it; callers should still
    estimate once per analysis, not once per step.
    """
    if matrix.size == 0:
        return 1.0
    try:
        return float(np.linalg.cond(matrix, 1))
    except np.linalg.LinAlgError:
        return math.inf


def singular_suspects(
    matrix: np.ndarray,
    labels: Sequence[str],
    max_suspects: int = 3,
    rel_threshold: float = 1e-9,
) -> List[str]:
    """Labels of the unknowns implicated in a singular system.

    The right-singular vectors belonging to (near-)zero singular values
    span the null space of the assembled matrix: the unknowns with the
    largest components in that space are exactly the node voltages /
    branch currents the equations fail to determine (floating nodes,
    conflicting ideal sources, redundant constraints).  Returns up to
    ``max_suspects`` labels, largest component first; empty when the
    matrix is not singular (or the SVD itself fails).
    """
    if matrix.size == 0:
        return []
    try:
        _u, sigma, vt = np.linalg.svd(matrix)
    except np.linalg.LinAlgError:
        return []
    scale = float(sigma[0]) if sigma.size and sigma[0] > 0 else 1.0
    null_rows = [
        vt[i]
        for i in range(len(sigma))
        if sigma[i] <= scale * rel_threshold
    ]
    # A rank-deficient rectangular tail (more unknowns than singular
    # values) is null space too.
    null_rows.extend(vt[len(sigma):])
    if not null_rows:
        return []
    weight = np.max(np.abs(np.asarray(null_rows)), axis=0)
    order = np.argsort(-weight)
    suspects: List[str] = []
    for index in order[: max(max_suspects, 1)]:
        if weight[index] <= rel_threshold:
            break
        if index < len(labels):
            suspects.append(labels[index])
    return suspects


def zero_first_unknown(matrix: np.ndarray) -> np.ndarray:
    """Fault-injection helper: disconnect the first unknown (on a copy).

    Zeroing the first row and column makes the system exactly singular,
    driving the real singular-matrix error path from tests.  Works on a
    single ``(n, n)`` system and on a stacked ``(m, n, n)`` grid alike,
    so the batched AC backend fails through the same code path as the
    per-point loop.
    """
    faulted = matrix.copy()
    if faulted.shape[-1]:
        faulted[..., 0, :] = 0.0
        faulted[..., :, 0] = 0.0
    return faulted


def describe_singular_system(
    system: str,
    matrix: np.ndarray,
    labels: Sequence[str],
    err: Exception,
    where: str = "",
) -> str:
    """The one singular-matrix message both engines raise.

    ``system`` is the analysis noun ("MNA", "AC"), ``where`` an optional
    location clause ('' / " at t=0.1 s" / " at 50.0 Hz").  The suspect
    unknowns come from :func:`singular_suspects`, so the error names the
    part of the circuit the equations fail to determine.
    """
    suspects = singular_suspects(matrix, labels)
    message = f"singular {system} matrix{where}: {err}"
    if suspects:
        message += (
            f"; suspect unknowns: {', '.join(suspects)} "
            "(floating node, or conflicting ideal sources?)"
        )
    return message


def check_finite(
    x: np.ndarray, labels: Sequence[str], max_named: int = 3
) -> Optional[List[str]]:
    """Labels of non-finite entries of a solution vector, or ``None``.

    ``None`` means every entry is finite (the fast path, one vectorized
    check).  Otherwise the first ``max_named`` offending labels are
    returned so the caller can raise a located error.
    """
    if np.isfinite(x).all():
        return None
    bad = np.nonzero(~np.isfinite(x))[0]
    named: List[str] = []
    for index in bad[:max_named]:
        named.append(labels[index] if index < len(labels) else f"#{index}")
    return named
