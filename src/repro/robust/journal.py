"""Crash-safe batch journal: fsync'd per-file completion records.

``vase batch --resume`` must survive a hard mid-run kill: a restarted
batch should skip every file the interrupted run already finished and
produce a report identical to an uninterrupted run.  The journal is the
durable half of that contract — one JSONL file, one line per completed
entry::

    {"key": "<fingerprint>", "entry": {...BatchEntry.as_dict()...}}

The key fingerprints the *source text* (not the path) together with the
:func:`~repro.instrument.ledger.options_digest` of the run's options,
so a journal never resumes stale results: editing a file or changing
any result-shaping option changes the key and the file re-runs.  Every
append is flushed and ``fsync``'d before the batch runner moves on to
the next file, and :meth:`BatchJournal.load` tolerates a torn final
line (the only corruption a crash mid-append can produce on a local
filesystem).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, TextIO

#: journal format version; bump on incompatible line-shape changes so
#: an old journal is ignored rather than misread (stale keys never
#: match)
JOURNAL_VERSION = 1


class BatchJournal:
    """Append-only JSONL journal of completed batch entries.

    The runner calls :meth:`load` once up front (to learn what an
    interrupted predecessor already finished) and :meth:`record` after
    each completed file.  The write handle is opened lazily on the
    first append, so a fully-resumed run never touches the file.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._handle: Optional[TextIO] = None

    @staticmethod
    def entry_key(source_text: str, options_fp: str) -> str:
        """Resume key of one file: content + options, never the path."""
        from repro.pipeline.fingerprint import fingerprint

        return fingerprint(
            "batch-entry", JOURNAL_VERSION, source_text, options_fp
        )[:24]

    def load(self) -> Dict[str, dict]:
        """Completed entries by key (last write wins).

        Unparseable lines — the torn tail a crash mid-append leaves —
        are skipped; the file they describe simply runs again.
        """
        completed: Dict[str, dict] = {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return completed
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            entry = record.get("entry")
            if isinstance(key, str) and isinstance(entry, dict):
                completed[key] = entry
        return completed

    def record(self, key: str, entry: Dict[str, object]) -> None:
        """Append one completion; durable before this returns."""
        if self._handle is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps({"key": key, "entry": entry}, sort_keys=True) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
