"""The recovery ladder: structured retries when synthesis fails.

When the branch-and-bound mapper cannot produce a feasible mapping —
infeasible constraints, node-budget or deadline exhaustion, an
unfortunate DAE causalization — the flow (opt-in via
``FlowOptions.recovery``) climbs a ladder of progressively more
invasive retries instead of dying on the first ``SynthesisError``:

1. **alternative causalizations** — re-compile with the next enumerated
   DAE solver (a different VHIF topology may map feasibly);
2. **greedy mapper** — the non-backtracking heuristic finds *a*
   feasible solution where the exhaustive search hit its budget;
3. **constraint relaxation** — bounded steps that loosen exactly the
   constraints the search named as blockers (the per-violation tally of
   ``MappingStatistics.constraint_violations``), trading spec tightness
   for a synthesizable, explicitly *degraded* result.

Every attempt — failed or not — is a :class:`RecoveryEvent` landing on
``SynthesisResult.recovery``, in the diagnostics, the report, and the
exploration log, so a degraded run always says what it sacrificed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.estimation.constraints import ConstraintSet
from repro.instrument.events import CATEGORY_RECOVERY, active_bus

#: Ladder rung names, in climbing order.
RUNG_BASELINE = "baseline"
RUNG_CAUSALIZATION = "causalization"
RUNG_GREEDY = "greedy"
RUNG_RELAX = "relax"

#: Event outcomes.
OUTCOME_FAILED = "failed"
OUTCOME_RECOVERED = "recovered"
OUTCOME_SKIPPED = "skipped"


@dataclass(frozen=True)
class RecoveryEvent:
    """One attempt of the recovery ladder."""

    #: which rung: ``baseline`` / ``causalization`` / ``greedy`` /
    #: ``relax``
    rung: str
    #: what was attempted (human-readable)
    action: str
    #: ``failed`` / ``recovered`` / ``skipped``
    outcome: str
    #: the error text (failed), what was sacrificed (recovered), or why
    #: the rung did not apply (skipped)
    detail: str = ""
    #: 1-based attempt number across the whole ladder
    attempt: int = 0

    def describe(self) -> str:
        text = f"[{self.attempt}] {self.rung}: {self.action} -> {self.outcome}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "rung": self.rung,
            "action": self.action,
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class RecoveryOptions:
    """Knobs of the recovery ladder."""

    #: try alternative DAE causalizations (rung 1)
    try_causalizations: bool = True
    #: cap on alternative causalizations attempted
    max_causalizations: int = 4
    #: try the greedy mapper (rung 2)
    try_greedy: bool = True
    #: try constraint relaxation (rung 3)
    try_relaxation: bool = True
    #: cap on relaxation retries
    max_relax_steps: int = 4
    #: per-step loosening factor (limits multiply, floors divide)
    relax_factor: float = 2.0


def relax_constraints(
    constraints: ConstraintSet,
    violations: Dict[str, int],
    factor: float = 2.0,
) -> Tuple[ConstraintSet, List[str]]:
    """One relaxation step driven by the *named* violation tally.

    Returns the loosened :class:`ConstraintSet` plus one human-readable
    change description per touched field.  Only the constraints that
    actually killed mappings are touched — upper limits are multiplied
    by ``factor``, lower floors divided; a ``sizing`` violation relaxes
    the signal bandwidth the op-amp sizing rules are derived from.  An
    empty change list means nothing named is relaxable (the ladder must
    stop rather than loop).
    """
    relaxed = ConstraintSet(**vars(constraints))
    changes: List[str] = []

    def _record(name: str, old: object, new: object) -> None:
        changes.append(f"{name}: {old} -> {new}")

    for name in sorted(violations, key=lambda n: -violations[n]):
        if name == "max_area" and relaxed.max_area is not None:
            new = relaxed.max_area * factor
            _record("max_area", f"{relaxed.max_area:.3e}", f"{new:.3e}")
            relaxed.max_area = new
        elif name == "max_power" and relaxed.max_power is not None:
            new = relaxed.max_power * factor
            _record("max_power", f"{relaxed.max_power:.3e}", f"{new:.3e}")
            relaxed.max_power = new
        elif name == "max_opamps" and relaxed.max_opamps is not None:
            new_count = max(
                relaxed.max_opamps + 1,
                int(math.ceil(relaxed.max_opamps * factor)),
            )
            _record("max_opamps", relaxed.max_opamps, new_count)
            relaxed.max_opamps = new_count
        elif name == "min_ugf" and relaxed.min_ugf_hz is not None:
            new = relaxed.min_ugf_hz / factor
            _record("min_ugf_hz", f"{relaxed.min_ugf_hz:.3e}", f"{new:.3e}")
            relaxed.min_ugf_hz = new
        elif name == "min_slew_rate" and relaxed.min_slew_rate is not None:
            new = relaxed.min_slew_rate / factor
            _record(
                "min_slew_rate",
                f"{relaxed.min_slew_rate:.3e}",
                f"{new:.3e}",
            )
            relaxed.min_slew_rate = new
        elif name == "sizing":
            # Infeasible op-amp sizing: the UGF/slew specs every op amp
            # must meet scale with the signal bandwidth, so lowering the
            # bandwidth is the sizing-side relaxation.
            new = constraints.signal_bandwidth_hz / factor
            _record(
                "signal_bandwidth_hz",
                f"{relaxed.signal_bandwidth_hz:.3e}",
                f"{new:.3e}",
            )
            relaxed.signal_bandwidth_hz = new
        # Unknown / un-relaxable names (e.g. an injected fault) are
        # deliberately left alone.
    return relaxed, changes


@dataclass
class RecoveryLog:
    """Accumulates ladder events with consecutive attempt numbers."""

    events: List[RecoveryEvent] = field(default_factory=list)

    def record(
        self, rung: str, action: str, outcome: str, detail: str = ""
    ) -> RecoveryEvent:
        event = RecoveryEvent(
            rung=rung,
            action=action,
            outcome=outcome,
            detail=detail,
            attempt=len(self.events) + 1,
        )
        self.events.append(event)
        bus = active_bus()
        if bus is not None:
            bus.publish(CATEGORY_RECOVERY, event.as_dict())
        return event
