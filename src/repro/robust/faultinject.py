"""Deterministic fault injection for the synthesis flow.

Production robustness claims are only as good as the failure paths that
tests actually reach, and most of this flow's failure classes (singular
MNA systems, NaN waveforms, search deadlines) are hard to provoke from
well-formed inputs.  This module plants named *fault sites* in the flow
that tests flip on deterministically:

``mapper.deadline``
    the architecture mapper behaves as if its wall-clock deadline
    expired before the first decision node.
``mapper.infeasible``
    every complete mapping is treated as constraint-infeasible (the
    injected violation is named ``"injected"``), forcing the search to
    end without a feasible solution.
``spice.singular``
    the next MNA factorization sees an all-zero matrix, driving the
    singular-system handler (and its suspect naming).
``spice.ac.singular``
    same, for the AC sweep's complex system.
``spice.nonfinite``
    the next transient Newton solution is poisoned with NaN, driving
    the non-finite waveform guard.
``parse``
    :func:`repro.vass.parser.parse_source` raises a ``ParseError``
    before reading any token.
``mapper.cancel``
    the active run-lifecycle context (if any) is cancelled just as the
    mapper search starts, driving the in-loop cooperative-cancellation
    path.
``executor.worker_crash``
    a process-pool worker hard-exits (as if it segfaulted) on the
    *first* attempt of each task, driving the transient-retry path:
    the retried attempt succeeds.
``executor.worker_crash_always``
    a process-pool worker hard-exits on *every* attempt, driving
    retry exhaustion and the per-task circuit breaker.
``executor.transient``
    a process-pool worker raises :class:`TransientError` on the first
    attempt of each task (an in-band transient failure, no crash).

The production cost is one truthiness test of a module-level frozenset
per site (`fault_active` returns immediately while no faults are
armed).  Faults are armed through :func:`inject_faults` (a context
manager) or the ``fault_injector`` pytest fixture, never left on by
default.

>>> with inject_faults("spice.singular"):
...     solver.dc_operating_point()      # raises the guarded error
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Tuple

#: All fault sites the flow consults; unknown names are rejected so a
#: typo in a test arms nothing silently.
KNOWN_SITES: FrozenSet[str] = frozenset(
    {
        "mapper.deadline",
        "mapper.infeasible",
        "mapper.cancel",
        "spice.singular",
        "spice.ac.singular",
        "spice.nonfinite",
        "parse",
        "executor.worker_crash",
        "executor.worker_crash_always",
        "executor.transient",
    }
)

#: Violation name tallied for ``mapper.infeasible`` injections.
INJECTED_VIOLATION = "injected"

_ARMED: FrozenSet[str] = frozenset()


def active_faults() -> FrozenSet[str]:
    """The currently armed fault sites (empty in production)."""
    return _ARMED


def fault_active(site: str) -> bool:
    """True when ``site`` is armed.

    The fast path — no faults armed at all — is a single truthiness
    test, so instrumented production code pays (almost) nothing.
    """
    return bool(_ARMED) and site in _ARMED


def _arm(sites: Tuple[str, ...]) -> FrozenSet[str]:
    unknown = set(sites) - KNOWN_SITES
    if unknown:
        raise ValueError(
            f"unknown fault site(s) {sorted(unknown)}; "
            f"known: {sorted(KNOWN_SITES)}"
        )
    return frozenset(sites)


class inject_faults:
    """Context manager arming one or more fault sites.

    Nested injections compose (the inner context adds to the outer
    set); on exit the previous arming is restored exactly.
    """

    def __init__(self, *sites: str):
        self._sites = _arm(tuple(sites))
        self._previous: Optional[FrozenSet[str]] = None

    def __enter__(self) -> "inject_faults":
        global _ARMED
        self._previous = _ARMED
        _ARMED = _ARMED | self._sites
        return self

    def __exit__(self, *exc) -> bool:
        global _ARMED
        _ARMED = self._previous if self._previous is not None else frozenset()
        return False


class FaultInjector:
    """Imperative interface for tests: arm/disarm sites one by one.

    The ``fault_injector`` pytest fixture yields one of these and
    guarantees :meth:`clear` on teardown, so a failing test never
    leaks an armed fault into the rest of the suite.
    """

    def arm(self, *sites: str) -> None:
        global _ARMED
        _ARMED = _ARMED | _arm(tuple(sites))

    def disarm(self, *sites: str) -> None:
        global _ARMED
        _ARMED = _ARMED - frozenset(sites)

    def clear(self) -> None:
        global _ARMED
        _ARMED = frozenset()

    @property
    def armed(self) -> FrozenSet[str]:
        return _ARMED


def pytest_fixture() -> Iterator[FaultInjector]:
    """Generator backing the ``fault_injector`` fixture (see conftest)."""
    injector = FaultInjector()
    try:
        yield injector
    finally:
        injector.clear()
