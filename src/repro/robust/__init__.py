"""Flow-wide fault tolerance: graceful degradation instead of crashes.

The VASE flow is a pipeline of searches and numerical solves — DAE
causalization, branch-and-bound mapping, MNA factorization, AC sweeps —
and historically any single failure killed a whole run with one
exception.  This package makes the flow degrade gracefully and report
*what* it sacrificed:

* :mod:`repro.robust.recovery` — the recovery ladder the flow climbs
  when synthesis fails (alternative causalizations, the greedy mapper,
  bounded constraint relaxation), with every attempt recorded as a
  structured :class:`RecoveryEvent`;
* :mod:`repro.robust.guards` — numerical guards for the SPICE substrate
  (condition-number estimation, singular-system suspect naming,
  non-finite waveform detection);
* :mod:`repro.robust.batch` — multi-design sweeps with per-file
  isolation and a machine-readable ok/degraded/failed summary;
* :mod:`repro.robust.lifecycle` — cooperative cancellation tokens,
  whole-flow deadline propagation, and the transient-failure taxonomy
  the executors' retry machinery classifies against;
* :mod:`repro.robust.journal` — the fsync'd completion journal behind
  crash-safe ``vase batch --resume``;
* :mod:`repro.robust.faultinject` — the deterministic fault-injection
  harness that forces each failure class so every recovery path is
  exercised in tests and CI.
"""

from repro.robust.batch import (
    BatchEntry,
    BatchReport,
    find_sources,
    run_batch,
    schedule_longest_first,
)
from repro.robust.faultinject import (
    FaultInjector,
    active_faults,
    fault_active,
    inject_faults,
)
from repro.robust.journal import BatchJournal
from repro.robust.lifecycle import (
    CancellationToken,
    CancelledError,
    DeadlineExceeded,
    RetryPolicy,
    RunContext,
    TransientError,
    WorkerCrashError,
    active_context,
    checkpoint,
    is_transient,
    run_context,
)
from repro.robust.guards import (
    NumericalWarning,
    check_finite,
    condition_estimate,
    singular_suspects,
)
from repro.robust.recovery import (
    RecoveryEvent,
    RecoveryOptions,
    relax_constraints,
)

__all__ = [
    "BatchEntry",
    "BatchJournal",
    "BatchReport",
    "CancellationToken",
    "CancelledError",
    "DeadlineExceeded",
    "FaultInjector",
    "NumericalWarning",
    "RecoveryEvent",
    "RecoveryOptions",
    "RetryPolicy",
    "RunContext",
    "TransientError",
    "WorkerCrashError",
    "active_context",
    "active_faults",
    "check_finite",
    "checkpoint",
    "condition_estimate",
    "fault_active",
    "find_sources",
    "inject_faults",
    "is_transient",
    "relax_constraints",
    "run_batch",
    "run_context",
    "schedule_longest_first",
    "singular_suspects",
]
