"""Run-lifecycle primitives: cancellation, deadlines, and retry policy.

Long synthesis runs need first-class lifecycle control: a served job
must be cancellable, a whole flow must respect a wall-clock budget, and
transient worker failures must be retried without crash-looping on
poisoned inputs.  This module provides the shared vocabulary:

* :class:`CancellationToken` — a thread-safe, one-way "stop requested"
  flag with a reason.  Cancellation is *cooperative*: holders of the
  token periodically call :func:`checkpoint` and abandon work by
  raising :class:`CancelledError`.
* :class:`RunContext` — a token plus an optional monotonic deadline,
  installed per run (thread-local, like the telemetry run scope).  The
  pipeline checks it at every stage boundary and the mapper checks it
  inside the branch-and-bound loop, generalising the mapper's own
  ``deadline_s`` knob into whole-flow budget propagation.
* :func:`checkpoint` — the module-level cancellation point.  A cheap
  no-op when no context is active, so code outside a managed run pays
  nothing.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (hash-derived, never ``random``), plus the
  circuit-breaker threshold that stops a poisoned task from
  crash-looping a worker pool.

Error taxonomy: :class:`CancelledError` (run abandoned on request) and
its subclass :class:`DeadlineExceeded` (budget exhausted) terminate a
run; :class:`TransientError` and its subclass
:class:`WorkerCrashError` mark failures the executor may retry.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.diagnostics import VaseError

__all__ = [
    "CancellationToken",
    "CancelledError",
    "DeadlineExceeded",
    "RetryPolicy",
    "RunContext",
    "TransientError",
    "WorkerCrashError",
    "active_context",
    "checkpoint",
    "is_transient",
    "run_context",
    "task_fingerprint",
]


class CancelledError(VaseError):
    """The run was cancelled before it could finish."""


class DeadlineExceeded(CancelledError):
    """The run exhausted its wall-clock budget."""


class TransientError(VaseError):
    """A failure the executor may safely retry (e.g. injected faults)."""


class WorkerCrashError(TransientError):
    """A pipeline worker process died while executing a task."""


class CancellationToken:
    """Thread-safe one-way cancellation flag with a reason.

    The token only ever transitions unset -> set; the first ``cancel``
    call wins and fixes the reason.  Safe to share across threads and
    to pickle conceptually — in practice tokens never cross the spawn
    boundary; the executor re-creates one worker-side and relays the
    cancel request over the pipe.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation.  Returns True on the first call."""
        if self._event.is_set():
            return False
        self._reason = reason
        self._event.set()
        return True

    def raise_if_cancelled(self, where: Optional[str] = None) -> None:
        if self._event.is_set():
            suffix = f" at {where}" if where else ""
            raise CancelledError(
                f"run cancelled{suffix}: {self._reason or 'cancelled'}"
            )


@dataclass
class RunContext:
    """A cancellation token plus an optional monotonic deadline.

    ``deadline`` is an absolute ``time.perf_counter()`` value; budgets
    are always converted on creation so child contexts can take the
    minimum without re-anchoring clocks.
    """

    token: CancellationToken
    deadline: Optional[float] = None

    @classmethod
    def create(
        cls,
        deadline_s: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ) -> "RunContext":
        deadline = None
        if deadline_s is not None:
            deadline = time.perf_counter() + max(float(deadline_s), 0.0)
        return cls(token=token or CancellationToken(), deadline=deadline)

    def remaining_s(self) -> Optional[float]:
        """Seconds left in the budget, or None when unbounded."""
        if self.deadline is None:
            return None
        return max(self.deadline - time.perf_counter(), 0.0)

    def expired(self) -> bool:
        return (
            self.deadline is not None
            and time.perf_counter() >= self.deadline
        )

    def checkpoint(self, where: Optional[str] = None) -> None:
        """Raise if the run was cancelled or the budget is spent."""
        self.token.raise_if_cancelled(where)
        if self.expired():
            suffix = f" at {where}" if where else ""
            raise DeadlineExceeded(
                f"run deadline exceeded{suffix}"
            )

    def child(self, deadline_s: Optional[float] = None) -> "RunContext":
        """A context sharing this token, with the tighter deadline."""
        deadline = self.deadline
        if deadline_s is not None:
            candidate = time.perf_counter() + max(float(deadline_s), 0.0)
            deadline = (
                candidate if deadline is None else min(deadline, candidate)
            )
        return RunContext(token=self.token, deadline=deadline)


_CONTEXT_TLS = threading.local()


def active_context() -> Optional[RunContext]:
    """The calling thread's active run context, if any."""
    return getattr(_CONTEXT_TLS, "context", None)


@contextmanager
def run_context(context: RunContext) -> Iterator[RunContext]:
    """Install ``context`` as the thread's active run context."""
    previous = getattr(_CONTEXT_TLS, "context", None)
    _CONTEXT_TLS.context = context
    try:
        yield context
    finally:
        _CONTEXT_TLS.context = previous


def checkpoint(where: Optional[str] = None) -> None:
    """Cooperative cancellation point: cheap no-op outside managed runs."""
    context = getattr(_CONTEXT_TLS, "context", None)
    if context is not None:
        context.checkpoint(where)


def is_transient(error: BaseException) -> bool:
    """True when the executor is allowed to retry after ``error``."""
    return isinstance(error, TransientError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``delay_s`` derives its jitter from a hash of the task key and the
    attempt number — never from ``random`` — so retry schedules are
    reproducible run to run.  ``breaker_threshold`` consecutive worker
    crashes on the *same* task trip a circuit breaker: further
    submissions of that task fail fast instead of crash-looping the
    pool.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    breaker_threshold: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        base = self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)
        digest = hashlib.sha256(f"{key}|{attempt}".encode("utf-8")).digest()
        jitter = digest[0] / 255.0 / 2.0  # deterministic, in [0, 0.5]
        return min(base * (1.0 + jitter), self.max_backoff_s)


def task_fingerprint(fn: object, args: tuple) -> str:
    """Stable identity of a task for breaker/jitter keying."""
    name = getattr(fn, "__qualname__", None) or repr(fn)
    module = getattr(fn, "__module__", "?")
    raw = f"{module}.{name}|{args!r}".encode("utf-8", "replace")
    return hashlib.sha256(raw).hexdigest()[:16]
