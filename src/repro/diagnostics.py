"""Source locations, diagnostics and exception types for the VASE flow.

Every stage of the flow (lexer, parser, semantic analyzer, compiler,
mapper) reports problems through the classes defined here so that a user
gets uniform ``file:line:column`` messages regardless of where an error
was detected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position inside a VASS source text."""

    line: int = 0
    column: int = 0
    filename: str = "<string>"

    def __str__(self) -> str:
        if self.line <= 0:
            return self.filename
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for nodes synthesized by the compiler itself.
NO_LOCATION = SourceLocation(0, 0, "<builtin>")


class Severity(enum.Enum):
    """Severity of a diagnostic message."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """A single message tied to a source location."""

    severity: Severity
    message: str
    location: SourceLocation = NO_LOCATION

    def __str__(self) -> str:
        return f"{self.location}: {self.severity}: {self.message}"


class VaseError(Exception):
    """Base class of all errors raised by the VASE reproduction."""


class LexerError(VaseError):
    """Raised for malformed tokens."""

    def __init__(self, message: str, location: SourceLocation = NO_LOCATION):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.bare_message = message


class ParseError(VaseError):
    """Raised when the parser cannot continue."""

    def __init__(self, message: str, location: SourceLocation = NO_LOCATION):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.bare_message = message


class SemanticError(VaseError):
    """Raised for violations of VASS static semantics."""

    def __init__(self, message: str, location: SourceLocation = NO_LOCATION):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.bare_message = message


class CompileError(VaseError):
    """Raised when a legal VASS program cannot be translated to VHIF."""

    def __init__(self, message: str, location: SourceLocation = NO_LOCATION):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.bare_message = message


class SynthesisError(VaseError):
    """Raised when architecture generation fails (e.g. unmappable block).

    Carries the search's :class:`~repro.synth.mapper.MappingStatistics`
    (when the mapper is the origin) so callers — notably the recovery
    ladder — can read the named constraint-violation tally and the
    truncation reason without parsing the message.
    """

    def __init__(self, message: str, statistics: Optional[object] = None):
        super().__init__(message)
        self.statistics = statistics


class SimulationError(VaseError):
    """Raised by the MNA / behavioral simulators."""


@dataclass
class DiagnosticSink:
    """Collects diagnostics emitted during a flow stage.

    Errors are collected rather than raised immediately so that a single
    run can report several independent problems; stages call
    :meth:`check` at their end to raise if anything fatal accumulated.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def note(self, message: str, location: SourceLocation = NO_LOCATION) -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, location))

    def warn(self, message: str, location: SourceLocation = NO_LOCATION) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, location))

    def error(self, message: str, location: SourceLocation = NO_LOCATION) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, location))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    def check(self, stage: str, error_class: type = SemanticError) -> None:
        """Raise ``error_class`` summarizing collected errors, if any."""
        errs = self.errors
        if not errs:
            return
        summary = "; ".join(str(e) for e in errs[:10])
        more = len(errs) - 10
        if more > 0:
            summary += f" (+{more} more)"
        first_loc: Optional[SourceLocation] = errs[0].location
        if issubclass(error_class, (SemanticError, ParseError, CompileError)):
            raise error_class(f"{stage} failed: {summary}", first_loc or NO_LOCATION)
        raise error_class(f"{stage} failed: {summary}")
