"""Op-amp-level netlists: the output of architecture synthesis.

A :class:`Netlist` holds :class:`ComponentInstance` objects (one per
allocated library circuit) and the connections between them.  Nets are
identified by the SFG block whose output they carry, which keeps the
mapping between the VHIF representation and the structural result
explicit (the paper annotates corresponding blocks and circuits with
similar names, Figure 7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.diagnostics import SynthesisError
from repro.library.components import ComponentLibrary, ComponentSpec

ControlSource = Union[str, int, None]


@dataclass
class ComponentInstance:
    """One allocated library circuit."""

    name: str
    spec: ComponentSpec
    params: Dict[str, object] = field(default_factory=dict)
    #: source net ids (SFG block ids or port names), one per input
    inputs: List[object] = field(default_factory=list)
    #: net id this instance drives (usually the covered cone's root id)
    output: Optional[object] = None
    control: ControlSource = None
    #: SFG block ids this instance implements (its covered cone);
    #: grows when hardware sharing maps further blocks onto it.
    covers: List[int] = field(default_factory=list)
    #: applied functional transformation, if any
    transform: Optional[str] = None

    @property
    def opamps(self) -> int:
        return self.spec.opamps

    def describe(self) -> str:
        ins = ", ".join(str(i) for i in self.inputs)
        ctrl = f" ctrl={self.control}" if self.control is not None else ""
        return (
            f"{self.name}: {self.spec.name}({ins}) -> {self.output}"
            f"{ctrl} covers={sorted(self.covers)}"
        )


@dataclass
class Netlist:
    """A structural net-list of library components."""

    name: str
    library: ComponentLibrary
    instances: List[ComponentInstance] = field(default_factory=list)
    #: system ports: port name -> net id
    inputs: Dict[str, object] = field(default_factory=dict)
    outputs: Dict[str, object] = field(default_factory=dict)
    #: net ids driven by constant references: net id -> value
    const_nets: Dict[object, float] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_instance(
        self,
        spec_name: str,
        params: Optional[Dict[str, object]] = None,
        inputs: Optional[Sequence[object]] = None,
        output: Optional[object] = None,
        control: ControlSource = None,
        covers: Optional[Sequence[int]] = None,
        transform: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ComponentInstance:
        spec = self.library.get(spec_name)
        instance = ComponentInstance(
            name=name or f"U{len(self.instances) + 1}",
            spec=spec,
            params=dict(params or {}),
            inputs=list(inputs or []),
            output=output,
            control=control,
            covers=list(covers or []),
            transform=transform,
        )
        self.instances.append(instance)
        return instance

    def copy(self) -> "Netlist":
        clone = Netlist(name=self.name, library=self.library)
        clone.inputs = dict(self.inputs)
        clone.outputs = dict(self.outputs)
        clone.const_nets = dict(self.const_nets)
        for inst in self.instances:
            clone.instances.append(
                ComponentInstance(
                    name=inst.name,
                    spec=inst.spec,
                    params=dict(inst.params),
                    inputs=list(inst.inputs),
                    output=inst.output,
                    control=inst.control,
                    covers=list(inst.covers),
                    transform=inst.transform,
                )
            )
        return clone

    # -- queries --------------------------------------------------------------

    def total_opamps(self) -> int:
        return sum(inst.opamps for inst in self.instances)

    def driver_of(self, net: object) -> Optional[ComponentInstance]:
        for inst in self.instances:
            if inst.output == net:
                return inst
        return None

    def instance(self, name: str) -> ComponentInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise SynthesisError(f"no instance named {name!r}")

    def by_component(self, spec_name: str) -> List[ComponentInstance]:
        return [i for i in self.instances if i.spec.name == spec_name]

    def category_counts(self) -> Counter:
        """Component counts by Table-1 display category."""
        return Counter(inst.spec.category for inst in self.instances)

    def summary(self) -> str:
        """Table-1 style summary, e.g. ``2 amplif., 1 zero-cross det.``"""
        counts = self.category_counts()
        parts = [f"{n} {category}" for category, n in sorted(counts.items())]
        return ", ".join(parts)

    def covered_blocks(self) -> set:
        covered: set = set()
        for inst in self.instances:
            covered.update(inst.covers)
        return covered

    def validate(self) -> None:
        """Structural sanity: every input net must have a driver."""
        driven = {inst.output for inst in self.instances}
        driven |= set(self.inputs.values())
        driven |= set(self.const_nets)
        problems: List[str] = []
        for inst in self.instances:
            for net in inst.inputs:
                if net not in driven:
                    problems.append(
                        f"{inst.name} input net {net!r} has no driver"
                    )
        for port, net in self.outputs.items():
            if net not in driven:
                problems.append(f"output port {port!r} net {net!r} undriven")
        if problems:
            raise SynthesisError(
                "netlist validation failed:\n  " + "\n  ".join(problems)
            )

    def describe(self) -> str:
        lines = [f"netlist {self.name!r} ({self.total_opamps()} op amps):"]
        for inst in self.instances:
            lines.append(f"  {inst.describe()}")
        for port, net in self.inputs.items():
            lines.append(f"  input {port} -> net {net}")
        for port, net in self.outputs.items():
            lines.append(f"  output {port} <- net {net}")
        return "\n".join(lines)
