"""Branch-and-bound architecture generation (paper Section 5, Figure 5).

Maps the signal-flow graphs of a VHIF representation onto a net-list of
library components so that all performance constraints are satisfied
and the total ASIC area is minimized.  The three problem-specific rules
of the paper are implemented explicitly and individually switchable for
the ablation benchmarks:

* **branching rule** (◇): all library-mappable sub-graphs (cones) with
  the current block as output, produced by the pattern matcher —
  including functional-transformation alternatives (amplifier cascades);
  the *sharing* branch (reuse an existing identical component) is tried
  before the *allocation* branch;
* **bounding rule** (□): a partial mapping is abandoned when
  ``(opamp_nr + cone_opamps) * MinArea`` is already no better than the
  best complete solution, with ``MinArea`` the area of a minimum-size
  op amp;
* **sequencing rule**: branching alternatives that map more blocks onto
  one component are visited first, so a good solution is found early
  and the bounding rule becomes effective.

Complete mappings are ranked by the analog performance estimation tools
(•): the estimator sizes every op amp and rolls up area and power; the
feasible minimum-area mapping wins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.diagnostics import Diagnostic, Severity, SynthesisError
from repro.estimation.constraints import (
    ConstraintSet,
    ConstraintViolation,
    PerformanceEstimate,
)
from repro.estimation.estimator import Estimator
from repro.instrument import active_explog, metrics, trace_phase
from repro.library.components import ComponentLibrary, default_library
from repro.library.patterns import CandidateIndex, PatternMatch, PatternMatcher
from repro.robust.faultinject import INJECTED_VIOLATION, fault_active
from repro.robust.lifecycle import active_context
from repro.synth.netlist import ComponentInstance, Netlist
from repro.vhif.design import VhifDesign
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT, SignalFlowGraph


@dataclass
class MapperOptions:
    """Search-strategy knobs (ablation points of DESIGN.md §5)."""

    enable_bounding: bool = True
    #: which lower bound prunes partial mappings (the paper's Section 7
    #: hopes for "more effective bounding rules"):
    #: "minarea"  — the paper's rule: op-amp count x MinArea;
    #: "exact"    — accumulated exact area of allocated instances;
    #: "combined" — the tighter of the two (default).
    bounding_mode: str = "combined"
    enable_sharing: bool = True
    enable_transforms: bool = True
    #: "largest_first" (the paper's rule), "smallest_first", "arbitrary"
    sequencing: str = "largest_first"
    #: try the sharing branch before allocating new hardware
    share_first: bool = True
    max_cone_size: int = 4
    #: enumerate candidates once per root through an incremental
    #: :class:`~repro.library.patterns.CandidateIndex` instead of
    #: re-running the pattern matcher at every decision node; the
    #: decision sequence is identical either way (the legacy path is
    #: kept for the differential test and as an escape hatch)
    candidate_index: bool = True
    #: safety cap on visited decision nodes
    max_nodes: int = 500_000
    #: wall-clock deadline for the search, seconds (None = unbounded);
    #: checked alongside ``max_nodes`` — on expiry the best incumbent
    #: is returned with ``truncated_reason == "deadline"``
    deadline_s: Optional[float] = None
    #: record the decision tree (Figure 6) — costs memory
    collect_tree: bool = False
    #: stop at the first feasible complete mapping (greedy-ish mode)
    first_solution_only: bool = False


@dataclass
class DecisionNode:
    """One node of the Figure-6 decision tree."""

    node_id: int
    parent: Optional[int]
    decision: str
    opamps: int
    status: str = "open"  # open / pruned / complete / infeasible / dead-end
    #: outcome facts: estimated area for complete nodes, violated
    #: constraint names for infeasible ones, bounds for pruned ones
    detail: str = ""

    def __str__(self) -> str:
        text = f"[{self.node_id}] {self.decision} ({self.opamps} op amps, {self.status})"
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass
class MappingStatistics:
    """Search effort counters."""

    nodes_visited: int = 0
    nodes_pruned: int = 0
    complete_mappings: int = 0
    feasible_mappings: int = 0
    shared_branches: int = 0
    runtime_s: float = 0.0
    #: the search stopped at a budget before exhausting the tree, so
    #: the reported mapping is best-found, not proven optimal
    truncated: bool = False
    #: which budget stopped the search: ``"nodes"`` (``max_nodes``) or
    #: ``"deadline"`` (``deadline_s``); None while not truncated
    truncated_reason: Optional[str] = None
    #: how often each named constraint killed a complete mapping
    #: (``sizing``, ``max_area``, ``min_ugf``, ...)
    constraint_violations: Dict[str, int] = field(default_factory=dict)

    @property
    def infeasible_mappings(self) -> int:
        return self.complete_mappings - self.feasible_mappings

    def violation_summary(self) -> str:
        """``"min_ugf x3, max_opamps x1"`` — empty when nothing failed."""
        return ", ".join(
            f"{name} x{count}"
            for name, count in sorted(self.constraint_violations.items())
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "nodes_visited": self.nodes_visited,
            "nodes_pruned": self.nodes_pruned,
            "complete_mappings": self.complete_mappings,
            "feasible_mappings": self.feasible_mappings,
            "shared_branches": self.shared_branches,
            "runtime_s": self.runtime_s,
            "truncated": self.truncated,
            "truncated_reason": self.truncated_reason,
            "constraint_violations": dict(
                sorted(self.constraint_violations.items())
            ),
        }


@dataclass
class MappingResult:
    """Outcome of architecture generation for one SFG."""

    netlist: Netlist
    estimate: PerformanceEstimate
    statistics: MappingStatistics
    tree: List[DecisionNode] = field(default_factory=list)
    #: op-amp counts of every complete mapping, in discovery order
    solution_opamps: List[int] = field(default_factory=list)
    #: non-fatal problems of the search (e.g. node-budget truncation)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def describe(self) -> str:
        text = (
            f"{self.netlist.summary()} | {self.estimate.describe()} | "
            f"{self.statistics.nodes_visited} nodes, "
            f"{self.statistics.nodes_pruned} pruned"
        )
        if self.statistics.truncated:
            budget = (
                "deadline hit"
                if self.statistics.truncated_reason == "deadline"
                else "node budget hit"
            )
            text += f" | TRUNCATED ({budget}; result may be suboptimal)"
        return text


def _largest_first_key(match: PatternMatch) -> Tuple[int, int, str]:
    return (-match.size, match.opamps, match.component)


def _smallest_first_key(match: PatternMatch) -> Tuple[int, int, str]:
    return (match.size, match.opamps, match.component)


#: sequencing rule -> candidate sort key ("arbitrary" keeps matcher order)
_SEQUENCING_KEYS = {
    "largest_first": _largest_first_key,
    "smallest_first": _smallest_first_key,
}


class ArchitectureMapper:
    """The Figure-5 algorithm over one signal-flow graph."""

    def __init__(
        self,
        sfg: SignalFlowGraph,
        library: Optional[ComponentLibrary] = None,
        estimator: Optional[Estimator] = None,
        options: Optional[MapperOptions] = None,
        matcher: Optional[PatternMatcher] = None,
    ):
        self.sfg = sfg
        self.library = library or default_library()
        self.estimator = estimator or Estimator()
        self.options = options or MapperOptions()
        self.matcher = matcher or PatternMatcher(
            self.library, enable_transforms=self.options.enable_transforms
        )
        self.min_area = self.estimator.min_area_per_opamp(self.library)

        # Search state.
        self._instances: List[ComponentInstance] = []
        self._area_stack: List[float] = []  # per-instance estimated areas
        self._area_so_far = 0.0
        self._covered: Set[int] = set()
        self._alias: Dict[int, int] = {}  # net id -> canonical net id
        self._best_netlist: Optional[Netlist] = None
        self._best_estimate: Optional[PerformanceEstimate] = None
        self._stats = MappingStatistics()
        self._area_cache: Dict[Tuple[str, str], float] = {}
        # The incremental candidate index (and the memos it makes
        # sound): index entries are long-lived, so per-match areas can
        # be memoized by object identity, and per-root minimum areas
        # feed the tightened lower bound.
        self._index: Optional[CandidateIndex] = None
        self._area_by_match: Optional[Dict[int, float]] = None
        self._min_area_memo: Dict[int, Optional[float]] = {}
        if self.options.candidate_index:
            sort_key = _SEQUENCING_KEYS.get(self.options.sequencing)
            self._index = CandidateIndex(
                self.matcher,
                self.sfg,
                max_cone_size=self.options.max_cone_size,
                include_transforms=self.options.enable_transforms,
                sort_key=sort_key,
            )
            self._area_by_match = {}
        self._tree: List[DecisionNode] = []
        self._solutions: List[int] = []
        self._abort = False
        #: absolute perf_counter() time after which the search stops
        self._deadline: Optional[float] = None
        #: the exploration recorder, captured once per run; ``None``
        #: keeps every decision site on the zero-allocation fast path
        self._explog = None
        #: the run-lifecycle context, captured once per run; checked
        #: in the branch loop so a cancel request or an exhausted
        #: whole-flow budget stops the search between decision nodes
        self._lifecycle = None

    # -- net aliasing (hardware sharing) ----------------------------------------

    def _resolve(self, net: int) -> int:
        seen = set()
        while net in self._alias and net not in seen:
            seen.add(net)
            net = self._alias[net]
        return net

    # -- roots and frontier -------------------------------------------------------

    def _initial_pending(self) -> FrozenSet[int]:
        """Blocks that anchor the mapping: sinks of the data flow."""
        pending: Set[int] = set()
        for block in self.sfg.processing_blocks():
            successors = self.sfg.successors(block)
            data_sinks = [
                (sink, port)
                for sink, port in successors
                if port != CONTROL_PORT and sink.kind is not BlockKind.OUTPUT
            ]
            if not data_sinks:
                pending.add(block.block_id)
        if not pending and self.sfg.processing_blocks():
            # Cyclic graph with no pure sink: anchor at integrators.
            for block in self.sfg.blocks_of_kind(BlockKind.INTEGRATE):
                pending.add(block.block_id)
        return frozenset(pending)

    def _frontier_after(
        self,
        pending: FrozenSet[int],
        match: PatternMatch,
        covered: Optional[Set[int]] = None,
    ) -> FrozenSet[int]:
        """Update the worklist after covering ``match.cone``.

        ``covered`` previews the frontier against a hypothetical covered
        set (the bound computation asks "what if this match were
        covered?" *before* mutating state); the default is the live one.
        This matters for self-feeding cones — an integrator loop's input
        driver can sit inside its own cone, so pre- and post-cover
        frontiers differ.
        """
        if covered is None:
            covered = self._covered
        new_pending = set(pending)
        new_pending -= match.cone
        for net in match.inputs:
            block = self.sfg.block(net)
            if block.kind.is_source():
                continue
            if block.block_id not in covered:
                new_pending.add(block.block_id)
        if isinstance(match.control, int):
            control_block = self.sfg.block(match.control)
            if (
                not control_block.kind.is_source()
                and control_block.block_id not in covered
            ):
                new_pending.add(control_block.block_id)
        return frozenset(new_pending)

    # -- candidate ordering -------------------------------------------------------------

    def _ordered_candidates(self, root: Block) -> List[PatternMatch]:
        if self._index is not None:
            return self._index.candidates(root)
        # Legacy path: full re-enumeration at every decision node.
        candidates = self.matcher.candidates(
            self.sfg, root, max_size=self.options.max_cone_size
        )
        if not self.options.enable_transforms:
            candidates = [c for c in candidates if c.transform is None]
        # Cones may not include already-covered blocks.
        candidates = [
            c for c in candidates if not (c.cone & self._covered)
        ]
        sort_key = _SEQUENCING_KEYS.get(self.options.sequencing)
        if sort_key is not None:
            candidates.sort(key=sort_key)
        # "arbitrary": keep the matcher's order.
        return candidates

    # -- covered-set bookkeeping (kept in sync with the index) ------------------

    def _cover(self, cone: FrozenSet[int]) -> None:
        self._covered |= cone
        if self._index is not None:
            self._index.cover(cone)

    def _uncover(self, cone: FrozenSet[int]) -> None:
        self._covered -= cone
        if self._index is not None:
            self._index.uncover(cone)

    # -- tree bookkeeping ------------------------------------------------------------------

    def _instance_area(self, match: PatternMatch) -> float:
        """Estimated area of one candidate instance (cached by key).

        With the candidate index active, matches are long-lived objects
        enumerated once per root, so the area is additionally memoized
        by object identity — skipping even the params-repr key build on
        the hot bound-computation path.
        """
        memo = self._area_by_match
        if memo is not None:
            by_id = memo.get(id(match))
            if by_id is not None:
                return by_id
        key = (match.component, repr(sorted(match.params.items())))
        cached = self._area_cache.get(key)
        if cached is None:
            dummy = ComponentInstance(
                name="_bound",
                spec=self.library.get(match.component),
                params=dict(match.params),
            )
            cached = self.estimator.estimate_instance(dummy).area
            self._area_cache[key] = cached
        if memo is not None:
            memo[id(match)] = cached
        return cached

    def _min_alloc_area(self, root: Block) -> Optional[float]:
        """Least instance area any candidate of ``root`` can have.

        Memoized per root over the index's *unfiltered* entry list, so
        it lower-bounds the allocation whatever the covered set is when
        the search reaches the root; ``None`` when the root has no
        candidates at all (a dead-end the search reports as such rather
        than pruning on a vacuous bound).
        """
        memo = self._min_area_memo
        root_id = root.block_id
        if root_id not in memo:
            entries = self._index.all_entries(root)
            memo[root_id] = min(
                (self._instance_area(m) for m in entries), default=None
            )
        return memo[root_id]

    def _trace(
        self, parent: Optional[int], decision: str, opamps: int
    ) -> Optional[int]:
        if not self.options.collect_tree:
            return None
        node = DecisionNode(
            node_id=len(self._tree), parent=parent, decision=decision,
            opamps=opamps,
        )
        self._tree.append(node)
        return node.node_id

    def _set_status(
        self, node_id: Optional[int], status: str, detail: str = ""
    ) -> None:
        if node_id is not None:
            self._tree[node_id].status = status
            if detail:
                self._tree[node_id].detail = detail

    # -- completion ----------------------------------------------------------------------------

    def _current_netlist(self) -> Netlist:
        netlist = Netlist(name=self.sfg.name, library=self.library)
        for inst in self._instances:
            netlist.instances.append(
                ComponentInstance(
                    name=inst.name,
                    spec=inst.spec,
                    params=dict(inst.params),
                    inputs=[self._resolve(n) for n in inst.inputs],
                    output=self._resolve(inst.output),  # type: ignore[arg-type]
                    control=(
                        self._resolve(inst.control)
                        if isinstance(inst.control, int)
                        else inst.control
                    ),
                    covers=list(inst.covers),
                    transform=inst.transform,
                )
            )
        for block in self.sfg.inputs:
            netlist.inputs[block.name] = block.block_id
        for block in self.sfg.outputs:
            driver = self.sfg.driver_of(block, 0)
            if driver is not None:
                netlist.outputs[block.name] = self._resolve(driver.block_id)
        for block in self.sfg.blocks_of_kind(BlockKind.CONST):
            netlist.const_nets[block.block_id] = float(block.params["value"])
        return netlist

    def _complete(self, node_id: Optional[int], opamp_nr: int) -> None:
        """A complete mapping: call the estimation tools (• in Fig. 5)."""
        uncovered = {
            b.block_id for b in self.sfg.processing_blocks()
        } - self._covered
        if uncovered:
            # A disconnected fragment escaped the frontier walk.
            self._set_status(node_id, "dead-end")
            if self._explog is not None:
                self._explog.emit(
                    "dead_end", node=node_id,
                    reason="uncovered fragment",
                    uncovered=sorted(uncovered),
                )
            return
        self._stats.complete_mappings += 1
        self._solutions.append(opamp_nr)
        netlist = self._current_netlist()
        estimate = self.estimator.estimate(netlist)
        violations = self.estimator.constraints.check_detailed(estimate)
        if fault_active("mapper.infeasible"):
            violations = list(violations) + [
                ConstraintViolation(
                    INJECTED_VIOLATION,
                    "fault injection: mapping forced infeasible",
                )
            ]
        if violations:
            # An infeasible complete mapping: tally *which* constraints
            # killed it, so the search outcome can name its blockers.
            names = [v.name for v in violations]
            for name in names:
                self._stats.constraint_violations[name] = (
                    self._stats.constraint_violations.get(name, 0) + 1
                )
            self._set_status(node_id, "infeasible", ", ".join(names))
            if self._explog is not None:
                self._explog.emit(
                    "complete", node=node_id, opamps=opamp_nr,
                    area=estimate.area, power=estimate.power,
                    feasible=False, violations=names,
                    violation_messages=[v.message for v in violations],
                )
            return
        self._stats.feasible_mappings += 1
        self._set_status(
            node_id, "complete", f"area {estimate.area_um2:,.0f} um^2"
        )
        is_new_best = (
            self._best_estimate is None
            or estimate.area < self._best_estimate.area
        )
        if self._explog is not None:
            self._explog.emit(
                "complete", node=node_id, opamps=opamp_nr,
                area=estimate.area, power=estimate.power,
                feasible=True, new_best=is_new_best,
            )
        if is_new_best:
            self._best_estimate = estimate
            self._best_netlist = netlist
        if self.options.first_solution_only:
            self._abort = True

    def _truncate(self, reason: str, parent_node: Optional[int]) -> None:
        """Stop the search at a budget, keeping the best incumbent."""
        self._stats.truncated = True
        self._stats.truncated_reason = reason
        self._abort = True
        if self._explog is not None:
            self._explog.emit(
                "truncated", node=parent_node, reason=reason,
                max_nodes=self.options.max_nodes,
                deadline_s=self.options.deadline_s,
            )

    # -- the Figure-5 recursion -----------------------------------------------------------------

    def _map(
        self,
        pending: FrozenSet[int],
        opamp_nr: int,
        parent_node: Optional[int],
    ) -> None:
        if self._abort:
            return
        if self._lifecycle is not None:
            # Raises CancelledError / DeadlineExceeded: a lifecycle
            # stop abandons the search outright, unlike the mapper's
            # own soft deadline which truncates to the incumbent.
            self._lifecycle.checkpoint("mapper.search")
        if self._stats.nodes_visited >= self.options.max_nodes:
            self._truncate("nodes", parent_node)
            return
        if (
            self._deadline is not None
            and time.perf_counter() >= self._deadline
        ):
            self._truncate("deadline", parent_node)
            return
        if not pending:
            self._complete(parent_node, opamp_nr)
            return
        # "select an input signal of sub-graph; mapping(block with output
        # signal...)": depth-first on a deterministic representative.
        cur_block = self.sfg.block(max(pending))
        candidates = self._ordered_candidates(cur_block)
        if self._explog is not None:
            self._explog.emit(
                "candidates", node=parent_node,
                root=cur_block.block_id, root_name=cur_block.name,
                sequencing=self.options.sequencing,
                order=[
                    {
                        "component": c.component,
                        "cone": sorted(c.cone),
                        "opamps": c.opamps,
                        "transform": c.transform,
                    }
                    for c in candidates
                ],
            )
        if not candidates:
            self._set_status(parent_node, "dead-end")
            if self._explog is not None:
                self._explog.emit(
                    "dead_end", node=parent_node,
                    reason="no candidate cones",
                    root=cur_block.block_id, root_name=cur_block.name,
                )
            return

        for match in candidates:
            # ---- sharing branch (tried first per the sequencing rule).
            if self.options.enable_sharing and self.options.share_first:
                self._try_share(match, pending, opamp_nr, parent_node)
                if self._abort:
                    return
            # ---- allocation branch with the bounding rule (□).
            # Two admissible lower bounds on any completion of this
            # partial mapping: the paper's op-amp-count * MinArea, and
            # the exact area of everything allocated so far (areas only
            # accumulate).  Prune on the tighter of the two.
            self._stats.nodes_visited += 1
            instance_area = self._instance_area(match)
            minarea_bound = (opamp_nr + match.opamps) * self.min_area
            exact_bound = self._area_so_far + instance_area
            if self.options.bounding_mode == "minarea":
                lower_bound = minarea_bound
            elif self.options.bounding_mode == "exact":
                lower_bound = exact_bound
            else:  # combined
                lower_bound = max(minarea_bound, exact_bound)
            if (
                self.options.enable_bounding
                and self.options.bounding_mode != "minarea"
                and self._index is not None
                and not self.options.enable_sharing
                and self._best_estimate is not None
            ):
                # Min-area memo: without sharing, every frontier root
                # still costs at least its cheapest candidate, so the
                # next root's memoized minimum tightens the exact
                # bound.  (Sharing covers a cone at zero extra area,
                # which would make this inadmissible.)
                preview = self._frontier_after(
                    pending, match, covered=self._covered | match.cone
                )
                if preview:
                    next_min = self._min_alloc_area(
                        self.sfg.block(max(preview))
                    )
                    if next_min is not None:
                        lower_bound = max(
                            lower_bound, exact_bound + next_min
                        )
            if (
                self.options.enable_bounding
                and self._best_estimate is not None
                and lower_bound >= self._best_estimate.area
            ):
                self._stats.nodes_pruned += 1
                incumbent = self._best_estimate.area
                node = self._trace(
                    parent_node,
                    f"alloc {match.component} for {sorted(match.cone)}",
                    opamp_nr + match.opamps,
                )
                self._set_status(
                    node, "pruned",
                    f"bound {lower_bound * 1e12:,.0f} >= "
                    f"incumbent {incumbent * 1e12:,.0f} um^2",
                )
                if self._explog is not None:
                    self._explog.emit(
                        "prune", node=node, parent=parent_node,
                        component=match.component,
                        cone=sorted(match.cone),
                        opamps=opamp_nr + match.opamps,
                        minarea_bound=minarea_bound,
                        exact_bound=exact_bound,
                        lower_bound=lower_bound,
                        incumbent_area=incumbent,
                    )
                continue
            node = self._trace(
                parent_node,
                f"alloc {match.component} for {sorted(match.cone)}",
                opamp_nr + match.opamps,
            )
            if self._explog is not None:
                self._explog.emit(
                    "alloc", node=node, parent=parent_node,
                    component=match.component, cone=sorted(match.cone),
                    opamps=opamp_nr + match.opamps,
                    transform=match.transform,
                    instance_area=instance_area,
                )
            instance = ComponentInstance(
                name=f"U{len(self._instances) + 1}",
                spec=self.library.get(match.component),
                params=dict(match.params),
                inputs=list(match.inputs),
                output=match.root_id,
                control=match.control,
                covers=sorted(match.cone),
                transform=match.transform,
            )
            self._instances.append(instance)
            self._area_stack.append(instance_area)
            self._area_so_far += instance_area
            self._cover(match.cone)
            self._map(
                self._frontier_after(pending, match),
                opamp_nr + match.opamps,
                node,
            )
            self._uncover(match.cone)
            self._instances.pop()
            self._area_so_far -= self._area_stack.pop()
            if self._abort:
                return
            if not self.options.enable_sharing or self.options.share_first:
                continue
            self._try_share(match, pending, opamp_nr, parent_node)
            if self._abort:
                return

    def _try_share(
        self,
        match: PatternMatch,
        pending: FrozenSet[int],
        opamp_nr: int,
        parent_node: Optional[int],
    ) -> None:
        """Sharing branch: reuse an existing identical component.

        Blocks in distinct signal paths can share one component when
        they have identical inputs and perform similar operations —
        i.e. same component, same parameters, same (resolved) sources.
        """
        resolved_inputs = tuple(self._resolve(n) for n in match.inputs)
        for instance in self._instances:
            if instance.spec.name != match.component:
                continue
            if repr(sorted(instance.params.items())) != repr(
                sorted(match.params.items())
            ):
                continue
            if tuple(self._resolve(n) for n in instance.inputs) != resolved_inputs:
                continue
            control_a = (
                self._resolve(instance.control)
                if isinstance(instance.control, int)
                else instance.control
            )
            control_b = (
                self._resolve(match.control)
                if isinstance(match.control, int)
                else match.control
            )
            if control_a != control_b:
                continue
            # Reuse: alias this cone's output onto the instance's output.
            self._stats.nodes_visited += 1
            self._stats.shared_branches += 1
            node = self._trace(
                parent_node,
                f"share {instance.name} for {sorted(match.cone)}",
                opamp_nr,
            )
            if self._explog is not None:
                self._explog.emit(
                    "share", node=node, parent=parent_node,
                    instance=instance.name,
                    component=match.component,
                    cone=sorted(match.cone), opamps=opamp_nr,
                )
            self._alias[match.root_id] = instance.output  # type: ignore[assignment]
            instance.covers.extend(sorted(match.cone))
            self._cover(match.cone)
            self._map(self._frontier_after(pending, match), opamp_nr, node)
            self._uncover(match.cone)
            del instance.covers[-len(match.cone):]
            del self._alias[match.root_id]
            if self._abort:
                return
            break  # at most one identical instance can exist

    # -- public API -----------------------------------------------------------------------

    def _publish_metrics(self) -> None:
        registry = metrics()
        if not registry.enabled:
            return
        stats = self._stats
        registry.inc("mapper.runs")
        registry.inc("mapper.nodes_visited", stats.nodes_visited)
        registry.inc("mapper.nodes_pruned", stats.nodes_pruned)
        registry.inc("mapper.shared_branches", stats.shared_branches)
        registry.inc("mapper.complete_mappings", stats.complete_mappings)
        registry.inc("mapper.feasible_mappings", stats.feasible_mappings)
        for name, count in stats.constraint_violations.items():
            registry.inc(f"mapper.violations.{name}", count)
        if stats.truncated:
            registry.inc("mapper.truncations")
        if self._index is not None:
            registry.inc("mapper.index.hits", self._index.hits)
            registry.inc("mapper.index.misses", self._index.misses)
        registry.observe("mapper.runtime_s", stats.runtime_s)

    def run(self) -> MappingResult:
        """Search for the minimum-area feasible mapping."""
        start = time.perf_counter()
        if self.options.deadline_s is not None:
            self._deadline = start + max(self.options.deadline_s, 0.0)
        if fault_active("mapper.deadline"):
            # Fault injection: behave as if the wall clock expired
            # before the first decision node.
            self._deadline = start
        self._lifecycle = active_context()
        if self._lifecycle is not None and fault_active("mapper.cancel"):
            # Fault injection: the run is cancelled just as the search
            # starts, driving the in-loop cancellation path.
            self._lifecycle.token.cancel("injected mapper.cancel fault")
        self._explog = active_explog()
        if self._explog is not None:
            self._explog.emit(
                "search_start", sfg=self.sfg.name,
                min_area=self.min_area,
                bounding_mode=self.options.bounding_mode,
                sequencing=self.options.sequencing,
                enable_bounding=self.options.enable_bounding,
                enable_sharing=self.options.enable_sharing,
                enable_transforms=self.options.enable_transforms,
                max_nodes=self.options.max_nodes,
            )
        with trace_phase("mapper.search", sfg=self.sfg.name) as span:
            root_node = self._trace(None, "root", 0)
            self._map(self._initial_pending(), 0, root_node)
            self._stats.runtime_s = time.perf_counter() - start
            span.annotate(**self._stats.as_dict())
        if self._explog is not None:
            self._explog.emit(
                "search_end", sfg=self.sfg.name,
                best_area=(
                    self._best_estimate.area if self._best_estimate else None
                ),
                **self._stats.as_dict(),
            )
        self._publish_metrics()
        if self._best_netlist is None or self._best_estimate is None:
            if not self._stats.truncated:
                reason = "no feasible complete mapping"
            elif self._stats.truncated_reason == "deadline":
                reason = "wall-clock deadline exhausted"
            else:
                reason = "node budget exhausted"
            blockers = self._stats.violation_summary()
            if blockers:
                reason += f"; violated constraints: {blockers}"
            raise SynthesisError(
                f"architecture synthesis failed for {self.sfg.name!r}: "
                f"{reason} ({self._stats.complete_mappings} complete, "
                f"{self._stats.nodes_visited} nodes)",
                statistics=self._stats,
            )
        self._best_netlist.validate()
        diagnostics: List[Diagnostic] = []
        if self._stats.truncated:
            if self._stats.truncated_reason == "deadline":
                # deadline_s may be None when the deadline was injected.
                budget = (
                    f"the {self.options.deadline_s:g} s wall-clock deadline"
                    if self.options.deadline_s is not None
                    else "the (injected) wall-clock deadline"
                )
            else:
                budget = f"the {self.options.max_nodes}-node budget"
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    f"architecture search for {self.sfg.name!r} stopped at "
                    f"{budget}; the mapping "
                    f"is the best of {self._stats.feasible_mappings} "
                    "feasible solution(s) found, not proven optimal",
                )
            )
        return MappingResult(
            netlist=self._best_netlist,
            estimate=self._best_estimate,
            statistics=self._stats,
            tree=self._tree,
            solution_opamps=self._solutions,
            diagnostics=diagnostics,
        )


def map_sfg(
    sfg: SignalFlowGraph,
    library: Optional[ComponentLibrary] = None,
    estimator: Optional[Estimator] = None,
    options: Optional[MapperOptions] = None,
    matcher: Optional[PatternMatcher] = None,
) -> MappingResult:
    """Map one signal-flow graph (convenience wrapper)."""
    return ArchitectureMapper(
        sfg, library=library, estimator=estimator, options=options,
        matcher=matcher,
    ).run()


def map_design(
    design: VhifDesign,
    library: Optional[ComponentLibrary] = None,
    constraints: Optional[ConstraintSet] = None,
    options: Optional[MapperOptions] = None,
    matcher: Optional[PatternMatcher] = None,
) -> Dict[str, MappingResult]:
    """Map every SFG of a VHIF design; returns results by SFG name."""
    estimator = Estimator(constraints=constraints or ConstraintSet())
    results: Dict[str, MappingResult] = {}
    for sfg in design.sfgs:
        results[sfg.name] = map_sfg(
            sfg,
            library=library,
            estimator=estimator,
            options=options,
            matcher=matcher,
        )
    return results
