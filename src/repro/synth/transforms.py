"""Interfacing transformations (paper Section 5, branching rule).

"Transformations pertaining to circuit interfacing introduce additional
circuits, i.e. follower circuits, or various input/output stages, for
diminishing loading/coupling effects among interconnected components."

The functional transformations (cascade splitting, inverting /
non-inverting substitution) live in the pattern matcher where they
produce branching alternatives; the interfacing transformations are a
deterministic post-pass on the chosen net-list:

* an instance whose output drives more than ``max_fanout`` component
  inputs gets a voltage follower buffering the extra load;
* an input port with a declared source impedance above
  ``buffer_input_above_ohms`` is buffered before it fans into the
  signal path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.synth.netlist import ComponentInstance, Netlist
from repro.vhif.design import VhifDesign


@dataclass
class InterfacingOptions:
    """Loading rules that trigger follower insertion."""

    max_fanout: int = 3
    buffer_input_above_ohms: float = 50.0e3


def _fanout_counts(netlist: Netlist) -> Dict[object, int]:
    counts: Dict[object, int] = {}
    for inst in netlist.instances:
        for net in inst.inputs:
            counts[net] = counts.get(net, 0) + 1
        if isinstance(inst.control, int):
            counts[inst.control] = counts.get(inst.control, 0) + 1
    return counts


def apply_interfacing(
    netlist: Netlist,
    design: Optional[VhifDesign] = None,
    options: Optional[InterfacingOptions] = None,
) -> List[ComponentInstance]:
    """Insert followers per the loading rules; returns the new instances.

    The netlist is modified in place: heavy-fanout nets are split so
    that at most ``max_fanout`` loads hang on the original driver and
    the rest move to a follower's output net.
    """
    options = options or InterfacingOptions()
    added: List[ComponentInstance] = []

    # -- rule 1: fan-out limiting ------------------------------------------
    counts = _fanout_counts(netlist)
    for inst in list(netlist.instances):
        net = inst.output
        if net is None:
            continue
        load = counts.get(net, 0)
        if load <= options.max_fanout:
            continue
        follower = netlist.add_instance(
            "voltage_follower",
            inputs=[net],
            output=f"{net}_buf",
            covers=[],
            name=f"BUF{len(added) + 1}",
        )
        added.append(follower)
        # Move the excess loads to the buffered net.
        moved = 0
        to_move = load - options.max_fanout
        for consumer in netlist.instances:
            if consumer is follower or moved >= to_move:
                continue
            for index, source in enumerate(consumer.inputs):
                if source == net and moved < to_move:
                    consumer.inputs[index] = follower.output
                    moved += 1

    # -- rule 2: high-impedance input buffering ------------------------------
    if design is not None:
        for port_name, net in list(netlist.inputs.items()):
            info = design.ports.get(port_name)
            if info is None or info.impedance_ohms is None:
                continue
            if info.direction != "in":
                continue
            if info.impedance_ohms <= options.buffer_input_above_ohms:
                continue
            follower = netlist.add_instance(
                "voltage_follower",
                inputs=[net],
                output=f"{net}_inbuf",
                covers=[],
                name=f"INBUF_{port_name}",
            )
            added.append(follower)
            for consumer in netlist.instances:
                if consumer is follower:
                    continue
                consumer.inputs = [
                    follower.output if source == net else source
                    for source in consumer.inputs
                ]
    return added
