"""Architecture generation: branch-and-bound mapping (paper Section 5)."""

from repro.synth.greedy import map_sfg_greedy
from repro.synth.mapper import (
    ArchitectureMapper,
    DecisionNode,
    MapperOptions,
    MappingResult,
    MappingStatistics,
    map_design,
    map_sfg,
)
from repro.synth.netlist import ComponentInstance, Netlist
from repro.synth.transforms import InterfacingOptions, apply_interfacing

__all__ = [
    "ArchitectureMapper",
    "ComponentInstance",
    "DecisionNode",
    "InterfacingOptions",
    "MapperOptions",
    "MappingResult",
    "MappingStatistics",
    "Netlist",
    "apply_interfacing",
    "map_design",
    "map_sfg",
    "map_sfg_greedy",
]
