"""Mapping simple FSMs onto analog circuits (paper Section 5).

"For analog systems, the FSM has very often a simple structure, that can
be entirely mapped to analog circuits, i.e. Schmitt triggers, zero-cross
detectors, sample-and-hold circuits, etc."

Two FSM idioms are recognized and realized directly in the signal-flow
graph, so the mapper sees ordinary comparator blocks instead of abstract
control signals:

* **zero-cross control** — a signal assigned ``'1'`` when one
  ``q'above(th)`` event holds and ``'0'`` otherwise (the receiver's
  ``c1``) is realized by the comparator already watching the event; the
  signal's control bindings are rewired to the comparator's output net
  (the paper adds "a small hysteresis margin, so that repeated
  switchings between states are avoided");
* **Schmitt control** — a signal set by *two* thresholds on the *same*
  quantity (set below the low threshold, reset above the high one — the
  function generator's ramp direction) collapses the two comparators
  into one hysteretic comparator, which the pattern library maps onto a
  Schmitt trigger.

FSMs that match neither idiom are left as-is: the paper notes that more
complex structures are delegated to standard digital synthesis [8],
which is outside the analog mapping path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vass import ast_nodes as ast
from repro.vhif.design import VhifDesign
from repro.vhif.fsm import (
    AboveEvent,
    AllOf,
    AnyOf,
    Condition,
    ExprCondition,
    Fsm,
    Not,
)
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT, SignalFlowGraph


@dataclass
class RealizedControl:
    """Record of one FSM control signal realized by analog hardware."""

    signal: str
    fsm: str
    kind: str  # "zero_cross" / "schmitt"
    block_id: int


#: standard-cell cost model for the digital fallback (2 µm flavor)
_FLIPFLOP_AREA = 1.5e-9  # m^2 per state/output flip-flop
_DATAPATH_ELEMENT_AREA = 3.0e-9  # m^2 per data-path operator


@dataclass
class FsmRealizationSummary:
    """How one FSM ends up implemented after synthesis.

    Simple FSMs realize as analog circuits (zero-cross detectors,
    Schmitt triggers); the rest fall back to digital synthesis [8] —
    outside this flow, but costed with a standard-cell estimate so the
    area roll-up stays complete.
    """

    fsm: str
    mode: str  # "analog" / "digital" / "mixed"
    realized_signals: List[str]
    digital_signals: List[str]
    flipflops: int
    datapath_elements: int
    estimated_area: float  # m^2, zero for fully analog realizations

    def describe(self) -> str:
        if self.mode == "analog":
            return (
                f"FSM {self.fsm!r}: fully analog "
                f"({', '.join(self.realized_signals)})"
            )
        return (
            f"FSM {self.fsm!r}: {self.mode} — {self.flipflops} flip-flops, "
            f"{self.datapath_elements} data-path elements, "
            f"~{self.estimated_area*1e12:,.0f} um^2 of standard cells "
            f"for signals {', '.join(self.digital_signals) or '(none)'}"
        )


def summarize_fsm_realizations(
    design: VhifDesign, realized: List[RealizedControl]
) -> List[FsmRealizationSummary]:
    """Classify every FSM: analog realization vs digital fallback.

    ``realized`` is the output of :func:`realize_event_controls`.
    Signals whose values are read *only* as sampled data (they never
    configure SFG blocks) count as digital outputs and fall to the
    standard-cell estimate, as do any control signals the analog
    patterns could not absorb.
    """
    import math as _math

    realized_by_fsm: Dict[str, List[str]] = {}
    for record in realized:
        realized_by_fsm.setdefault(record.fsm, []).append(record.signal)

    summaries: List[FsmRealizationSummary] = []
    for fsm in design.fsms:
        analog = sorted(set(realized_by_fsm.get(fsm.name, [])))
        all_signals = sorted(fsm.output_signals())
        digital = [s for s in all_signals if s not in analog]
        if not digital:
            summaries.append(
                FsmRealizationSummary(
                    fsm=fsm.name,
                    mode="analog",
                    realized_signals=analog,
                    digital_signals=[],
                    flipflops=0,
                    datapath_elements=0,
                    estimated_area=0.0,
                )
            )
            continue
        n_states = max(fsm.n_states(), 1)
        state_bits = max(1, _math.ceil(_math.log2(n_states + 1)))
        flipflops = state_bits + len(digital)
        datapath = fsm.datapath_elements()
        area = (
            flipflops * _FLIPFLOP_AREA
            + datapath * _DATAPATH_ELEMENT_AREA
        )
        summaries.append(
            FsmRealizationSummary(
                fsm=fsm.name,
                mode="mixed" if analog else "digital",
                realized_signals=analog,
                digital_signals=digital,
                flipflops=flipflops,
                datapath_elements=datapath,
                estimated_area=area,
            )
        )
    return summaries


def _above_tests(
    condition: Condition, negated: bool = False
) -> List[Tuple[str, float, bool]]:
    """(quantity, threshold, polarity) tests found in an arc condition.

    Polarity is True when the arc requires ``q'above(th)`` to be *true*.
    Handles both AboveEvent terms and ExprCondition wrappers around
    ``q'above(th) = TRUE/FALSE`` comparisons.
    """
    out: List[Tuple[str, float, bool]] = []
    if isinstance(condition, AboveEvent):
        # An event term alone carries no level information.
        return out
    if isinstance(condition, Not):
        return _above_tests(condition.operand, not negated)
    if isinstance(condition, (AllOf, AnyOf)):
        for operand in condition.operands:
            out.extend(_above_tests(operand, negated))
        return out
    if isinstance(condition, ExprCondition):
        out.extend(_expr_above_tests(condition.expr, negated))
    return out


def _expr_above_tests(expr, negated: bool) -> List[Tuple[str, float, bool]]:
    if isinstance(expr, ast.AttributeExpr) and expr.attribute == "above":
        if isinstance(expr.prefix, ast.Name) and expr.arguments:
            threshold = _literal(expr.arguments[0])
            if threshold is not None:
                return [(expr.prefix.identifier, threshold, not negated)]
        return []
    if isinstance(expr, ast.BinaryOp) and expr.operator == "=":
        left, right = expr.left, expr.right
        if isinstance(right, ast.BooleanLiteral):
            inner = _expr_above_tests(left, negated)
            if not right.value:
                inner = [(q, t, not p) for q, t, p in inner]
            return inner
        if isinstance(left, ast.BooleanLiteral):
            inner = _expr_above_tests(right, negated)
            if not left.value:
                inner = [(q, t, not p) for q, t, p in inner]
            return inner
    if isinstance(expr, ast.UnaryOp) and expr.operator == "not":
        return _expr_above_tests(expr.operand, not negated)
    return []


def _literal(expr) -> Optional[float]:
    if isinstance(expr, ast.RealLiteral):
        return expr.value
    if isinstance(expr, ast.IntegerLiteral):
        return float(expr.value)
    return None


def _signal_decisions(
    fsm: Fsm,
) -> Dict[str, List[Tuple[List[Tuple[str, float, bool]], str]]]:
    """For each '0'/'1'-valued signal: (above-tests on its arc, literal)."""
    decisions: Dict[str, List[Tuple[List[Tuple[str, float, bool]], str]]] = {}
    for transition in fsm.transitions:
        state = (
            fsm.state(transition.target)
            if transition.target in fsm
            else None
        )
        if state is None:
            continue
        tests = _above_tests(transition.condition)
        for op in state.operations:
            if not op.is_signal:
                continue
            if not isinstance(op.expr, ast.CharacterLiteral):
                decisions.setdefault(op.target, []).append(([], "?"))
                continue
            decisions.setdefault(op.target, []).append((tests, op.expr.value))
    return decisions


def realize_event_controls(design: VhifDesign) -> List[RealizedControl]:
    """Realize matching FSM control signals as comparator hardware.

    Modifies the design's main SFG in place: control bindings of
    realized signals become direct comparator-output connections, and
    Schmitt pairs collapse two threshold comparators into one hysteretic
    comparator.  Returns the realizations performed.
    """
    realized: List[RealizedControl] = []
    for sfg in design.sfgs:
        for fsm in design.fsms:
            realized.extend(_realize_fsm(design, sfg, fsm))
    return realized


def _realize_fsm(
    design: VhifDesign, sfg: SignalFlowGraph, fsm: Fsm
) -> List[RealizedControl]:
    realized: List[RealizedControl] = []
    decisions = _signal_decisions(fsm)
    for signal, entries in decisions.items():
        # Signals that configure SFG blocks get rewired to the
        # comparator net; bare output signals (e.g. the power meter's
        # polarity bits) are realized by the comparator itself — its
        # output *is* the signal, so there is nothing to rewire.
        if any(literal == "?" for _, literal in entries):
            continue
        # Collect the distinct (quantity, threshold) tests deciding this
        # signal; all entries must test the same quantity.
        tests: List[Tuple[str, float, bool, str]] = []
        for arc_tests, literal in entries:
            for quantity, threshold, polarity in arc_tests:
                tests.append((quantity, threshold, polarity, literal))
        if not tests:
            continue
        quantities = {t[0] for t in tests}
        if len(quantities) != 1:
            continue
        quantity = quantities.pop()
        thresholds = sorted({t[1] for t in tests})
        if len(thresholds) == 1:
            block = _realize_zero_cross(
                design, sfg, signal, quantity, thresholds[0], tests
            )
            if block is not None:
                realized.append(
                    RealizedControl(
                        signal=signal,
                        fsm=fsm.name,
                        kind="zero_cross",
                        block_id=block.block_id,
                    )
                )
        elif len(thresholds) == 2:
            block = _realize_schmitt(
                design, sfg, signal, quantity, thresholds, tests
            )
            if block is not None:
                realized.append(
                    RealizedControl(
                        signal=signal,
                        fsm=fsm.name,
                        kind="schmitt",
                        block_id=block.block_id,
                    )
                )
    return realized


def _comparator_for(
    design: VhifDesign, sfg: SignalFlowGraph, quantity: str, threshold: float
) -> Optional[Block]:
    key = f"{quantity}'above({threshold:g})"
    source = design.event_sources.get(key)
    if source is None or source[0] != sfg.name:
        return None
    return sfg.block(source[1])


def _rewire_control(sfg: SignalFlowGraph, signal: str, block: Block) -> None:
    endpoints = sfg.control_bindings.pop(signal, [])
    for endpoint in endpoints:
        sfg.connect(block, sfg.block(endpoint.block_id), port=CONTROL_PORT)


def _realize_zero_cross(
    design: VhifDesign,
    sfg: SignalFlowGraph,
    signal: str,
    quantity: str,
    threshold: float,
    tests,
) -> Optional[Block]:
    comparator = _comparator_for(design, sfg, quantity, threshold)
    if comparator is None:
        return None
    # Polarity: does '1' coincide with 'above = true'?
    one_when_above = any(
        polarity and literal == "1" for _q, _t, polarity, literal in tests
    )
    if not one_when_above:
        comparator.params["invert"] = True
    # The paper adds a small hysteresis margin so repeated switchings
    # between states are avoided (Section 6).
    comparator.params.setdefault("hysteresis", 0.0)
    _rewire_control(sfg, signal, comparator)
    return comparator


def _realize_schmitt(
    design: VhifDesign,
    sfg: SignalFlowGraph,
    signal: str,
    quantity: str,
    thresholds: List[float],
    tests,
) -> Optional[Block]:
    low, high = thresholds
    cmp_low = _comparator_for(design, sfg, quantity, low)
    cmp_high = _comparator_for(design, sfg, quantity, high)
    if cmp_low is None or cmp_high is None:
        return None
    driver = sfg.driver_of(cmp_low, 0)
    if driver is None or sfg.driver_of(cmp_high, 0) is not driver:
        return None
    # '1' below the low threshold / '0' above the high one means the
    # realized comparator is inverted (output high while input is low).
    one_when_high = any(
        literal == "1" and polarity and threshold == high
        for _q, threshold, polarity, literal in tests
    )
    schmitt = sfg.add(
        BlockKind.COMPARATOR,
        name=f"schmitt_{signal}",
        threshold=(low + high) / 2.0,
        hysteresis=(high - low) / 2.0,
        invert=not one_when_high,
    )
    sfg.connect(driver, schmitt, port=0)
    _rewire_control(sfg, signal, schmitt)
    # The original event comparators stay as FSM event sources only if
    # other logic still consumes them; otherwise drop them.
    for comparator, threshold in ((cmp_low, low), (cmp_high, high)):
        key = f"{quantity}'above({threshold:g})"
        if sfg.fanout(comparator) == 0:
            design.event_sources.pop(key, None)
            design.event_sources[key] = (sfg.name, schmitt.block_id)
            sfg.remove_block(comparator)
    return schmitt
