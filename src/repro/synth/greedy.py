"""Greedy mapping heuristic: the paper's future-work baseline.

Section 7 notes that the branch-and-bound algorithm "might fail for
larger designs" and that ongoing work "attempts to replace the
branch-and-bound method by a more time-effective exploration heuristic".
This module provides that heuristic so the scaling benchmark can compare
optimality against runtime: at every step it takes the largest matching
cone (ties broken by fewest op amps), shares when possible, and never
backtracks.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.diagnostics import SynthesisError
from repro.estimation.estimator import Estimator
from repro.library.components import ComponentLibrary
from repro.library.patterns import PatternMatcher
from repro.synth.mapper import (
    ArchitectureMapper,
    MapperOptions,
    MappingResult,
)
from repro.vhif.sfg import SignalFlowGraph


def map_sfg_greedy(
    sfg: SignalFlowGraph,
    library: Optional[ComponentLibrary] = None,
    estimator: Optional[Estimator] = None,
    matcher: Optional[PatternMatcher] = None,
    max_cone_size: int = 4,
    fallback_unconstrained: bool = True,
) -> MappingResult:
    """Greedy, non-backtracking mapping of one signal-flow graph.

    Implemented as the branch-and-bound machinery in first-solution
    mode with the largest-first sequencing rule: the first complete
    mapping down the leftmost path *is* the greedy solution.

    With ``fallback_unconstrained`` (the benchmark default), a greedy
    path that dies on constraints is retried with an unconstrained
    estimator so its area is still reported.  The recovery ladder
    disables the fallback: there an infeasible greedy solution must
    *fail* the rung so constraint relaxation gets its turn.
    """
    options = MapperOptions(
        enable_bounding=False,
        enable_sharing=True,
        enable_transforms=False,
        sequencing="largest_first",
        max_cone_size=max_cone_size,
        first_solution_only=True,
    )
    mapper = ArchitectureMapper(
        sfg,
        library=library,
        estimator=estimator,
        options=options,
        matcher=matcher,
    )
    start = time.perf_counter()
    try:
        result = mapper.run()
    except SynthesisError:
        if not fallback_unconstrained:
            raise
        # The greedy path may die on constraints; fall back to accepting
        # the first complete mapping regardless of feasibility so the
        # benchmark can still report its area.
        options.first_solution_only = True
        relaxed = ArchitectureMapper(
            sfg,
            library=library,
            estimator=Estimator(),  # unconstrained
            options=options,
            matcher=matcher,
        )
        result = relaxed.run()
    result.statistics.runtime_s = time.perf_counter() - start
    return result
