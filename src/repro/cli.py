"""Command-line interface of the VASE reproduction.

Subcommands::

    vase compile  FILE [--entity NAME] [--dot]   # VASS -> VHIF report
    vase synth    FILE [--entity NAME]           # full flow -> netlist
                  [--trace] [--trace-json FILE]  #   + per-phase timing
                  [--cache [DIR]]                #   on-disk artifact cache
                  [--explore-solvers]            #   map all causalizations
                  [--executor serial|thread|process] [--workers N]
                  [--budget S]                   #   hard wall-clock budget
                  [--events FILE]                #   telemetry-bus JSONL
                  [--ledger PATH] [--no-ledger]  #   run-ledger control
    vase spice    FILE [--entity NAME]           # full flow -> SPICE deck
    vase verify   FILE [--amplitude A] [...]     # spec-vs-circuit check
    vase ac       FILE [--f-start F] [...]       # AC sweep of the circuit
    vase profile  FILE [--repeat N] [--cache]    # where does the time go
    vase explain  FILE [--jsonl F] [--dot F]     # why this architecture:
                  [--html F]                     #   decision-level replay
    vase metrics  [FILE] [--prom] [--json]       # metrics snapshot: table,
                  [--from-json F] [--out F]      #   Prometheus, or JSON
    vase bench-check [--update] [...]            # metrics regression gate
    vase check    FILE...                        # syntax check, all errors
    vase batch    DIR [--json F] [--strict]      # synthesize every file,
                  [--no-recovery]                #   per-file isolation
                  [--executor serial|thread|process] [--workers N]
                  [--cache [DIR]]                #   shared artifact cache
                  [--cache-stats F][--no-timing] #   deterministic output
                  [--events FILE] [--progress]   #   live telemetry
                  [--metrics-out FILE]           #   Prometheus dump
                  [--resume [JOURNAL]]           #   crash-safe resume
    vase serve    [--host H] [--port P]          # HTTP service: job queue,
                  [--executor thread|process]    #   SSE telemetry streams,
                  [--workers N] [--queue-limit N]#   /metrics, /history,
                  [--cache [DIR]] [--token T]    #   POST /jobs/<id>/cancel
                  [--drain-timeout S]            #   SIGTERM graceful drain
                  [--ledger PATH] [--no-ledger]
    vase watch    URL [--since N] [--verbose]    # tail a served job's SSE
                  [--token T] [--retries N]      #   with auto-reconnect
    vase history  [--limit N] [--outcome O]      # recent runs from the
                  [--source S] [--json]          #   persistent ledger
    vase stats    [--json]                       # ledger-wide aggregates
    vase table1                                  # reproduce Table 1
    vase examples                                # list bundled applications

``FILE`` may also be the name of a bundled application
(``receiver``, ``power_meter``, ``missile_solver``, ``iterative_solver``,
``function_generator``, ``biquad_filter``).

Exit codes: ``0`` success; ``1`` an analysis ran and failed its check
(verification miss, batch failure, syntax errors found, missing input
file); ``2`` the flow itself died on a :class:`VaseError` — printed as
``file:line:col: severity: message`` when the error is located.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps import ALL_APPLICATIONS, EXTRA_APPLICATIONS
from repro.compiler import compile_design
from repro.diagnostics import VaseError
from repro.flow import synthesize
from repro.spice import to_spice_deck
from repro.vhif.dot import design_to_dot


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_executor_args(parser, what: str) -> None:
    """The shared ``--executor`` / ``--workers`` / ``--jobs`` trio."""
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default=None,
        help=f"execution backend for {what}: serial, the in-process "
        "thread pool, or process (multiprocessing spawn workers — "
        "true multi-core; output is identical across backends)",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="worker count for --executor (default: the CPU count "
        "when an executor is chosen, else 1)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="deprecated alias: thread-pool width (use "
        "--executor/--workers)",
    )


def _add_linalg_arg(parser) -> None:
    """The shared ``--linalg`` backend knob."""
    from repro.spice.linalg import BACKENDS

    parser.add_argument(
        "--linalg", choices=BACKENDS, default="auto",
        help="linear-solver backend for SPICE-level analyses: auto, "
        "dense (reference), batched (vectorized AC grids), or sparse "
        "(scipy splu; falls back to dense without scipy).  Results "
        "are identical across backends",
    )


def _resolve_parallel(args: argparse.Namespace):
    """A :class:`~repro.pipeline.ParallelOptions` from the CLI trio.

    ``--jobs`` is the deprecated width knob: honored (as the thread
    backend) with a stderr warning, overridden by the first-class
    flags when both are given.  ``--executor`` without ``--workers``
    defaults to every available core; ``--workers`` without
    ``--executor`` picks the thread backend.
    """
    import os

    from repro.pipeline import ParallelOptions

    executor = getattr(args, "executor", None)
    workers = getattr(args, "workers", None)
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        print(
            "warning: --jobs is deprecated; use --executor/--workers",
            file=sys.stderr,
        )
        if executor is None and workers is None:
            return ParallelOptions.from_jobs(jobs)
    if executor is None and workers is None:
        return ParallelOptions()
    if workers is None:
        workers = 1 if executor == "serial" else (os.cpu_count() or 1)
    if executor is None:
        executor = "thread" if workers > 1 else "serial"
    return ParallelOptions(executor=executor, workers=workers)


def _load_source(spec: str) -> str:
    if spec in ALL_APPLICATIONS:
        return ALL_APPLICATIONS[spec].VASS_SOURCE
    if spec in EXTRA_APPLICATIONS:
        return EXTRA_APPLICATIONS[spec].VASS_SOURCE
    with open(spec, "r", encoding="utf-8") as handle:
        return handle.read()


def _source_filename(spec: str) -> str:
    """The name diagnostics should carry for ``spec``."""
    if spec in ALL_APPLICATIONS or spec in EXTRA_APPLICATIONS:
        return f"<{spec}>"
    return spec


def _cmd_compile(args: argparse.Namespace) -> int:
    source = _load_source(args.file)
    design = compile_design(
        source,
        entity_name=args.entity,
        source_filename=_source_filename(args.file),
    )
    if args.dot:
        print(design_to_dot(design))
    else:
        print(design.describe())
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.flow import FlowOptions
    from repro.instrument import JsonlSink, TelemetryBus, resolve_ledger
    from repro.pipeline import ArtifactCache

    source = _load_source(args.file)
    want_trace = bool(args.trace or args.trace_json)
    cache = (
        ArtifactCache(disk_dir=args.cache)
        if args.cache is not None
        else None
    )
    with ExitStack() as stack:
        bus = None
        if args.events:
            bus = TelemetryBus()
            sink = stack.enter_context(JsonlSink(args.events))
            bus.subscribe(sink)
        options = FlowOptions(
            trace=want_trace,
            explore_solvers=args.explore_solvers,
            parallel=_resolve_parallel(args),
            cache=cache,
            telemetry=bus,
            ledger=resolve_ledger(args.ledger, args.no_ledger),
            deadline_s=args.budget,
            linalg=args.linalg,
        )
        result = synthesize(
            source,
            entity_name=args.entity,
            options=options,
            source_filename=_source_filename(args.file),
        )
        if bus is not None:
            print(
                f"telemetry: {bus.published()} event(s) "
                f"(run {result.run_id}) written to {args.events}",
                file=sys.stderr,
            )
    for diagnostic in result.diagnostics:
        print(str(diagnostic), file=sys.stderr)
    if cache is not None:
        print(cache.stats.describe(), file=sys.stderr)
    print(result.describe())
    print()
    print(result.netlist.describe())
    if result.trace is not None and want_trace:
        from repro.instrument import metrics

        print("\ntiming tree:")
        print(result.trace.format_tree())
        table = metrics().format_table()
        if table:
            print("\nmetrics:")
            print(table)
        if args.trace_json:
            with open(args.trace_json, "w", encoding="utf-8") as handle:
                handle.write(
                    result.trace.chrome_json(
                        metadata={"design": result.design.name}
                    )
                )
            print(f"\nChrome trace written to {args.trace_json}",
                  file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.instrument import profile_flow

    source = _load_source(args.file)
    options = None
    cache = None
    if args.cache is not None:
        from repro.flow import FlowOptions
        from repro.pipeline import ArtifactCache

        cache = ArtifactCache(disk_dir=args.cache)
        options = FlowOptions(cache=cache)
    report = profile_flow(
        source, entity_name=args.entity, repeat=args.repeat,
        options=options,
    )
    if cache is not None:
        print(cache.stats.describe(), file=sys.stderr)
    print(report.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"\nprofile JSON written to {args.json}", file=sys.stderr)
    if args.trace_json and report.last_trace is not None:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            handle.write(report.last_trace.chrome_json())
        print(f"Chrome trace written to {args.trace_json}", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.flow import FlowOptions
    from repro.instrument.explain import narrate, render_exploration_html
    from repro.synth import MapperOptions
    from repro.vhif.dot import decision_tree_to_dot

    source = _load_source(args.file)
    options = FlowOptions(
        explog=True,
        trace=True,
        mapper=MapperOptions(collect_tree=True),
    )
    result = synthesize(
        source,
        entity_name=args.entity,
        options=options,
        source_filename=_source_filename(args.file),
    )
    for diagnostic in result.diagnostics:
        print(str(diagnostic), file=sys.stderr)
    print(narrate(result))
    jsonl_path = args.jsonl or f"{result.design.name}.explog.jsonl"
    result.explog.write(jsonl_path)
    print(f"\nexploration JSONL written to {jsonl_path}", file=sys.stderr)
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(decision_tree_to_dot(result.mapping.tree))
        print(f"decision-tree DOT written to {args.dot}", file=sys.stderr)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_exploration_html(result, title=args.file))
        print(f"exploration report written to {args.html}", file=sys.stderr)
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.instrument.baseline import (
        DEFAULT_REL_TOLERANCE,
        check_baselines,
    )

    tolerance = (
        args.tolerance if args.tolerance is not None
        else DEFAULT_REL_TOLERANCE
    )
    report = check_baselines(
        args.baselines,
        args.metrics,
        rel_tolerance=tolerance,
        update=args.update,
        strict=args.strict,
    )
    print(report.describe())
    return 0 if report.passed else 1


def _cmd_spice(args: argparse.Namespace) -> int:
    source = _load_source(args.file)
    result = synthesize(
        source,
        entity_name=args.entity,
        source_filename=_source_filename(args.file),
    )
    print(to_spice_deck(result.netlist))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import math

    from repro.verify import verify_equivalence

    source = _load_source(args.file)
    result = synthesize(
        source,
        entity_name=args.entity,
        source_filename=_source_filename(args.file),
    )
    inputs = {
        name: (lambda t, a=args.amplitude, f=args.frequency:
               a * math.sin(2.0 * math.pi * f * t))
        for name, info in result.design.ports.items()
        if info.direction == "in"
    }
    report = verify_equivalence(
        result, inputs=inputs, t_end=args.t_end, tolerance=args.tolerance
    )
    print(result.describe())
    print()
    print(report.describe())
    return 0 if report.passed else 1


def _cmd_ac(args: argparse.Namespace) -> int:
    from repro.flow import FlowOptions
    from repro.spice import ac_sweep, dc, elaborate

    source = _load_source(args.file)
    result = synthesize(
        source,
        entity_name=args.entity,
        options=FlowOptions(linalg=args.linalg),
        source_filename=_source_filename(args.file),
    )
    in_ports = [
        name
        for name, info in result.design.ports.items()
        if info.direction == "in"
    ]
    out_ports = [
        name
        for name, info in result.design.ports.items()
        if info.direction == "out"
    ]
    if not in_ports or not out_ports:
        print("error: AC analysis needs one input and one output port",
              file=sys.stderr)
        return 1
    circuit = elaborate(
        result.netlist, input_waves={p: dc(0.0) for p in in_ports}
    )
    out = circuit.output_nodes[out_ports[0]]
    response = ac_sweep(
        circuit.circuit,
        args.f_start,
        args.f_stop,
        points_per_decade=args.points,
        probes=[out],
        ac_source=f"VIN_{in_ports[0]}",
        linalg=args.linalg,
    )
    print(f"* AC response {in_ports[0]} -> {out_ports[0]}")
    print(f"{'f [Hz]':>12}  {'mag [dB]':>9}  {'phase [deg]':>11}")
    mags = response.magnitude_db(out)
    phases = response.phase_deg(out)
    for f, m, p in zip(response.frequencies, mags, phases):
        print(f"{f:>12.2f}  {m:>9.2f}  {p:>11.1f}")
    print(f"* -3 dB corner: {response.cutoff_frequency(out):.1f} Hz")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    source = _load_source(args.file)
    result = synthesize(
        source,
        entity_name=args.entity,
        source_filename=_source_filename(args.file),
    )
    print(
        generate_report(
            result,
            title=args.file,
            include_spice=not args.no_spice,
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.vass.parser import parse_source_collecting

    total_errors = 0
    for spec in args.files:
        source = _load_source(spec)
        _units, errors = parse_source_collecting(
            source, filename=_source_filename(spec)
        )
        for err in errors:
            print(_format_error(err), file=sys.stderr)
        total_errors += len(errors)
        status = "ok" if not errors else f"{len(errors)} error(s)"
        print(f"{spec}: {status}")
    return 0 if total_errors == 0 else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import json as json_module
    from contextlib import ExitStack
    from pathlib import Path

    from repro.flow import FlowOptions
    from repro.instrument import (
        JsonlSink,
        ProgressRenderer,
        TelemetryBus,
        resolve_ledger,
        telemetry,
    )
    from repro.pipeline import ArtifactCache
    from repro.robust.batch import find_sources, run_batch

    root = Path(args.directory)
    files = find_sources(root)
    if not files:
        print(f"error: no VASS sources under {root}", file=sys.stderr)
        return 1
    options = FlowOptions(
        recovery=not args.no_recovery, linalg=args.linalg
    )
    cache = (
        ArtifactCache(disk_dir=args.cache)
        if args.cache is not None
        else None
    )
    timing = not args.no_timing
    journal = None
    if args.resume is not None:
        from repro.robust.journal import BatchJournal

        journal = BatchJournal(args.resume)
    with ExitStack() as stack:
        if journal is not None:
            stack.callback(journal.close)
        bus = None
        if args.events or args.progress:
            bus = TelemetryBus()
            if args.events:
                sink = stack.enter_context(JsonlSink(args.events))
                bus.subscribe(sink)
            if args.progress:
                bus.subscribe(ProgressRenderer())
            stack.enter_context(telemetry(bus))
        report = run_batch(
            files,
            options=options,
            parallel=_resolve_parallel(args),
            cache=cache,
            ledger=resolve_ledger(args.ledger, args.no_ledger),
            source_label=str(root),
            journal=journal,
        )
        if bus is not None and args.events:
            print(
                f"telemetry: {bus.published()} event(s) written to "
                f"{args.events}",
                file=sys.stderr,
            )
    if args.metrics_out:
        from repro.instrument import metrics, render_prometheus

        target = Path(args.metrics_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            render_prometheus(metrics().snapshot()), encoding="utf-8"
        )
        print(f"Prometheus metrics written to {args.metrics_out}",
              file=sys.stderr)
    print(report.describe(timing=timing))
    if cache is not None:
        print(cache.stats.describe(), file=sys.stderr)
    if args.json:
        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report.to_json(timing=timing), encoding="utf-8")
        print(f"batch JSON written to {args.json}", file=sys.stderr)
    if args.cache_stats:
        stats = cache.stats.as_dict() if cache is not None else {}
        target = Path(args.cache_stats)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json_module.dumps(stats, indent=2), encoding="utf-8"
        )
        print(f"cache stats written to {args.cache_stats}",
              file=sys.stderr)
    return report.exit_code(strict=args.strict)


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.instrument import metrics, render_prometheus

    if args.from_json:
        with open(args.from_json, "r", encoding="utf-8") as handle:
            snapshot = json_module.load(handle)
    else:
        if not args.file:
            print("error: vase metrics needs FILE (or --from-json SNAP)",
                  file=sys.stderr)
            return 1
        source = _load_source(args.file)
        registry = metrics()
        registry.reset()
        synthesize(
            source,
            entity_name=args.entity,
            source_filename=_source_filename(args.file),
        )
        snapshot = registry.snapshot()

    if args.prom:
        text = render_prometheus(snapshot)
    elif args.json:
        text = json_module.dumps(snapshot, indent=2) + "\n"
    else:
        registry = metrics()
        if args.from_json:
            # Rebuild a table from the snapshot's plain data.
            lines = []
            for name, value in snapshot.get("counters", {}).items():
                lines.append(f"{name:<40} {value:>12g}")
            for name, value in snapshot.get("gauges", {}).items():
                lines.append(f"{name:<40} {value:>12g}  (gauge)")
            for name, hist in snapshot.get("histograms", {}).items():
                lines.append(
                    f"{name:<40} {hist.get('count', 0):>12g}  "
                    f"(mean {hist.get('mean', 0.0):g})"
                )
            text = "\n".join(lines) + "\n"
        else:
            text = registry.format_table() + "\n"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"metrics written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _resolve_cli_ledger(flag):
    """The ledger a read-only verb should look at, or ``None``."""
    from repro.instrument import resolve_ledger

    return resolve_ledger(flag, disabled=False)


def _cmd_history(args: argparse.Namespace) -> int:
    import json as json_module

    ledger = _resolve_cli_ledger(args.ledger)
    if ledger is None or not ledger.exists():
        where = ledger.path if ledger is not None else "(disabled)"
        print(f"error: no run ledger at {where} — run `vase synth` or "
              "`vase batch` first", file=sys.stderr)
        return 1
    records = ledger.tail(
        limit=args.limit, outcome=args.outcome, source=args.source
    )
    if args.json:
        print(json_module.dumps(
            [record.as_dict() for record in records], indent=2
        ))
        return 0
    if not records:
        print("no matching runs")
        return 0
    for record in records:
        print(record.describe())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.instrument import format_stats, summarize

    ledger = _resolve_cli_ledger(args.ledger)
    if ledger is None or not ledger.exists():
        where = ledger.path if ledger is not None else "(disabled)"
        print(f"error: no run ledger at {where} — run `vase synth` or "
              "`vase batch` first", file=sys.stderr)
        return 1
    records = ledger.records()
    stats = summarize(records)
    if ledger.skipped:
        print(f"warning: skipped {ledger.skipped} corrupt ledger line(s)",
              file=sys.stderr)
    if args.json:
        print(json_module.dumps(stats, indent=2))
    else:
        print(f"ledger: {ledger.path}")
        print(format_stats(stats))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.flow import FlowOptions
    from repro.instrument import TelemetryBus, resolve_ledger, telemetry
    from repro.pipeline import ArtifactCache, ParallelOptions
    from repro.serve import JobManager, create_server

    if args.jobs is not None:
        print("warning: --jobs is deprecated; use --workers",
              file=sys.stderr)
    if args.token is None and args.host not in (
        "127.0.0.1", "localhost", "::1"
    ):
        print(
            f"error: refusing to bind non-loopback host {args.host!r} "
            "without --token (bearer-token authentication)",
            file=sys.stderr,
        )
        return 1
    width = args.workers or args.jobs or 2
    execution = ParallelOptions(
        executor=args.executor or "thread", workers=width,
    )
    # One shared two-tier cache for every served job: the resident
    # service is exactly the setting where warm stage artifacts pay off
    # — and, under --executor process, its on-disk tier is the store
    # the worker processes share.
    cache = ArtifactCache(disk_dir=args.cache)
    options = FlowOptions(
        trace=True, explog=True, recovery=True, cache=cache,
    )
    manager = JobManager(
        options,
        ledger=resolve_ledger(args.ledger, args.no_ledger),
        queue_limit=args.queue_limit,
        execution=execution,
    )
    bus = TelemetryBus()
    bus.subscribe(manager.route)
    server = create_server(
        args.host, args.port, manager,
        heartbeat_s=args.heartbeat, verbose=args.verbose,
        token=args.token,
    )
    host, port = server.server_address[:2]
    print(f"vase serve listening on http://{host}:{port} "
          f"({execution.describe()} worker(s), "
          f"queue limit {args.queue_limit}"
          f"{', bearer auth' if args.token else ''})",
          file=sys.stderr)

    def _request_stop(signum, frame):  # noqa: ARG001 - signal API
        del frame
        print(f"\nsignal {signum}: shutting down", file=sys.stderr)
        # serve_forever() must be stopped from another thread —
        # shutdown() blocks until the serve loop exits.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    with telemetry(bus):
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down", file=sys.stderr)
        finally:
            server.server_close()
            # Graceful drain: admission is closed, running jobs may
            # finish within the timeout, the rest are cancelled
            # cooperatively.
            print(
                f"draining: waiting up to {args.drain_timeout:.0f} s "
                "for running jobs", file=sys.stderr,
            )
            counts = manager.drain(args.drain_timeout)
            print(
                f"drained: {counts['finished']} job(s) finished, "
                f"{counts['cancelled']} cancelled", file=sys.stderr,
            )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.serve import watch

    try:
        return watch(
            args.url,
            since=args.since,
            verbose=args.verbose,
            token=args.token,
            max_retries=args.retries,
            retry_backoff_s=args.retry_backoff,
        )
    except OSError as err:  # URLError / ConnectionError / socket errors
        print(f"error: {err}", file=sys.stderr)
        return 1


def _cmd_table1(args: argparse.Namespace) -> int:
    del args
    header = (
        f"{'Application':<20} {'blocks':>6} {'states':>6} {'datapath':>8}  "
        "Synthesis Results"
    )
    print(header)
    print("-" * len(header))
    for name, module in ALL_APPLICATIONS.items():
        result = synthesize(module.VASS_SOURCE)
        stats = result.design.statistics()
        print(
            f"{name:<20} {stats.n_blocks:>6} {stats.n_states:>6} "
            f"{stats.n_datapath:>8}  {result.summary}"
        )
        print(f"{'  (paper)':<20} {module.PAPER_ROW['vhif_blocks']:>6} "
              f"{module.PAPER_ROW['vhif_states']:>6} "
              f"{module.PAPER_ROW['vhif_datapath']:>8}  "
              f"{module.PAPER_ROW['components']}")
    return 0


def _cmd_examples(args: argparse.Namespace) -> int:
    del args
    for name, module in {**ALL_APPLICATIONS, **EXTRA_APPLICATIONS}.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<20} {doc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vase",
        description=(
            "VASE reproduction: behavioral synthesis of analog systems "
            "from VHDL-AMS (Doboli & Vemuri, DATE 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile VASS to VHIF")
    p_compile.add_argument("file", help="VASS file or bundled app name")
    p_compile.add_argument("--entity", default=None)
    p_compile.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT instead of text")
    p_compile.set_defaults(func=_cmd_compile)

    p_synth = sub.add_parser("synth", help="run the full synthesis flow")
    p_synth.add_argument("file", help="VASS file or bundled app name")
    p_synth.add_argument("--entity", default=None)
    p_synth.add_argument("--trace", action="store_true",
                         help="print a per-phase timing tree and metrics")
    p_synth.add_argument("--trace-json", default=None, metavar="FILE",
                         help="write a Chrome trace_event JSON file")
    p_synth.add_argument(
        "--cache", nargs="?", const=".vase-cache", default=None,
        metavar="DIR",
        help="keep pipeline artifacts in an on-disk cache "
        "(default directory .vase-cache)",
    )
    p_synth.add_argument(
        "--explore-solvers", action="store_true",
        help="map every enumerated DAE causalization and keep the "
        "best-area feasible result",
    )
    _add_executor_args(p_synth, "--explore-solvers")
    p_synth.add_argument(
        "--budget", type=float, default=None, metavar="S",
        help="hard wall-clock budget for the whole flow in seconds: "
        "the run is checked at every stage boundary and inside the "
        "mapper search, and aborts with a deadline error once over "
        "budget (the mapper's own soft deadline truncates instead)",
    )
    p_synth.add_argument(
        "--events", default=None, metavar="FILE",
        help="stream every telemetry event of the run (spans, metric "
        "deltas, explog decisions, cache ops, lifecycle) as JSONL",
    )
    p_synth.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append the run record to this ledger (default "
        ".vase-ledger/, or the VASE_LEDGER environment variable)",
    )
    p_synth.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the ledger",
    )
    _add_linalg_arg(p_synth)
    p_synth.set_defaults(func=_cmd_synth)

    p_profile = sub.add_parser(
        "profile",
        help="profile the flow: per-phase timings over repeated runs",
    )
    p_profile.add_argument("file", help="VASS file or bundled app name")
    p_profile.add_argument("--entity", default=None)
    p_profile.add_argument("--repeat", type=_positive_int, default=3)
    p_profile.add_argument("--json", default=None, metavar="FILE",
                           help="write the aggregated profile as JSON")
    p_profile.add_argument("--trace-json", default=None, metavar="FILE",
                           help="write the last run's Chrome trace")
    p_profile.add_argument(
        "--cache", nargs="?", const=".vase-cache", default=None,
        metavar="DIR",
        help="share an on-disk artifact cache across the repeats "
        "(the per-stage cache hits show what a warm run skips)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_explain = sub.add_parser(
        "explain",
        help="replay the mapper's exploration: why this architecture, "
        "why not the alternatives",
    )
    p_explain.add_argument("file", help="VASS file or bundled app name")
    p_explain.add_argument("--entity", default=None)
    p_explain.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="where to write the exploration JSONL "
        "(default <design>.explog.jsonl)",
    )
    p_explain.add_argument("--dot", default=None, metavar="FILE",
                           help="write the Figure-6 decision tree as DOT")
    p_explain.add_argument(
        "--html", default=None, metavar="FILE",
        help="write a self-contained HTML exploration report",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_bench = sub.add_parser(
        "bench-check",
        help="diff benchmark metrics JSON against committed baselines",
    )
    p_bench.add_argument("--baselines", default="benchmarks/baselines",
                         metavar="DIR")
    p_bench.add_argument("--metrics", default="benchmarks/out",
                         metavar="DIR")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="relative tolerance override (default 0.05)")
    p_bench.add_argument("--update", action="store_true",
                         help="re-pin the baselines from the current dumps")
    p_bench.add_argument("--strict", action="store_true",
                         help="fail when a baseline has no current dump")
    p_bench.set_defaults(func=_cmd_bench_check)

    p_spice = sub.add_parser("spice", help="synthesize and print SPICE deck")
    p_spice.add_argument("file", help="VASS file or bundled app name")
    p_spice.add_argument("--entity", default=None)
    p_spice.set_defaults(func=_cmd_spice)

    p_verify = sub.add_parser(
        "verify",
        help="check spec-vs-circuit equivalence on sine stimuli",
    )
    p_verify.add_argument("file", help="VASS file or bundled app name")
    p_verify.add_argument("--entity", default=None)
    p_verify.add_argument("--amplitude", type=float, default=0.5)
    p_verify.add_argument("--frequency", type=float, default=1000.0)
    p_verify.add_argument("--t-end", type=float, default=2e-3)
    p_verify.add_argument("--tolerance", type=float, default=0.08)
    p_verify.set_defaults(func=_cmd_verify)

    p_ac = sub.add_parser(
        "ac", help="AC sweep of the synthesized circuit"
    )
    p_ac.add_argument("file", help="VASS file or bundled app name")
    p_ac.add_argument("--entity", default=None)
    p_ac.add_argument("--f-start", type=float, default=10.0)
    p_ac.add_argument("--f-stop", type=float, default=1e5)
    p_ac.add_argument("--points", type=int, default=5)
    _add_linalg_arg(p_ac)
    p_ac.set_defaults(func=_cmd_ac)

    p_report = sub.add_parser(
        "report", help="markdown design report for a specification"
    )
    p_report.add_argument("file", help="VASS file or bundled app name")
    p_report.add_argument("--entity", default=None)
    p_report.add_argument("--no-spice", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_check = sub.add_parser(
        "check",
        help="syntax-check VASS files, reporting every error at once",
    )
    p_check.add_argument("files", nargs="+",
                         help="VASS files or bundled app names")
    p_check.set_defaults(func=_cmd_check)

    p_batch = sub.add_parser(
        "batch",
        help="synthesize every VASS file under a directory with "
        "per-file fault isolation",
    )
    p_batch.add_argument("directory", help="directory (or single file)")
    p_batch.add_argument("--json", default=None, metavar="FILE",
                         help="write the machine-readable summary JSON")
    p_batch.add_argument("--strict", action="store_true",
                         help="count degraded (recovered) results as "
                         "failures for the exit code")
    p_batch.add_argument("--no-recovery", action="store_true",
                         help="disable the recovery ladder (a failing "
                         "file fails outright)")
    _add_executor_args(
        p_batch, "concurrent file synthesis (output is identical "
        "to the serial run)",
    )
    p_batch.add_argument(
        "--cache", nargs="?", const=".vase-cache", default=None,
        metavar="DIR",
        help="share an on-disk artifact cache across files and runs "
        "(default directory .vase-cache)",
    )
    p_batch.add_argument(
        "--cache-stats", default=None, metavar="FILE",
        help="write the artifact-cache counters as JSON",
    )
    p_batch.add_argument(
        "--no-timing", action="store_true",
        help="zero the wall-clock fields so repeated runs produce "
        "byte-identical output",
    )
    p_batch.add_argument(
        "--events", default=None, metavar="FILE",
        help="stream the whole batch's telemetry events as JSONL "
        "(one shared run id; per-file lifecycle events included)",
    )
    p_batch.add_argument(
        "--progress", action="store_true",
        help="render live per-file progress from the telemetry bus",
    )
    p_batch.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the metrics registry in Prometheus text "
        "exposition format after the run",
    )
    p_batch.add_argument(
        "--resume", nargs="?", const=".vase-batch.journal",
        default=None, metavar="JOURNAL",
        help="journal every completed file (fsync'd JSONL; default "
        ".vase-batch.journal) and, on restart after a crash or kill, "
        "skip files the journal already records for the same source "
        "content and options",
    )
    p_batch.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append the batch record to this ledger (default "
        ".vase-ledger/, or the VASE_LEDGER environment variable)",
    )
    p_batch.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the ledger",
    )
    _add_linalg_arg(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_metrics = sub.add_parser(
        "metrics",
        help="metrics snapshot of one synthesis run (or a saved "
        "snapshot): text table, --prom, or --json",
    )
    p_metrics.add_argument(
        "file", nargs="?", default=None,
        help="VASS file or bundled app name (omit with --from-json)",
    )
    p_metrics.add_argument("--entity", default=None)
    p_metrics.add_argument(
        "--prom", action="store_true",
        help="render in Prometheus text exposition format",
    )
    p_metrics.add_argument(
        "--json", action="store_true",
        help="render the raw snapshot as JSON",
    )
    p_metrics.add_argument(
        "--from-json", default=None, metavar="SNAP",
        help="render a previously saved snapshot JSON instead of "
        "running a synthesis",
    )
    p_metrics.add_argument(
        "--out", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_serve = sub.add_parser(
        "serve",
        help="run the flow as an HTTP service: POST jobs, stream "
        "telemetry as SSE, scrape /metrics, browse /history",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8626,
                         help="port (default 8626; 0 picks a free one)")
    p_serve.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default=None,
        help="resident execution backend: thread (default) or "
        "process (spawned synthesis workers off the GIL; pair with "
        "--cache so they share the on-disk artifact store)",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="resident synthesis workers (default 2)",
    )
    p_serve.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="deprecated alias for --workers",
    )
    p_serve.add_argument(
        "--queue-limit", type=_positive_int, default=64, metavar="N",
        help="waiting jobs before POST /jobs returns 503 (default 64)",
    )
    p_serve.add_argument(
        "--cache", nargs="?", const=".vase-cache", default=None,
        metavar="DIR",
        help="back the shared artifact cache with an on-disk tier "
        "(default directory .vase-cache); in-memory only when omitted",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=10.0, metavar="S",
        help="idle-stream SSE heartbeat interval (default 10 s)",
    )
    p_serve.add_argument(
        "--token", default=None, metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every request "
        "except GET /healthz; mandatory for non-loopback --host",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="on SIGTERM/SIGINT, let running jobs finish for up to "
        "S seconds before cancelling them (default 30)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )
    p_serve.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="record served jobs in this ledger (default .vase-ledger/, "
        "or the VASE_LEDGER environment variable)",
    )
    p_serve.add_argument(
        "--no-ledger", action="store_true",
        help="do not record served jobs in a ledger",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_watch = sub.add_parser(
        "watch",
        help="tail a served job's SSE telemetry stream in the terminal",
    )
    p_watch.add_argument(
        "url",
        help="job URL, e.g. http://127.0.0.1:8626/jobs/<id> "
        "(/events is appended automatically)",
    )
    p_watch.add_argument(
        "--since", type=int, default=-1, metavar="SEQ",
        help="resume after this event seq (default: replay from 0)",
    )
    p_watch.add_argument(
        "--verbose", action="store_true",
        help="print every event as JSON instead of progress lines",
    )
    p_watch.add_argument(
        "--token", default=None, metavar="TOKEN",
        help="bearer token for token-protected servers",
    )
    p_watch.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="consecutive connection failures before giving up "
        "(default 5); any received event resets the budget",
    )
    p_watch.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="S",
        help="initial reconnect backoff in seconds, doubled per "
        "consecutive failure up to 15 s (default 0.5)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_history = sub.add_parser(
        "history", help="recent runs from the persistent run ledger"
    )
    p_history.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger to read (default .vase-ledger/ or VASE_LEDGER)",
    )
    p_history.add_argument(
        "--limit", type=_positive_int, default=20, metavar="N",
        help="show at most N runs (default 20)",
    )
    p_history.add_argument(
        "--outcome", default=None,
        choices=["ok", "degraded", "failed", "cancelled"],
        help="only runs with this outcome",
    )
    p_history.add_argument(
        "--source", default=None, metavar="SUBSTR",
        help="only runs whose source matches this substring",
    )
    p_history.add_argument("--json", action="store_true",
                           help="emit the records as JSON")
    p_history.set_defaults(func=_cmd_history)

    p_stats = sub.add_parser(
        "stats",
        help="aggregates across the run ledger: outcome and "
        "degradation rates, cache hit rate, duration percentiles",
    )
    p_stats.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger to read (default .vase-ledger/ or VASE_LEDGER)",
    )
    p_stats.add_argument("--json", action="store_true",
                         help="emit the aggregates as JSON")
    p_stats.set_defaults(func=_cmd_stats)

    p_table = sub.add_parser("table1", help="reproduce the paper's Table 1")
    p_table.set_defaults(func=_cmd_table1)

    p_ex = sub.add_parser("examples", help="list bundled applications")
    p_ex.set_defaults(func=_cmd_examples)
    return parser


def _format_error(err: Exception) -> str:
    """Render a :class:`VaseError` as ``file:line:col: severity: message``.

    Located errors (lexer/parser/semantic/compile) carry a
    ``SourceLocation`` and the bare message; everything else falls back
    to a plain ``error:`` prefix.
    """
    location = getattr(err, "location", None)
    bare = getattr(err, "bare_message", None)
    if location is not None and bare is not None:
        return f"{location}: error: {bare}"
    return f"error: {err}"


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except VaseError as err:
        print(_format_error(err), file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
