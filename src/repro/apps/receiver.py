"""The receiver module of a telephone set (paper Figure 2, Table 1 row 1).

Reconstructed from the paper's description [14]: the receiver amplifies,
with different gains, signals from the calling party (``line``) and
from the local microphone/transmitter path (``local``), compensates
line-length losses by switching a compensation resistance ``rvar``, and
drives a 270 Ω earphone at 285 mV peak with output limiting.
"""

from __future__ import annotations

import math

from repro.flow import FlowOptions, SynthesisResult, synthesize

#: Paper's Table-1 row for this application (for bench comparison).
PAPER_ROW = {
    "vass_continuous": 4,
    "vass_quantities": 4,
    "vass_event": 4,
    "vass_signals": 2,
    "vhif_blocks": 6,
    "vhif_states": 4,
    "vhif_datapath": 1,
    "components": "2 amplif., 1 zero-cross det.",
}

#: Output limiting level observed in the paper's Figure 8 (volts).
LIMIT_LEVEL = 1.5

VASS_SOURCE = """
-- Receiver module of a telephone set (Figure 2 of the paper).
ENTITY telephone IS
PORT (
  QUANTITY line  : IN real IS voltage;
  QUANTITY local : IN real IS voltage;
  QUANTITY earph : OUT real IS voltage
                   LIMITED AT 1.5 v
                   DRIVES 270.0 ohm AT 285.0 mv PEAK
);
END ENTITY;

ARCHITECTURE behavioral OF telephone IS
  CONSTANT Aline  : real := 2.0;   -- gain for the calling party
  CONSTANT Alocal : real := 1.0;   -- gain for the local sidetone
  CONSTANT r1c    : real := 0.5;   -- compensation value, short line
  CONSTANT r2c    : real := 0.75;  -- extra compensation, long line
  CONSTANT Vth    : real := 0.2;   -- line-level threshold
  QUANTITY rvar : real;
  SIGNAL c1 : bit;
BEGIN
  earph == (Aline * line + Alocal * local) * rvar;

  IF (c1 = '1') USE
    rvar == r1c;
  ELSE
    rvar == r1c + r2c;
  END USE;

  PROCESS (line'ABOVE(Vth)) IS
  BEGIN
    IF (line'ABOVE(Vth) = TRUE)
    THEN c1 <= '1';
    ELSE c1 <= '0';
    END IF;
  END PROCESS;
END ARCHITECTURE;
"""


def synthesize_receiver(options: FlowOptions = None) -> SynthesisResult:
    """Run the full flow on the receiver specification."""
    return synthesize(VASS_SOURCE, options=options)


def line_wave(amplitude: float = 1.0, freq_hz: float = 1000.0):
    """The high-amplitude test input of the Figure-8 experiment."""
    return lambda t: amplitude * math.sin(2.0 * math.pi * freq_hz * t)


def expected_earph(line: float, local: float) -> float:
    """Reference output (pre-limiting) from the specification's math."""
    rvar = 0.5 if line > 0.2 else 1.25
    value = (2.0 * line + 1.0 * local) * rvar
    return min(max(value, -LIMIT_LEVEL), LIMIT_LEVEL)
