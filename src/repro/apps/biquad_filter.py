"""A second-order (biquad) low-pass filter: the paper's filter use case.

Section 3 of the paper motivates the declarative style with filters:
"Typically, the behavior of filters is expressed as transfer functions
... Instead, we could describe signal properties along the signal path,
i.e. frequency ranges, and let the synthesis tool infer an appropriate
filter type."

This application specifies the state-variable (two-integrator-loop)
realization of::

    H(s) = w0^2 / (s^2 + (w0/Q) s + w0^2)

as an implicit DAE set.  The compiler causalizes the two states into
integrators, the mapper fuses each input network into a summing
integrator (the classic Tow-Thomas structure), and the AC analysis of
the elaborated circuit shows the Butterworth response.  The port's
``FREQUENCY`` annotation propagates into the op-amp specifications
through the flow's derived constraints.
"""

from __future__ import annotations

import math

from repro.flow import FlowOptions, SynthesisResult, synthesize

#: filter corner frequency and quality factor used by the specification
F0_HZ = 1000.0
Q = 0.707  # Butterworth

PAPER_ROW = {
    "components": "2 integ., 1 amplif. (state-variable biquad)",
}

VASS_SOURCE = f"""
-- Second-order low-pass filter, state-variable form.
ENTITY biquad_filter IS
PORT (
  QUANTITY vin : IN real IS voltage FREQUENCY 0.0 TO {F0_HZ:.1f}
                 RANGE -1.0 TO 1.0;
  QUANTITY vlp : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE state_variable OF biquad_filter IS
  CONSTANT w0 : real := {2.0 * math.pi * F0_HZ:.6f};
  CONSTANT q  : real := {Q};
  QUANTITY xbp : real := 0.0;  -- band-pass state
  QUANTITY xlp : real := 0.0;  -- low-pass state
BEGIN
  xbp'dot == w0 * (vin - xbp / q - xlp);
  xlp'dot == w0 * xbp;
  vlp == xlp;
END ARCHITECTURE;
"""


def synthesize_biquad(options: FlowOptions = None) -> SynthesisResult:
    """Run the full flow on the biquad specification."""
    return synthesize(VASS_SOURCE, options=options)


def reference_magnitude(f_hz: float) -> float:
    """|H(j 2 pi f)| of the ideal transfer function."""
    w0 = 2.0 * math.pi * F0_HZ
    s = 1j * 2.0 * math.pi * f_hz
    h = w0 ** 2 / (s ** 2 + (w0 / Q) * s + w0 ** 2)
    return abs(h)
