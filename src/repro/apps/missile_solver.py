"""The missile equation solver (Table 1 row 3): a nonlinear ODE set.

Reconstructed from the application class described in [2]: an analog
computer for one-dimensional missile flight — velocity driven by thrust
against aerodynamic drag, altitude integrating velocity.  The drag term
``cd * v**1.8`` is computed through the log/antilog pair (the reason the
paper's synthesis result contains a log amplifier and an anti-log
amplifier) and the power is expressed with ``log``/``exp`` explicitly so
the continuous-time part is a pure DAE set.
"""

from __future__ import annotations

from repro.flow import FlowOptions, SynthesisResult, synthesize

PAPER_ROW = {
    "vass_continuous": 4,
    "vass_quantities": 9,
    "vass_event": 0,
    "vass_signals": 0,
    "vhif_blocks": 13,
    "vhif_states": 0,
    "vhif_datapath": 0,
    "components": "2 integ., 1 anti-log.amplif., 4 amplif., 1 log.amplif. (reduced)",
}

VASS_SOURCE = """
-- One-dimensional missile flight solver: m v' = thrust - drag - m g,
-- h' = v, drag = cd * (v + v0) ** beta through the log/antilog pair.
ENTITY missile_solver IS
PORT (
  QUANTITY thrust : IN real IS voltage RANGE 0.0 TO 3.5;
  QUANTITY vel    : OUT real IS voltage;
  QUANTITY alt    : OUT real IS voltage
);
END ENTITY;

ARCHITECTURE equations OF missile_solver IS
  CONSTANT m    : real := 2.0;    -- mass (scaled units)
  CONSTANT g    : real := 0.5;    -- gravity (scaled)
  CONSTANT cd   : real := 0.05;   -- drag coefficient
  CONSTANT beta : real := 1.8;    -- drag exponent
  CONSTANT v0   : real := 0.1;    -- keeps the log argument positive
  CONSTANT kh   : real := 0.2;    -- altitude output scaling
  QUANTITY v    : real := 0.0;
  QUANTITY h    : real := 0.0;
  QUANTITY drag : real;
BEGIN
  m * v'dot == thrust - drag - m * g;
  drag == cd * exp(beta * log(v + v0));
  h'dot == kh * v;
  vel == v;
  alt == h;
END ARCHITECTURE;
"""


def synthesize_missile_solver(options: FlowOptions = None) -> SynthesisResult:
    """Run the full flow on the missile-solver specification."""
    return synthesize(VASS_SOURCE, options=options)


def reference_trajectory(thrust: float, t_end: float, dt: float):
    """Pure-python reference integration of the same equations.

    Used by tests to check the compiled signal-flow solver against the
    mathematical model (forward Euler, same step as the interpreter).
    """
    m, g, cd, beta, v0, kh = 2.0, 0.5, 0.05, 1.8, 0.1, 0.2
    v = h = 0.0
    t = 0.0
    while t < t_end - dt / 2:
        drag = cd * (v + v0) ** beta
        dv = (thrust - drag - m * g) / m
        v += dv * dt
        h += kh * v * dt
        t += dt
    return v, h
