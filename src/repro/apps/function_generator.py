"""The ramp-signal function generator (Table 1 row 5).

Reconstructed from the example of Grimm & Waldschmidt [6]: a triangle /
ramp generator built from an integrator whose slope input is switched
between +Vref and -Vref by a direction control.  The event-driven part
flips the direction when the ramp crosses the high or low threshold —
exactly the structure the paper's synthesis realizes with one
integrator, one analog MUX and one Schmitt trigger.
"""

from __future__ import annotations

from repro.flow import FlowOptions, SynthesisResult, synthesize

PAPER_ROW = {
    "vass_continuous": 2,
    "vass_quantities": 2,
    "vass_event": 4,
    "vass_signals": 3,
    "vhif_blocks": 4,
    "vhif_states": 2,
    "vhif_datapath": 1,
    "components": "1 integ., 1 MUX, 1 Schmitt trigger",
}

#: thresholds / slope used by the specification
V_HIGH = 1.0
V_LOW = -1.0
SLOPE = 4000.0  # volts per second at Vref = 1

VASS_SOURCE = """
-- Ramp (triangle) signal generator after Grimm/Waldschmidt [6].
ENTITY function_generator IS
PORT (
  QUANTITY ramp : OUT real IS voltage RANGE -1.0 TO 1.0
);
END ENTITY;

ARCHITECTURE oscillator OF function_generator IS
  CONSTANT vhi    : real := 1.0;
  CONSTANT vlo    : real := -1.0;
  CONSTANT vrefp  : real := 1.0;
  CONSTANT vrefn  : real := -1.0;
  CONSTANT slope  : real := 4000.0;
  QUANTITY vsel : real;
  SIGNAL dir : bit;
BEGIN
  ramp'dot == slope * vsel;

  IF (dir = '1') USE
    vsel == vrefp;
  ELSE
    vsel == vrefn;
  END USE;

  PROCESS (ramp'ABOVE(vhi), ramp'ABOVE(vlo)) IS
  BEGIN
    IF (ramp'ABOVE(vhi) = TRUE) THEN
      dir <= '0';
    ELSIF (ramp'ABOVE(vlo) = FALSE) THEN
      dir <= '1';
    END IF;
  END PROCESS;
END ARCHITECTURE;
"""


def synthesize_function_generator(
    options: FlowOptions = None,
) -> SynthesisResult:
    """Run the full flow on the function-generator specification."""
    return synthesize(VASS_SOURCE, options=options)


def expected_period() -> float:
    """Oscillation period of the ideal triangle wave, seconds."""
    swing = V_HIGH - V_LOW
    return 2.0 * swing / SLOPE
