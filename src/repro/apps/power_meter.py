"""The acquisition part of a programmable power-meter ASIC (Table 1 row 2).

Reconstructed from the description of [18] (Garverick et al., JSSC
1991): the acquisition front end samples two sensor channels — a
voltage-sense and a current-sense input — converts each to digital data
on the sampling strobe, and detects each channel's polarity with
zero-cross detectors (power metering needs the signed product).
"""

from __future__ import annotations

import math

from repro.flow import FlowOptions, SynthesisResult, synthesize

PAPER_ROW = {
    "vass_continuous": 8,
    "vass_quantities": 6,
    "vass_event": 3,
    "vass_signals": 3,
    "vhif_blocks": 6,
    "vhif_states": 2,
    "vhif_datapath": 2,
    "components": "2 zero-cross det., 2 S/H, 2 ADC",
}

VASS_SOURCE = """
-- Acquisition part of a programmable mixed-signal power meter [18].
ENTITY power_meter IS
PORT (
  QUANTITY vsense : IN real IS voltage RANGE -2.0 TO 2.0;
  QUANTITY isense : IN real IS current RANGE -2.0 TO 2.0;
  SIGNAL sclk  : IN bit;
  SIGNAL vcode : OUT bit_vector(0 TO 7);
  SIGNAL icode : OUT bit_vector(0 TO 7);
  SIGNAL vsign : OUT bit;
  SIGNAL isign : OUT bit
);
END ENTITY;

ARCHITECTURE acquisition OF power_meter IS
  CONSTANT Vzero : real := 0.0;
BEGIN
  -- Sampling and conversion of both channels on the strobe.
  PROCESS (sclk) IS
  BEGIN
    IF (sclk = '1') THEN
      vcode <= vsense;
      icode <= isense;
    END IF;
  END PROCESS;

  -- Polarity detection for the signed power computation.
  PROCESS (vsense'ABOVE(Vzero), isense'ABOVE(Vzero)) IS
  BEGIN
    IF (vsense'ABOVE(Vzero) = TRUE)
    THEN vsign <= '1';
    ELSE vsign <= '0';
    END IF;
    IF (isense'ABOVE(Vzero) = TRUE)
    THEN isign <= '1';
    ELSE isign <= '0';
    END IF;
  END PROCESS;
END ARCHITECTURE;
"""


def synthesize_power_meter(options: FlowOptions = None) -> SynthesisResult:
    """Run the full flow on the power-meter specification."""
    return synthesize(VASS_SOURCE, options=options)


def mains_waves(freq_hz: float = 50.0, phase: float = 0.4):
    """Representative mains voltage/current test stimuli."""
    omega = 2.0 * math.pi * freq_hz
    return {
        "vsense": lambda t: 1.5 * math.sin(omega * t),
        "isense": lambda t: 0.8 * math.sin(omega * t - phase),
    }
