"""The iterative equation solver (Table 1 row 4).

Reconstructed from the application class described in [2]: an analog
linear-equation solver in the classical feedback-integrator style.  Each
unknown is the output of an integrator driven by its equation's
residual; the integrators iterate continuously until the residuals
vanish, i.e. the circuit settles at the solution of::

    x + y = bx        y + z = by        z + x = bz

The event-driven part samples the solution on an external strobe into a
held output (the S/H of the paper's result) and raises ``done``.
"""

from __future__ import annotations

import numpy as np

from repro.flow import FlowOptions, SynthesisResult, synthesize

PAPER_ROW = {
    "vass_continuous": 1,
    "vass_quantities": 1,
    "vass_event": 4,
    "vass_signals": 2,
    "vhif_blocks": 6,
    "vhif_states": 2,
    "vhif_datapath": 2,
    "components": "3 integ., 1 S/H, 1 diff. amplif.",
}

VASS_SOURCE = """
-- Continuous-time iterative solver for a 3x3 linear system.
ENTITY iterative_solver IS
PORT (
  QUANTITY bx : IN real IS voltage;
  QUANTITY by : IN real IS voltage;
  QUANTITY bz : IN real IS voltage;
  SIGNAL strobe : IN bit;
  QUANTITY residual : OUT real IS voltage;
  SIGNAL xs   : OUT real;
  SIGNAL done : OUT bit
);
END ENTITY;

ARCHITECTURE feedback OF iterative_solver IS
  QUANTITY x : real := 0.0;
  QUANTITY y : real := 0.0;
  QUANTITY z : real := 0.0;
BEGIN
  -- Integrator feedback: each derivative is the equation residual.
  x'dot == bx - x - y;
  y'dot == by - y - z;
  z'dot == bz - z - x;
  residual == x - y;

  -- Sample the converged unknown on the strobe.
  PROCESS (strobe) IS
  BEGIN
    IF (strobe = '1') THEN
      xs   <= x;
      done <= '1';
    ELSE
      done <= '0';
    END IF;
  END PROCESS;
END ARCHITECTURE;
"""


def synthesize_iterative_solver(options: FlowOptions = None) -> SynthesisResult:
    """Run the full flow on the iterative-solver specification."""
    return synthesize(VASS_SOURCE, options=options)


def exact_solution(bx: float, by: float, bz: float):
    """Closed-form solution of the 3x3 system, for test comparison."""
    matrix = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
    rhs = np.array([bx, by, bz])
    return np.linalg.solve(matrix, rhs)
