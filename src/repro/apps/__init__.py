"""The five Table-1 applications plus extension examples, in VASS."""

from repro.apps import (
    biquad_filter,
    function_generator,
    iterative_solver,
    missile_solver,
    power_meter,
    receiver,
)

#: application key -> module, in Table-1 order
ALL_APPLICATIONS = {
    "receiver": receiver,
    "power_meter": power_meter,
    "missile_solver": missile_solver,
    "iterative_solver": iterative_solver,
    "function_generator": function_generator,
}

#: applications beyond the paper's Table 1 (extension features)
EXTRA_APPLICATIONS = {
    "biquad_filter": biquad_filter,
}

__all__ = [
    "ALL_APPLICATIONS",
    "EXTRA_APPLICATIONS",
    "biquad_filter",
    "function_generator",
    "iterative_solver",
    "missile_solver",
    "power_meter",
    "receiver",
]
