"""A bounded worker pool with deterministic result ordering.

Used by the solver-space exploration (``FlowOptions.explore_solvers``),
by ``vase batch --jobs`` and — as a persistent pool — by the ``vase
serve`` job queue: callers pass zero-argument thunks and always get the
results back **in submission order**, no matter how many workers ran
them or in which order they finished — so a parallel run is
output-identical to the serial one.

Thunks are expected to capture their own failures (the batch runner
and the solver explorer both return outcome objects rather than
raising); an exception that does escape a thunk propagates to the
caller exactly as in the serial case.

:class:`WorkerPool` is the resident form: the one-shot
:func:`run_parallel` creates and drains a pool per call, while
long-running consumers (the ``vase serve`` job queue) keep one pool
alive across many submissions and shut it down explicitly.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


class WorkerPool:
    """A persistent bounded thread pool.

    ``submit`` hands one thunk to the pool and returns its
    :class:`~concurrent.futures.Future`; ``map_ordered`` runs a whole
    batch and returns results in submission order.  Usable as a context
    manager (``shutdown(wait=True)`` on exit).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = ThreadPoolExecutor(max_workers=workers)

    def submit(self, thunk: Callable[[], T]) -> "Future[T]":
        return self._executor.submit(thunk)

    def map_ordered(self, thunks: Sequence[Callable[[], T]]) -> List[T]:
        """Run every thunk on the pool; results in submission order.

        An exception escaping a thunk propagates to the caller — but
        only after every outstanding future has been cancelled, so the
        remaining work does not keep running (and holding pool slots)
        behind the caller's back.  Thunks already running when the
        first raise surfaces cannot be stopped mid-flight; queued ones
        never start.
        """
        futures = [self._executor.submit(thunk) for thunk in thunks]
        results: List[T] = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown(wait=True)
        return False


def run_parallel(
    thunks: Sequence[Callable[[], T]], jobs: int = 1
) -> List[T]:
    """Run every thunk, ``jobs`` at a time; results in submission order."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    with WorkerPool(min(jobs, len(thunks))) as pool:
        return pool.map_ordered(thunks)
