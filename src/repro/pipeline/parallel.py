"""A bounded worker pool with deterministic result ordering.

Used by the solver-space exploration (``FlowOptions.explore_solvers``)
and by ``vase batch --jobs``: callers pass a list of zero-argument
thunks and always get the results back **in submission order**, no
matter how many workers ran them or in which order they finished — so
a parallel run is output-identical to the serial one.

Thunks are expected to capture their own failures (the batch runner
and the solver explorer both return outcome objects rather than
raising); an exception that does escape a thunk propagates to the
caller exactly as in the serial case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


def run_parallel(
    thunks: Sequence[Callable[[], T]], jobs: int = 1
) -> List[T]:
    """Run every thunk, ``jobs`` at a time; results in submission order."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    workers = min(jobs, len(thunks))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]
