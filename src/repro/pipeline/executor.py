"""Pluggable execution backends: one API, three ways to run tasks.

Every parallel surface of the flow — ``FlowOptions.explore_solvers``,
``vase batch``, the ``vase serve`` resident pool — used to hard-code a
thread pool behind a bare ``jobs: int`` knob.  Threads are the wrong
tool for the CPU-bound half of the flow: the branch-and-bound mapper
and the MNA factorizations serialize on the GIL, so ``--jobs 4`` buys
fault isolation and overlap of the (small) I/O slices but no
multi-core speedup.  This module makes the executor a first-class
choice:

``serial``
    Run tasks inline on the calling thread, in order.  The reference
    semantics every other backend must be output-identical to.
``thread``
    The existing bounded :class:`~repro.pipeline.parallel.WorkerPool`.
    Cheap to start, shares all in-process state (artifact cache
    memory tier, metrics registry, telemetry bus) — but GIL-bound.
``process``
    ``multiprocessing`` **spawn** workers behind a Pipe task bridge.
    True multi-core execution of CPU-bound synthesis.  Tasks cross
    the pickling boundary: a task is a *module-level function* plus
    picklable arguments (closures and live sessions stay home — see
    ``Executor.distributed``), results and escaped exceptions are
    pickled back.  The on-disk ``.vase-cache/`` tier is the shared
    store across workers; telemetry events published inside a worker
    are forwarded over the result channel and re-published onto the
    submitting run's bus, so per-run seqs stay dense no matter where
    the event originated.

All backends implement the same :class:`Executor` interface:
``submit`` (one task, returns a :class:`~concurrent.futures.Future`),
``map_ordered`` (a batch, results in submission order), ``shutdown``,
and context-manager use.  ``map_ordered`` cancels every outstanding
future before propagating an escaped task exception, so a failing
task never leaks the remaining work into the background.

Worker lifecycle of the ``process`` backend: workers are spawned
eagerly, live for the executor's lifetime (one interpreter start and
one ``import repro`` per worker, amortized over all its tasks), and
are shut down gracefully with a poison-pill message.  A worker that
crashes (killed, segfaulted, ``os._exit``) is detected by EOF on its
pipe: its in-flight task is *retried* with exponential backoff and
deterministic jitter (crashes are transient until proven otherwise)
while a replacement worker is spawned; once the bounded retries are
exhausted — or a per-task circuit breaker trips after consecutive
crashes of the same task, so a poisoned input cannot crash-loop the
pool — the task fails with a
:class:`~repro.robust.lifecycle.WorkerCrashError` — never a hang.
An optional ``task_timeout_s`` terminates workers stuck on one task
(timeouts are not retried: a stuck task would stick again).

Cancellation: each backend participates in the run-lifecycle layer
(:mod:`repro.robust.lifecycle`).  ``serial`` runs inline under the
caller's active context; ``thread`` re-enters the submitting thread's
context on the worker thread; ``process`` installs a fresh context in
the worker and relays ``Future.cancel()`` on a *running* task over the
worker's pipe, cancelling that context's token — the task then
abandons work at its next cooperative checkpoint and the future
completes with :class:`~repro.robust.lifecycle.CancelledError`.

Imports from :mod:`repro.robust.lifecycle` are deliberately deferred
to call sites: ``repro.robust`` imports ``repro.pipeline`` back (for
the batch runner), so a module-level import here would make the
package initialisation order circular.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import VaseError
from repro.pipeline.parallel import WorkerPool

#: The executor kinds ``ParallelOptions.executor`` accepts.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Poison pill sent to a process worker to make it exit its loop.
_PILL = None

#: How long ``shutdown`` waits for a worker to exit after the pill
#: before terminating it.
_JOIN_TIMEOUT_S = 5.0

#: Bridge-thread poll interval (crash/timeout detection granularity).
_POLL_S = 0.2


@dataclass(frozen=True)
class ParallelOptions:
    """Where and how wide parallel work runs.

    Replaces the bare ``jobs: int`` knob: the executor *kind* and the
    worker count are one value, validated at construction, carried on
    :class:`~repro.flow.FlowOptions` and accepted by ``vase
    synth|batch|serve --executor/--workers``.  Deliberately excluded
    from every content fingerprint (stage cache keys, ledger options
    digests): the backend must never change *what* is produced, only
    how fast.
    """

    #: one of :data:`EXECUTOR_KINDS`
    executor: str = "serial"
    #: worker count (pool width; ignored by ``serial``)
    workers: int = 1
    #: fail a ``process`` task stuck longer than this (``None``: never)
    task_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {'/'.join(EXECUTOR_KINDS)}, "
                f"got {self.executor!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")

    @classmethod
    def from_jobs(cls, jobs: int) -> "ParallelOptions":
        """The legacy ``jobs: int`` knob as a :class:`ParallelOptions`
        (``jobs > 1`` meant the thread pool, ``jobs == 1`` serial)."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        return cls(executor="thread" if jobs > 1 else "serial", workers=jobs)

    def bounded(self, n_tasks: int) -> "ParallelOptions":
        """A copy whose width never exceeds the task count."""
        return ParallelOptions(
            executor=self.executor,
            workers=max(1, min(self.workers, n_tasks)),
            task_timeout_s=self.task_timeout_s,
        )

    def describe(self) -> str:
        if self.executor == "serial":
            return "serial"
        return f"{self.executor} x{self.workers}"


@dataclass(frozen=True)
class Task:
    """One unit of work: a callable plus positional arguments.

    For the ``process`` backend ``fn`` must be a module-level function
    and ``args`` must pickle (the task crosses a process boundary);
    in-process backends accept anything callable.
    """

    fn: Callable
    args: Tuple = ()


class Executor:
    """The common backend interface (see the module docstring)."""

    #: backend name (one of :data:`EXECUTOR_KINDS`)
    kind: str = "serial"
    #: True when tasks run in *other processes*: callers must submit
    #: picklable module-level functions, and unpicklable context (live
    #: sessions, caches, buses) must be rebuilt worker-side.
    distributed: bool = False

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    # -- the protocol -------------------------------------------------------

    def submit(self, fn: Callable, *args) -> "Future":
        raise NotImplementedError

    def map_ordered(self, tasks: Sequence[Task]) -> List[object]:
        """Run every task; results in submission order.

        An exception escaping a task propagates to the caller — after
        every outstanding future has been cancelled, so no stray work
        keeps running (or holding pool slots) behind the raise.
        """
        futures = [self.submit(task.fn, *task.args) for task in tasks]
        results: List[object] = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def shutdown(self, wait: bool = True) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown(wait=True)
        return False


class SerialExecutor(Executor):
    """Run tasks inline, in submission order — the reference backend."""

    kind = "serial"

    def __init__(self):
        super().__init__(workers=1)

    def submit(self, fn: Callable, *args) -> "Future":
        future: "Future" = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as err:  # noqa: BLE001 - future carries it
            future.set_exception(err)
        return future

    def map_ordered(self, tasks: Sequence[Task]) -> List[object]:
        # Inline and lazy: a raising task means the tasks after it are
        # never started — exactly the pre-executor serial semantics.
        return [task.fn(*task.args) for task in tasks]


class ThreadExecutor(Executor):
    """The bounded in-process thread pool (GIL-bound but cheap).

    Wraps :class:`~repro.pipeline.parallel.WorkerPool`.  The
    submitting thread's telemetry run id is captured per task and
    re-entered on the worker thread, so events from workers land on
    the run that submitted them.
    """

    kind = "thread"

    def __init__(self, workers: int):
        super().__init__(workers=workers)
        self._pool = WorkerPool(workers)

    def submit(self, fn: Callable, *args) -> "Future":
        from repro.instrument.events import current_run_id, run_scope
        from repro.robust.lifecycle import active_context, run_context

        rid = current_run_id()
        context = active_context()

        def run():
            with run_scope(rid):
                if context is None:
                    return fn(*args)
                # Re-enter the submitter's lifecycle context so a
                # cancel of its token reaches work on pool threads.
                with run_context(context):
                    return fn(*args)

        return self._pool.submit(run)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


# -- the process backend ------------------------------------------------------


def _jsonable_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """A payload reduced to plain JSON-ready data (events must cross
    the pipe even when a publisher attached an exotic object)."""
    import json

    try:
        return json.loads(json.dumps(payload, default=str))
    except (TypeError, ValueError):
        return {"unforwardable": repr(payload)}


def _encode_error(err: BaseException) -> Tuple[Optional[bytes], str, str]:
    """(pickled exception or None, summary text, traceback text)."""
    summary = f"{type(err).__name__}: {err}"
    tb = "".join(traceback.format_exception(type(err), err, err.__traceback__))
    try:
        return pickle.dumps(err), summary, tb
    except Exception:  # noqa: BLE001 - exotic exception state
        return None, summary, tb


def _decode_error(encoded: Tuple[Optional[bytes], str, str]) -> BaseException:
    payload, summary, tb = encoded
    if payload is not None:
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - fall through to the summary
            pass
    return VaseError(f"worker task failed: {summary}\n{tb}")


def _worker_main(conn) -> None:
    """The loop of one spawn worker: recv task, run, send result.

    Messages from the parent are ``("task", task_id, fn, args, run_id,
    forward, faults, attempt)`` tuples, ``("cancel", task_id)``
    requests, or the poison pill (``None``) meaning exit.  Replies are
    ``("event", task_id, category, payload)`` — telemetry forwarded
    live while the task runs — and one terminal ``("done", task_id,
    ok, value)``.  All sends happen from the main thread, in order, so
    the parent always sees a task's events before its result.

    A dedicated *listener* thread drains the pipe so a ``cancel``
    request is seen while a task runs: it cancels the current task's
    lifecycle token, and the task abandons work at its next
    cooperative checkpoint (the raised ``CancelledError`` ships back
    like any other task exception).  The fault sites armed in the
    submitting process travel with each task and are re-armed here, so
    parent-side ``inject_faults`` reaches code running in workers; the
    ``executor.*`` sites are handled directly in this loop.
    """
    import queue as queue_mod
    import signal
    from contextlib import ExitStack

    from repro.instrument.events import TelemetryBus, run_scope, telemetry
    from repro.robust.faultinject import inject_faults
    from repro.robust.lifecycle import (
        CancellationToken,
        CancelledError,
        RunContext,
        TransientError,
        run_context,
    )

    try:  # the parent handles interrupts; workers die by pill or pipe
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass

    inbox: "queue_mod.Queue" = queue_mod.Queue()
    current_lock = threading.Lock()
    current: Dict[str, object] = {"id": None, "token": None}
    #: cancel requests that arrived before their task left the inbox
    early_cancels: set = set()

    def listen() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                inbox.put(_PILL)
                return
            if message is _PILL:
                inbox.put(_PILL)
                return
            if message[0] == "cancel":
                _mkind, target_id = message
                with current_lock:
                    if current["id"] == target_id:
                        token = current["token"]
                    else:
                        # The task message is still in the inbox (or in
                        # flight): remember the cancel so the main loop
                        # never starts the task at all.
                        early_cancels.add(target_id)
                        token = None
                if token is not None:
                    token.cancel("cancelled by the submitting process")
                continue
            inbox.put(message)

    threading.Thread(
        target=listen, name="vase-worker-listener", daemon=True
    ).start()

    while True:
        message = inbox.get()
        if message is _PILL:
            break
        (_mkind, task_id, fn, args, run_id, forward, faults,
         attempt) = message

        with current_lock:
            cancelled_early = task_id in early_cancels
            early_cancels.discard(task_id)
        if cancelled_early:
            conn.send(("done", task_id, False, _encode_error(
                CancelledError(
                    "task cancelled before it started on the worker"
                )
            )))
            continue

        def forward_event(event, _tid=task_id):
            try:
                conn.send((
                    "event", _tid, event.category,
                    _jsonable_payload(event.payload),
                ))
            except Exception:  # noqa: BLE001 - never kill the task
                pass

        if "executor.worker_crash_always" in faults or (
            "executor.worker_crash" in faults and attempt == 0
        ):
            os._exit(13)  # injected hard crash, as if segfaulted

        token = CancellationToken()
        with current_lock:
            current["id"] = task_id
            current["token"] = token
        ok = True
        try:
            if "executor.transient" in faults and attempt == 0:
                raise TransientError(
                    "injected transient failure on the first attempt"
                )
            with ExitStack() as stack:
                if faults:
                    stack.enter_context(inject_faults(*faults))
                if forward:
                    bus = TelemetryBus()
                    bus.subscribe(forward_event)
                    stack.enter_context(telemetry(bus))
                if run_id is not None:
                    stack.enter_context(run_scope(run_id))
                stack.enter_context(run_context(RunContext(token=token)))
                value = fn(*args)
        except BaseException as err:  # noqa: BLE001 - shipped to parent
            ok = False
            value = _encode_error(err)
        finally:
            with current_lock:
                current["id"] = None
                current["token"] = None
        try:
            conn.send(("done", task_id, ok, value))
        except Exception as err:  # noqa: BLE001 - unpicklable result
            conn.send((
                "done", task_id, False,
                _encode_error(VaseError(
                    f"task result is not picklable: {err!r}"
                )),
            ))
    conn.close()


class _TaskFuture(Future):
    """A future whose ``cancel()`` also reaches *running* tasks.

    While the task is queued this behaves exactly like a standard
    future.  Once the task runs on a worker process, ``cancel()``
    relays a cooperative cancel request over the worker's pipe: the
    worker cancels the task's lifecycle token and the task abandons
    work at its next checkpoint, completing this future with
    :class:`~repro.robust.lifecycle.CancelledError`.  The True return
    then means the request was *delivered*, not that the task already
    stopped.
    """

    def __init__(self, executor: "ProcessExecutor", task_id: int):
        super().__init__()
        self._vase_executor = executor
        self._vase_task_id = task_id

    def cancel(self) -> bool:
        if super().cancel():
            return True
        if self.done():
            return False
        return self._vase_executor._cancel_task(self._vase_task_id)


@dataclass
class _Pending:
    """Parent-side bookkeeping of one submitted process task."""

    id: int
    fn: Callable
    args: Tuple
    run_id: Optional[str]
    forward: bool
    future: "Future" = field(default_factory=Future)
    #: fault sites armed in the submitting process, shipped along
    faults: Tuple[str, ...] = ()
    #: stable task identity for retry jitter and the circuit breaker
    fingerprint: str = ""
    #: retry attempt number (0 = first execution)
    attempt: int = 0
    #: earliest monotonic time the next attempt may dispatch
    not_before: float = 0.0
    #: the parent terminated this task's worker for exceeding
    #: ``task_timeout_s`` (timeouts are never retried)
    timed_out: bool = False
    #: a cooperative cancel was requested for this task
    cancel_requested: bool = False


class _WorkerHandle:
    """One spawn worker: its process, pipe, and current assignment."""

    def __init__(self, ctx, index: int):
        self.index = index
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"vase-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps only its end
        self.busy: Optional[_Pending] = None
        self.busy_since: float = 0.0


class ProcessExecutor(Executor):
    """Spawn-worker pool behind a Pipe task bridge (see module doc).

    A dedicated *bridge* thread owns all scheduling: it assigns queued
    tasks to idle workers, multiplexes result pipes with
    :func:`multiprocessing.connection.wait`, re-publishes forwarded
    telemetry onto the parent's active bus, resolves futures, detects
    crashed workers by pipe EOF (failing their in-flight task with a
    :class:`VaseError` and spawning a replacement) and enforces the
    optional per-task timeout.
    """

    kind = "process"
    distributed = True

    def __init__(
        self,
        workers: int,
        task_timeout_s: Optional[float] = None,
        start_method: str = "spawn",
        retry: Optional["RetryPolicy"] = None,
    ):
        from repro.robust.lifecycle import RetryPolicy

        super().__init__(workers=workers)
        self.task_timeout_s = task_timeout_s
        self._retry = retry if retry is not None else RetryPolicy()
        self._ctx = get_context(start_method)
        self._lock = threading.Lock()
        self._queue: Deque[_Pending] = deque()
        #: retried tasks waiting out their backoff delay
        self._delayed: List[_Pending] = []
        #: consecutive crash count per task fingerprint
        self._crashes: Dict[str, int] = {}
        #: tripped circuit breakers: task fingerprint -> reason
        self._broken: Dict[str, str] = {}
        self._handles: List[_WorkerHandle] = []
        self._next_id = 0
        self._closed = False
        self._stopping = False
        self._idle = threading.Condition(self._lock)
        # Self-pipe: submit() pokes the bridge out of its wait().
        self._wake_recv, self._wake_send = self._ctx.Pipe(duplex=False)
        for index in range(workers):
            self._handles.append(_WorkerHandle(self._ctx, index))
        self._bridge = threading.Thread(
            target=self._bridge_loop, name="vase-executor-bridge",
            daemon=True,
        )
        self._bridge.start()

    # -- submission ---------------------------------------------------------

    def submit(self, fn: Callable, *args) -> "Future":
        from repro.instrument.events import active_bus, current_run_id
        from repro.robust.faultinject import active_faults
        from repro.robust.lifecycle import task_fingerprint

        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            pending = _Pending(
                id=self._next_id,
                fn=fn,
                args=args,
                run_id=current_run_id(),
                forward=active_bus() is not None,
                future=_TaskFuture(self, self._next_id),
                faults=tuple(sorted(active_faults())),
                fingerprint=task_fingerprint(fn, args),
            )
            self._next_id += 1
            self._queue.append(pending)
        self._wake()
        return pending.future

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except (OSError, ValueError):  # pragma: no cover - closing race
            pass

    # -- the bridge thread --------------------------------------------------

    def _bridge_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    break
                self._promote_due_locked(time.monotonic())
                self._dispatch_locked()
                conns = [
                    handle.conn for handle in self._handles
                ] + [self._wake_recv]
            try:
                ready = connection.wait(conns, timeout=_POLL_S)
            except OSError:  # pragma: no cover - shutdown race
                ready = []
            for conn in ready:
                if conn is self._wake_recv:
                    try:
                        self._wake_recv.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                self._drain_worker(conn)
            if self.task_timeout_s is not None:
                self._enforce_timeout(time.monotonic())

    def _promote_due_locked(self, now: float) -> None:
        """Move retries whose backoff elapsed back into the queue."""
        if not self._delayed:
            return
        due = [p for p in self._delayed if p.not_before <= now]
        if due:
            self._delayed = [
                p for p in self._delayed if p.not_before > now
            ]
            self._queue.extend(sorted(due, key=lambda p: p.id))

    def _dispatch_locked(self) -> None:
        """Hand queued tasks to idle workers (under the lock)."""
        for handle in self._handles:
            if handle.busy is not None:
                continue
            while self._queue:
                pending = self._queue.popleft()
                if pending.attempt == 0:
                    if not pending.future.set_running_or_notify_cancel():
                        continue  # cancelled while queued
                elif pending.future.done():
                    continue  # resolved while awaiting retry
                if pending.fingerprint in self._broken:
                    pending.future.set_exception(VaseError(
                        f"circuit breaker open: "
                        f"{self._broken[pending.fingerprint]}"
                    ))
                    self._idle.notify_all()
                    continue
                try:
                    handle.conn.send((
                        "task", pending.id, pending.fn, pending.args,
                        pending.run_id, pending.forward, pending.faults,
                        pending.attempt,
                    ))
                except Exception as err:  # noqa: BLE001 - unpicklable task
                    pending.future.set_exception(VaseError(
                        f"task could not be shipped to a worker "
                        f"process: {err}"
                    ))
                    self._idle.notify_all()
                    continue
                handle.busy = pending
                handle.busy_since = time.monotonic()
                break

    def _drain_worker(self, conn) -> None:
        with self._lock:
            handle = next(
                (h for h in self._handles if h.conn is conn), None
            )
        if handle is None:  # pragma: no cover - already replaced
            return
        try:
            message = conn.recv()
        except (EOFError, OSError):
            self._worker_died(handle)
            return
        kind = message[0]
        if kind == "event":
            _mkind, _tid, category, payload = message
            self._republish(handle, category, payload)
            return
        if kind == "done":
            _mkind, _tid, ok, value = message
            with self._lock:
                pending, handle.busy = handle.busy, None
                if pending is not None and ok:
                    # A success resets the consecutive-crash streak.
                    self._crashes.pop(pending.fingerprint, None)
                self._idle.notify_all()
            if pending is None:  # pragma: no cover - defensive
                return
            if ok:
                pending.future.set_result(value)
                return
            error = _decode_error(value)
            if self._maybe_retry(pending, error, crashed=False):
                return
            pending.future.set_exception(error)

    def _republish(self, handle: _WorkerHandle, category: str,
                   payload: Dict[str, object]) -> None:
        """Re-publish one forwarded worker event on the parent bus.

        The parent bus assigns the seq, under its own lock, in arrival
        order — so a run's seqs stay dense even when its events were
        produced in another process."""
        from repro.instrument.events import active_bus

        bus = active_bus()
        pending = handle.busy
        if bus is None or pending is None:
            return
        bus.publish(category, payload, run_id=pending.run_id)

    def _worker_died(self, handle: _WorkerHandle) -> None:
        """EOF on a worker pipe: retry or fail its task, spawn a
        replacement worker."""
        from repro.robust.lifecycle import CancelledError, WorkerCrashError

        with self._lock:
            pending, handle.busy = handle.busy, None
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            if not self._closed:
                replacement = _WorkerHandle(self._ctx, handle.index)
                self._handles[self._handles.index(handle)] = replacement
            else:
                self._handles.remove(handle)
            self._idle.notify_all()
        handle.process.join(timeout=0.5)
        if pending is None:
            return
        if pending.timed_out:
            pending.future.set_exception(VaseError(
                f"pipeline worker timed out after "
                f"{self.task_timeout_s}s and was terminated"
            ))
            return
        if pending.cancel_requested:
            pending.future.set_exception(CancelledError(
                "task cancelled; its worker exited before confirming"
            ))
            return
        error = WorkerCrashError(
            f"pipeline worker crashed while running a task "
            f"(exit code {handle.process.exitcode}, "
            f"attempt {pending.attempt + 1})"
        )
        if self._maybe_retry(pending, error, crashed=True):
            return
        pending.future.set_exception(error)

    def _maybe_retry(
        self, pending: _Pending, error: BaseException, crashed: bool
    ) -> bool:
        """Requeue a transiently-failed task with backoff.

        Returns False when the task must fail for real: the error is
        not transient, retries are exhausted, the task's circuit
        breaker tripped, or the task was cancelled/timed out.  Worker
        crashes count toward the breaker; in-band transient errors do
        not (the worker survived them).
        """
        from repro.instrument.events import CATEGORY_RETRY, active_bus
        from repro.robust.lifecycle import is_transient

        if pending.cancel_requested or pending.timed_out:
            return False
        if not crashed and not is_transient(error):
            return False
        policy = self._retry
        with self._lock:
            if self._closed or self._stopping:
                return False
            if crashed:
                count = self._crashes.get(pending.fingerprint, 0) + 1
                self._crashes[pending.fingerprint] = count
                if count >= policy.breaker_threshold:
                    self._broken.setdefault(
                        pending.fingerprint,
                        f"task crashed its worker {count} consecutive "
                        f"time(s); refusing to run it again",
                    )
                    return False
            if pending.attempt >= policy.max_retries:
                return False
            pending.attempt += 1
            delay = policy.delay_s(pending.fingerprint, pending.attempt)
            pending.not_before = time.monotonic() + delay
            self._delayed.append(pending)
        bus = active_bus()
        if bus is not None:
            bus.publish(CATEGORY_RETRY, {
                "task": pending.fingerprint[:12],
                "attempt": pending.attempt,
                "delay_s": round(delay, 4),
                "crashed": crashed,
                "error": str(error),
            }, run_id=pending.run_id)
        return True

    def _cancel_task(self, task_id: int) -> bool:
        """Cooperatively cancel a task past the queued state."""
        from repro.robust.lifecycle import CancelledError

        awaiting_retry: Optional[_Pending] = None
        with self._lock:
            for pending in self._delayed:
                if pending.id == task_id:
                    awaiting_retry = pending
                    break
            if awaiting_retry is not None:
                self._delayed.remove(awaiting_retry)
                awaiting_retry.cancel_requested = True
                self._idle.notify_all()
            else:
                handle = next(
                    (h for h in self._handles
                     if h.busy is not None and h.busy.id == task_id),
                    None,
                )
                if handle is None:
                    return False
                handle.busy.cancel_requested = True
                try:
                    handle.conn.send(("cancel", task_id))
                except (OSError, ValueError):
                    return False
                return True
        awaiting_retry.future.set_exception(CancelledError(
            "task cancelled while awaiting its retry backoff"
        ))
        return True

    def _enforce_timeout(self, now: float) -> None:
        stale: List[_WorkerHandle] = []
        with self._lock:
            for handle in self._handles:
                if (
                    handle.busy is not None
                    and now - handle.busy_since > self.task_timeout_s
                ):
                    handle.busy.timed_out = True
                    stale.append(handle)
        for handle in stale:
            handle.process.terminate()
            # EOF on the pipe then routes through _worker_died, which
            # fails the future and spawns the replacement.

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        from repro.robust.lifecycle import CancelledError

        abandoned: List[_Pending] = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if wait:
                self._idle.wait_for(
                    lambda: not self._queue
                    and not self._delayed
                    and all(h.busy is None for h in self._handles)
                )
            else:
                # Drain under the lock, resolve futures outside it:
                # cancelling a retried (already-running) future would
                # re-enter _cancel_task and deadlock on self._lock.
                queued = list(self._queue)
                self._queue.clear()
                abandoned = list(self._delayed)
                self._delayed.clear()
                for pending in queued:
                    if pending.attempt == 0:
                        pending.future.cancel()
                    else:
                        abandoned.append(pending)
        for pending in abandoned:
            pending.future.set_exception(CancelledError(
                "executor shut down before the task's retry"
            ))
        with self._lock:
            self._stopping = True
            handles = list(self._handles)
        self._wake()
        self._bridge.join(timeout=_JOIN_TIMEOUT_S)
        for handle in handles:
            try:
                handle.conn.send(_PILL)
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.process.join(timeout=_JOIN_TIMEOUT_S)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._wake_recv.close()
            self._wake_send.close()
        except OSError:  # pragma: no cover
            pass


def create_executor(options: Optional[ParallelOptions] = None) -> Executor:
    """The backend for ``options`` (default: serial).

    ``thread`` with one worker degrades to :class:`SerialExecutor`
    (a one-thread pool buys nothing); ``process`` always builds the
    pool, even one worker wide — process isolation is part of what
    was asked for.
    """
    options = options or ParallelOptions()
    if options.executor == "process":
        return ProcessExecutor(
            options.workers, task_timeout_s=options.task_timeout_s
        )
    if options.executor == "thread" and options.workers > 1:
        return ThreadExecutor(options.workers)
    return SerialExecutor()
