"""Staged synthesis pipeline: cacheable artifacts and bounded parallelism.

The Figure-1 flow of the paper, restructured as first-class stages.
See :mod:`repro.pipeline.stages` for the stage graph,
:mod:`repro.pipeline.cache` for the two-tier artifact cache and
:mod:`repro.pipeline.parallel` for the deterministic worker pool used
by ``FlowOptions.explore_solvers`` and ``vase batch --jobs``.
"""

from repro.pipeline.cache import MISS, ArtifactCache, CacheStats
from repro.pipeline.fingerprint import (
    canonicalize,
    fingerprint,
    library_fingerprint,
    stage_key,
)
from repro.pipeline.parallel import run_parallel
from repro.pipeline.stages import (
    ALL_STAGES,
    COMPILE,
    ENUMERATE,
    ESTIMATE,
    FRONTEND,
    INTERFACE,
    MAP,
    OPTIMIZE,
    REALIZE_FSM,
    PipelineSession,
    StageDef,
)

__all__ = [
    "ALL_STAGES",
    "ArtifactCache",
    "CacheStats",
    "COMPILE",
    "ENUMERATE",
    "ESTIMATE",
    "FRONTEND",
    "INTERFACE",
    "MAP",
    "MISS",
    "OPTIMIZE",
    "PipelineSession",
    "REALIZE_FSM",
    "StageDef",
    "canonicalize",
    "fingerprint",
    "library_fingerprint",
    "run_parallel",
    "stage_key",
]
