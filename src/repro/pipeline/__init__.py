"""Staged synthesis pipeline: cacheable artifacts and bounded parallelism.

The Figure-1 flow of the paper, restructured as first-class stages.
See :mod:`repro.pipeline.stages` for the stage graph,
:mod:`repro.pipeline.cache` for the two-tier artifact cache and
:mod:`repro.pipeline.executor` for the pluggable execution backends
(``serial`` / ``thread`` / ``process``) behind
:class:`~repro.pipeline.executor.ParallelOptions`, used by
``FlowOptions.explore_solvers``, ``vase batch`` and ``vase serve``.
:mod:`repro.pipeline.parallel` keeps the underlying bounded thread
pool.
"""

from repro.pipeline.cache import (
    MISS,
    ArtifactCache,
    CacheStats,
    stats_delta,
    worker_cache,
)
from repro.pipeline.executor import (
    EXECUTOR_KINDS,
    Executor,
    ParallelOptions,
    ProcessExecutor,
    SerialExecutor,
    Task,
    ThreadExecutor,
    create_executor,
)
from repro.pipeline.fingerprint import (
    canonicalize,
    fingerprint,
    library_fingerprint,
    stage_key,
)
from repro.pipeline.parallel import WorkerPool, run_parallel
from repro.pipeline.stages import (
    ALL_STAGES,
    COMPILE,
    ENUMERATE,
    ESTIMATE,
    FRONTEND,
    INTERFACE,
    MAP,
    OPTIMIZE,
    REALIZE_FSM,
    PipelineSession,
    StageDef,
)

__all__ = [
    "ALL_STAGES",
    "ArtifactCache",
    "CacheStats",
    "COMPILE",
    "ENUMERATE",
    "ESTIMATE",
    "EXECUTOR_KINDS",
    "Executor",
    "FRONTEND",
    "INTERFACE",
    "MAP",
    "MISS",
    "OPTIMIZE",
    "ParallelOptions",
    "PipelineSession",
    "ProcessExecutor",
    "REALIZE_FSM",
    "SerialExecutor",
    "StageDef",
    "Task",
    "ThreadExecutor",
    "WorkerPool",
    "canonicalize",
    "create_executor",
    "fingerprint",
    "library_fingerprint",
    "run_parallel",
    "stage_key",
    "stats_delta",
    "worker_cache",
]
