"""The artifact cache behind the staged pipeline.

Two tiers:

* an **in-memory LRU** (bounded by ``max_entries``, evictions counted)
  that every synthesis run gets — by default private to the run, so a
  recovery-ladder climb reuses its own compile work without one run's
  artifacts leaking into another's timing;
* an opt-in **on-disk store** (``disk_dir``, ``vase synth --cache``)
  of pickled artifacts keyed by the stage's content hash, which
  survives process restarts and is shared safely between the worker
  threads of ``vase batch --jobs``.

Artifacts are treated as immutable: :meth:`ArtifactCache.put` stores a
private deep copy and :meth:`ArtifactCache.get` hands back a fresh deep
copy, so downstream stages (FSM realization, VHIF optimization,
interfacing) may mutate what they received without corrupting the
cache.  Unpicklable artifacts simply skip the disk tier — counted, not
fatal.

Every hit/miss/store/eviction is mirrored into the process-wide
:func:`repro.instrument.metrics` registry (``pipeline.cache.*`` and
per-stage ``pipeline.stage.<name>.*`` counters) so ``vase profile``
shows what was skipped.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.instrument.events import CATEGORY_CACHE, active_bus
from repro.instrument.metrics import metrics

#: Sentinel returned by :meth:`ArtifactCache.get` on a miss (``None``
#: would be ambiguous for stages that legitimately produce ``None``).
MISS = object()


@dataclass
class CacheStats:
    """Counters of one cache instance (not the global registry)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: hits served by unpickling from the disk tier
    disk_hits: int = 0
    disk_stores: int = 0
    #: artifacts that could not be pickled (skipped the disk tier)
    disk_errors: int = 0
    #: per-stage hit counts
    stage_hits: Dict[str, int] = field(default_factory=dict)
    #: per-stage miss counts (== times the stage actually computed)
    stage_misses: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "stage_hits": dict(sorted(self.stage_hits.items())),
            "stage_misses": dict(sorted(self.stage_misses.items())),
        }

    def describe(self) -> str:
        return (
            f"cache: {self.hits} hit(s) ({self.disk_hits} from disk), "
            f"{self.misses} miss(es), {self.stores} store(s), "
            f"{self.evictions} evicted"
        )

    def apply_delta(self, delta: Dict[str, object]) -> None:
        """Fold a :func:`stats_delta` snapshot into these counters.

        The process execution backend runs stages against per-worker
        caches; each task ships back the counter delta it caused, and
        the submitting side folds the deltas in here so aggregate
        stats (``vase batch --cache-stats``, ``report.cache``) account
        for work done in other processes."""
        for name in ("hits", "misses", "stores", "evictions",
                     "disk_hits", "disk_stores", "disk_errors"):
            setattr(self, name, getattr(self, name) + int(
                delta.get(name, 0) or 0
            ))
        for field_name in ("stage_hits", "stage_misses"):
            counts = getattr(self, field_name)
            for stage, n in (delta.get(field_name) or {}).items():
                counts[stage] = counts.get(stage, 0) + int(n)


def stats_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """``after - before`` of two :meth:`CacheStats.as_dict` snapshots."""
    delta: Dict[str, object] = {}
    for key, value in after.items():
        if isinstance(value, dict):
            base = before.get(key, {}) or {}
            diff = {
                stage: n - base.get(stage, 0)
                for stage, n in value.items()
                if n - base.get(stage, 0)
            }
            delta[key] = diff
        else:
            delta[key] = value - int(before.get(key, 0) or 0)
    return delta


class ArtifactCache:
    """Thread-safe content-addressed store of immutable stage artifacts."""

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir: Optional[object] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # -- key/value plumbing ------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key[:2] / f"{key}.pkl"

    def _note(self, kind: str, stage: Optional[str]) -> None:
        registry = metrics()
        registry.inc(f"pipeline.cache.{kind}")
        if stage is not None:
            registry.inc(f"pipeline.stage.{stage}.{kind}")
        bus = active_bus()
        if bus is not None:
            bus.publish(CATEGORY_CACHE, {"op": kind, "stage": stage})

    # -- the cache protocol ------------------------------------------------

    def get(self, key: str, stage: Optional[str] = None) -> object:
        """A fresh copy of the artifact at ``key``, or :data:`MISS`."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                value = self._memory[key]
                self.stats.hits += 1
                if stage is not None:
                    self.stats.stage_hits[stage] = (
                        self.stats.stage_hits.get(stage, 0) + 1
                    )
                self._note("hit", stage)
                return copy.deepcopy(value)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                pass
            else:
                with self._lock:
                    self._insert(key, value)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    if stage is not None:
                        self.stats.stage_hits[stage] = (
                            self.stats.stage_hits.get(stage, 0) + 1
                        )
                    self._note("hit", stage)
                    metrics().inc("pipeline.cache.disk_hit")
                    return copy.deepcopy(value)
        with self._lock:
            self.stats.misses += 1
            if stage is not None:
                self.stats.stage_misses[stage] = (
                    self.stats.stage_misses.get(stage, 0) + 1
                )
        self._note("miss", stage)
        return MISS

    def put(self, key: str, value: object,
            stage: Optional[str] = None) -> None:
        """Store a private copy of ``value`` under ``key``."""
        private = copy.deepcopy(value)
        with self._lock:
            self._insert(key, private)
            self.stats.stores += 1
        self._note("store", stage)
        if self.disk_dir is not None:
            self._store_on_disk(key, private)

    def _insert(self, key: str, value: object) -> None:
        """Insert under the held lock, evicting the LRU tail."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            metrics().inc("pipeline.cache.evict")

    def _store_on_disk(self, key: str, value: object) -> None:
        path = self._disk_path(key)
        try:
            payload = pickle.dumps(value)
        except Exception:  # noqa: BLE001 - any artifact may be exotic
            self.stats.disk_errors += 1
            metrics().inc("pipeline.cache.unpicklable")
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.disk_errors += 1
            return
        self.stats.disk_stores += 1
        metrics().inc("pipeline.cache.disk_store")

    # -- housekeeping ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, survives)."""
        with self._lock:
            self._memory.clear()


#: Per-process caches of the ``process`` execution backend, one per
#: disk directory: the memory tier stays warm across every task a
#: worker runs, while the shared on-disk tier is how workers (and
#: separate machines pointed at one directory) see each other's work.
_WORKER_CACHES: Dict[str, ArtifactCache] = {}
_WORKER_CACHES_LOCK = threading.Lock()


def worker_cache(disk_dir: object) -> ArtifactCache:
    """This process's :class:`ArtifactCache` over ``disk_dir``.

    Process-backend tasks cannot carry the submitting side's live
    cache object across the pickling boundary; they carry the disk
    directory instead and rebuild (or reuse) the per-process cache
    here."""
    key = str(Path(disk_dir).resolve())
    with _WORKER_CACHES_LOCK:
        cache = _WORKER_CACHES.get(key)
        if cache is None:
            cache = ArtifactCache(disk_dir=key)
            _WORKER_CACHES[key] = cache
        return cache
