"""Deterministic content fingerprints for stage cache keys.

A stage key must change whenever anything that can change the stage's
output changes — the source text, any field of the relevant options
subtree, the component library — and must be stable across processes
so an on-disk cache survives a restart.  :func:`fingerprint` therefore
canonicalizes its inputs into a JSON-serializable structure (dataclass
fields in declaration order, dict keys sorted, floats via ``repr``)
and hashes that; it never relies on ``hash()`` (randomized per
process) or default ``repr`` (which can leak memory addresses).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from typing import Tuple

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; json would too, but keeping the
        # float as text makes the canonical form unambiguous.
        return f"f:{obj!r}"
    if isinstance(obj, bytes):
        return f"b:{obj.hex()}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__qualname__,
            "fields": [
                [f.name, canonicalize(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        }
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                ([str(k), canonicalize(v)] for k, v in obj.items()),
                key=lambda kv: kv[0],
            )
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {
            "__set__": sorted(
                json.dumps(canonicalize(v), sort_keys=True) for v in obj
            )
        }
    # Duck-typed component library: name + every spec, order-independent.
    specs = getattr(obj, "specs", None)
    if callable(specs):
        return {
            "__library__": getattr(obj, "name", "?"),
            "specs": sorted(
                (
                    json.dumps(canonicalize(s), sort_keys=True)
                    for s in specs()
                ),
            ),
        }
    # Last resort: a repr with memory addresses stripped, so an exotic
    # object degrades to a stable-ish key instead of crashing the flow.
    return f"{type(obj).__qualname__}:{_ADDRESS.sub('0xX', repr(obj))}"


def fingerprint(*parts: object) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    payload = json.dumps(
        canonicalize(list(parts)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def library_fingerprint(library: object) -> str:
    """Content fingerprint of a component library (name + all specs)."""
    return fingerprint(library)


def stage_key(name: str, version: int, *parts: object) -> Tuple[str, str]:
    """A stage's content-addressed key: ``(stage_name, digest)``."""
    return name, fingerprint(name, version, *parts)
