"""The Figure-1 flow as first-class, cacheable pipeline stages.

The paper's synthesis flow is a sequence of distinct phases — compile
(VASS to VHIF), FSM realization, VHIF optimization, architecture
mapping, interfacing, estimation.  This module makes each phase a
:class:`StageDef` whose output is an immutable artifact stored in an
:class:`~repro.pipeline.cache.ArtifactCache` under a deterministic
content-addressed key:

``frontend``
    VASS text → analyzed design.  Key: source text + entity/architecture
    selection.
``enumerate_solvers``
    analyzed design → all DAE causalizations.  Key: frontend key +
    ``max_solvers``.
``compile``
    analyzed design → validated VHIF.  Key: frontend key + the
    :class:`~repro.compiler.CompilerOptions` subtree (so every distinct
    ``solver_index`` is a distinct artifact).
``realize_fsm`` / ``optimize_vhif``
    VHIF → VHIF with analog control realizations / after the peephole
    passes.  Keys chain on the upstream key.
``map``
    VHIF → :class:`~repro.synth.MappingResult`.  Key: upstream key +
    mapper options + the *actual* constraint set (derived values
    included) + the component-library fingerprint + the greedy flag.
``interfacing`` / ``estimate``
    netlist transformations and the final performance estimate, chained
    on the map key.

A :class:`PipelineSession` binds one (source, options, library) triple
to a cache and exposes one method per stage; the flow, the recovery
ladder, the solver-space exploration and ``vase batch`` all run
through it, so a ladder climb compiles the source once and each rung
reuses the compiled/optimized VHIF artifact.  Failures are never
cached: an exception inside a stage's compute leaves the cache
untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.instrument.metrics import metrics
from repro.instrument.tracer import trace_phase
from repro.pipeline.cache import MISS, ArtifactCache
from repro.pipeline.fingerprint import fingerprint, library_fingerprint
from repro.robust.lifecycle import checkpoint


@dataclass(frozen=True)
class StageDef:
    """One Figure-1 phase: a cache namespace plus its trace span name."""

    #: cache namespace and metrics name (``pipeline.stage.<name>.*``)
    name: str
    #: trace span the stage opens (kept identical to the pre-pipeline
    #: flow so existing timing trees and profiles stay comparable)
    span: str
    #: bump to invalidate every cached artifact of this stage
    version: int = 1

    def key(self, *parts: object) -> str:
        """Content-addressed key of this stage for ``parts``."""
        return fingerprint(self.name, self.version, *parts)


FRONTEND = StageDef("frontend", "frontend")
ENUMERATE = StageDef("enumerate_solvers", "enumerate_solvers")
COMPILE = StageDef("compile", "compile")
REALIZE_FSM = StageDef("realize_fsm", "realize_fsm_controls")
OPTIMIZE = StageDef("optimize_vhif", "optimize_vhif")
MAP = StageDef("map", "map")
INTERFACE = StageDef("interfacing", "interfacing")
ESTIMATE = StageDef("estimate", "estimate")

#: All stages, in flow order (documentation and introspection).
ALL_STAGES: Tuple[StageDef, ...] = (
    FRONTEND, ENUMERATE, COMPILE, REALIZE_FSM, OPTIMIZE, MAP, INTERFACE,
    ESTIMATE,
)


class PipelineSession:
    """One design bound to a cache: the stage graph of a synthesis run.

    The session owns no mutable artifact state — every stage output
    lives in the cache and is handed out as a private copy — so one
    session may be driven from several worker threads at once (the
    solver-space exploration does exactly that).
    """

    def __init__(
        self,
        source: str,
        entity_name: Optional[str] = None,
        architecture_name: Optional[str] = None,
        source_filename: Optional[str] = None,
        options=None,
        library=None,
        cache: Optional[ArtifactCache] = None,
    ):
        from repro.flow import FlowOptions
        from repro.library import default_library

        self.source = source
        self.entity_name = entity_name
        self.architecture_name = architecture_name
        self.source_filename = source_filename
        self.options = options if options is not None else FlowOptions()
        self.library = library if library is not None else default_library()
        self.cache = cache if cache is not None else ArtifactCache()
        self.library_fp = library_fingerprint(self.library)

    # -- the generic stage runner -----------------------------------------

    def _run(
        self,
        stage: StageDef,
        digest: str,
        compute: Callable[[], object],
        annotate: Optional[Callable[[object], dict]] = None,
    ) -> object:
        """Serve ``digest`` from the cache or compute-and-store it."""
        # Stage boundaries are the pipeline's cancellation points: a
        # cancelled or over-budget run stops before the next compute.
        checkpoint(f"stage:{stage.name}")
        with trace_phase(stage.span) as span:
            value = self.cache.get(digest, stage=stage.name)
            if value is not MISS:
                span.annotate(cache="hit", key=digest[:12])
            else:
                started = time.perf_counter()
                value = compute()
                # The ``_s`` suffix keeps this out of bench-check
                # baselines (extract_metrics gates timing keys).
                metrics().observe(
                    f"pipeline.stage.{stage.name}.runtime_s",
                    time.perf_counter() - started,
                )
                self.cache.put(digest, value, stage=stage.name)
                span.annotate(cache="miss", key=digest[:12])
            if annotate is not None:
                span.annotate(**annotate(value))
            return value

    # -- frontend ----------------------------------------------------------

    def frontend_key(self) -> str:
        return FRONTEND.key(
            self.source, self.entity_name, self.architecture_name
        )

    def frontend(self):
        """The analyzed design (parse + semantic analysis)."""
        from repro.vass.parser import parse_source
        from repro.vass.semantics import analyze

        def compute():
            return analyze(
                parse_source(
                    self.source,
                    filename=self.source_filename or "<string>",
                ),
                entity_name=self.entity_name,
                architecture_name=self.architecture_name,
            )

        return self._run(FRONTEND, self.frontend_key(), compute)

    def enumerate_causalizations(
        self, max_solvers: Optional[int] = None
    ) -> list:
        """All DAE causalizations ("solvers") of the design's DAE set."""
        from repro.compiler import enumerate_solvers

        limit = (
            max_solvers
            if max_solvers is not None
            else self.options.compiler.max_solvers
        )
        digest = ENUMERATE.key(self.frontend_key(), limit)

        def compute():
            return enumerate_solvers(self.frontend(), max_solvers=limit)

        return self._run(
            ENUMERATE, digest, compute,
            annotate=lambda solvers: {"solvers": len(solvers)},
        )

    # -- compile / realize / optimize --------------------------------------

    def _compiler_options(self, solver_index: Optional[int]):
        if solver_index is None:
            return self.options.compiler
        return replace(self.options.compiler, solver_index=solver_index)

    def compile_key(self, solver_index: Optional[int] = None) -> str:
        return COMPILE.key(
            self.frontend_key(), self._compiler_options(solver_index)
        )

    def compiled(self, solver_index: Optional[int] = None):
        """The validated VHIF design for one causalization choice."""
        from repro.compiler import compile_design

        copts = self._compiler_options(solver_index)

        def compute():
            return compile_design(self.frontend(), options=copts)

        return self._run(COMPILE, self.compile_key(solver_index), compute)

    def prepared_key(self, solver_index: Optional[int] = None) -> str:
        """Key of the mapping-ready VHIF artifact (the full chain)."""
        digest = self.compile_key(solver_index)
        if self.options.realize_fsm_controls:
            digest = REALIZE_FSM.key(digest)
        if self.options.optimize_vhif:
            digest = OPTIMIZE.key(digest)
        return digest

    def prepared(
        self, solver_index: Optional[int] = None
    ) -> Tuple[object, List[object], str]:
        """The mapping-ready design: ``(design, realized_controls, key)``.

        Runs the compile stage, then — as enabled by the options — the
        FSM-realization and VHIF-optimization stages, each consuming
        the previous artifact.
        """
        from repro.synth.fsm_mapping import realize_event_controls
        from repro.vhif.optimize import optimize_design

        design = self.compiled(solver_index)
        digest = self.compile_key(solver_index)
        realized: List[object] = []
        if self.options.realize_fsm_controls:
            digest = REALIZE_FSM.key(digest)
            upstream = design

            def compute_realize():
                return (upstream, realize_event_controls(upstream))

            design, realized = self._run(
                REALIZE_FSM, digest, compute_realize,
                annotate=lambda v: {"realized": len(v[1])},
            )
        if self.options.optimize_vhif:
            digest = OPTIMIZE.key(digest)
            unoptimized, riding = design, realized

            def compute_optimize():
                optimize_design(unoptimized)
                return (unoptimized, riding)

            design, realized = self._run(OPTIMIZE, digest, compute_optimize)
        return design, realized, digest

    # -- map / interface / estimate ----------------------------------------

    def map_key(
        self, design_key: str, constraints, use_greedy: bool
    ) -> str:
        return MAP.key(
            design_key,
            self.options.mapper,
            constraints,
            self.library_fp,
            bool(use_greedy),
        )

    def mapped(
        self, design, design_key: str, constraints, use_greedy: bool
    ) -> Tuple[object, str]:
        """Architecture generation: ``(MappingResult, key)``."""
        from repro.estimation import Estimator
        from repro.library import PatternMatcher
        from repro.synth import map_sfg
        from repro.synth.greedy import map_sfg_greedy

        digest = self.map_key(design_key, constraints, use_greedy)

        def compute():
            estimator = Estimator(constraints=constraints)
            matcher = PatternMatcher(
                self.library,
                enable_transforms=self.options.mapper.enable_transforms,
            )
            if use_greedy:
                return map_sfg_greedy(
                    design.main_sfg,
                    library=self.library,
                    estimator=estimator,
                    matcher=matcher,
                    fallback_unconstrained=False,
                )
            return map_sfg(
                design.main_sfg,
                library=self.library,
                estimator=estimator,
                options=self.options.mapper,
                matcher=matcher,
            )

        mapping = self._run(
            MAP, digest, compute,
            annotate=lambda m: m.statistics.as_dict(),
        )
        return mapping, digest

    def interfaced(
        self, netlist, design, map_digest: str
    ) -> Tuple[object, List[object], str]:
        """Interfacing transformations: ``(netlist, added, key)``."""
        from repro.synth import apply_interfacing

        digest = INTERFACE.key(map_digest, self.options.interfacing)

        def compute():
            added = apply_interfacing(
                netlist, design, self.options.interfacing
            )
            return (netlist, added)

        result, added = self._run(
            INTERFACE, digest, compute,
            annotate=lambda v: {"followers_added": len(v[1])},
        )
        return result, added, digest

    def estimated(
        self, netlist, constraints, upstream_digest: str
    ) -> Tuple[object, str]:
        """Performance estimation: ``(PerformanceEstimate, key)``."""
        from repro.estimation import Estimator

        digest = ESTIMATE.key(upstream_digest, constraints)

        def compute():
            return Estimator(constraints=constraints).estimate(netlist)

        estimate = self._run(
            ESTIMATE, digest, compute,
            annotate=lambda e: {"area": e.area, "opamps": e.opamps},
        )
        return estimate, digest
