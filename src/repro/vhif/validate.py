"""Structural validation of VHIF designs.

Checks that a design is *implementable*: every data input is driven,
every control-requiring block has a control source, the FSM control
signals referenced by SFGs are actually produced, and no delay-free
algebraic loop exists.  Used by tests and as a post-condition of the
compiler.
"""

from __future__ import annotations

from typing import List

from repro.diagnostics import VaseError
from repro.vhif.sfg import BlockKind, SignalFlowGraph


def validate_sfg(sfg: SignalFlowGraph, allowed_orphans=()) -> List[str]:
    """Return a list of structural problems of one SFG (empty if clean).

    ``allowed_orphans`` lists block ids that legitimately drive no SFG
    sink (event sources and quantity taps read by the event-driven
    part).
    """
    problems: List[str] = []
    allowed = set(allowed_orphans)
    for block in sfg.blocks:
        for port in range(block.n_inputs):
            if sfg.driver_of(block, port) is None:
                problems.append(
                    f"{sfg.name}: input {port} of {block.describe()} is undriven"
                )
        if block.kind.has_control():
            has_net_control = sfg.control_driver_of(block) is not None
            has_signal_control = sfg.control_signal_of(block) is not None
            if not has_net_control and not has_signal_control:
                problems.append(
                    f"{sfg.name}: {block.describe()} needs a control input"
                )
        if block.kind is BlockKind.OUTPUT and sfg.fanout(block):
            problems.append(
                f"{sfg.name}: output block {block.describe()} must not fan out"
            )
        if block.kind is BlockKind.SCALE and "gain" not in block.params:
            problems.append(
                f"{sfg.name}: {block.describe()} is missing its gain parameter"
            )
        if block.kind is BlockKind.CONST and "value" not in block.params:
            problems.append(
                f"{sfg.name}: {block.describe()} is missing its value parameter"
            )
    orphans = [
        b
        for b in sfg.blocks
        if not b.kind.is_io()
        and sfg.fanout(b) == 0
        and b.kind is not BlockKind.COMPARATOR  # may drive FSM events only
        and b.block_id not in allowed
    ]
    for block in orphans:
        problems.append(f"{sfg.name}: {block.describe()} drives nothing")
    if sfg.has_algebraic_loop():
        problems.append(f"{sfg.name}: delay-free algebraic loop")
    return problems


def validate_design(design) -> None:
    """Validate a whole :class:`~repro.vhif.design.VhifDesign`.

    Raises :class:`VaseError` listing every problem found.
    """
    problems: List[str] = []
    tapped: dict = {}
    for name, (sfg_name, block_id) in design.quantity_taps.items():
        tapped.setdefault(sfg_name, set()).add(block_id)
    for _event, (sfg_name, block_id) in design.event_sources.items():
        tapped.setdefault(sfg_name, set()).add(block_id)
    for sfg in design.sfgs:
        problems.extend(
            validate_sfg(sfg, allowed_orphans=tapped.get(sfg.name, ()))
        )
    produced = design.control_signals() | design.external_signals
    for sfg in design.sfgs:
        for signal in sfg.control_bindings:
            if signal not in produced:
                problems.append(
                    f"{sfg.name}: control signal {signal!r} is not produced "
                    "by any FSM or external signal port"
                )
    for fsm in design.fsms:
        try:
            fsm.validate()
        except VaseError as err:
            problems.append(str(err))
    if problems:
        raise VaseError(
            "VHIF validation failed:\n  " + "\n  ".join(problems)
        )
