"""Signal-flow graphs: the continuous-time half of VHIF.

VHIF (VASE Hierarchical Intermediate Format) represents continuous-time
behavior as signal-flow graphs with *exact knowledge about flows and
processing (operations) of signals* (paper Section 4).  A graph is a set
of :class:`Block` nodes connected by :class:`Net` edges; every block
kind corresponds to an operation realizable with circuits from the
component library.

Blocks have positional data inputs and an optional *control* input that
is driven by the event-driven part (FSM output signals) or by comparator
blocks.  Cycles are allowed — feedback through integrators is the normal
structure of analog computation — and the topological ordering helpers
treat integrator outputs as state (loop breakers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.diagnostics import VaseError


class BlockKind(enum.Enum):
    """Operation performed by a signal-flow block.

    Every kind is implementable with electronic circuits from the
    component library (paper's requirement on VHIF blocks).
    """

    INPUT = "input"  # system input port
    OUTPUT = "output"  # system output port
    CONST = "const"  # constant source (reference voltage)
    ADD = "add"  # n-ary addition
    SUB = "sub"  # in0 - in1
    MUL = "mul"  # signal * signal
    DIV = "div"  # in0 / in1
    SCALE = "scale"  # signal * static gain (param ``gain``)
    NEG = "neg"  # sign inversion
    INTEGRATE = "integrate"  # time integral (params ``gain``, ``initial``)
    DIFFERENTIATE = "differentiate"  # time derivative
    LOG = "log"  # natural logarithm
    EXP = "exp"  # exponential (anti-log)
    ABS = "abs"  # absolute value (precision rectifier)
    LIMIT = "limit"  # saturation (params ``low``, ``high``)
    SAMPLE_HOLD = "sample_hold"  # track-and-hold, control selects track
    SWITCH = "switch"  # analog switch, control closes it
    MUX = "mux"  # n-way analog multiplexer, control selects
    COMPARATOR = "comparator"  # above-threshold detector (param ``threshold``,
    #                            optional ``hysteresis``); boolean output
    ADC = "adc"  # analog-to-digital converter (param ``bits``)
    DAC = "dac"  # digital-to-analog converter (param ``bits``)
    BUFFER = "buffer"  # unity-gain follower / output stage host

    def is_io(self) -> bool:
        return self in (BlockKind.INPUT, BlockKind.OUTPUT)

    def is_source(self) -> bool:
        return self in (BlockKind.INPUT, BlockKind.CONST)

    def is_stateful(self) -> bool:
        """Kinds whose output depends on history, used as loop breakers."""
        return self in (BlockKind.INTEGRATE, BlockKind.SAMPLE_HOLD)

    def has_control(self) -> bool:
        return self in (
            BlockKind.SAMPLE_HOLD,
            BlockKind.SWITCH,
            BlockKind.MUX,
            BlockKind.ADC,
        )


#: Number of data inputs per kind; ``None`` means variadic (>= 2).
_INPUT_ARITY: Dict[BlockKind, Optional[int]] = {
    BlockKind.INPUT: 0,
    BlockKind.CONST: 0,
    BlockKind.OUTPUT: 1,
    BlockKind.ADD: None,
    BlockKind.SUB: 2,
    BlockKind.MUL: 2,
    BlockKind.DIV: 2,
    BlockKind.SCALE: 1,
    BlockKind.NEG: 1,
    BlockKind.INTEGRATE: 1,
    BlockKind.DIFFERENTIATE: 1,
    BlockKind.LOG: 1,
    BlockKind.EXP: 1,
    BlockKind.ABS: 1,
    BlockKind.LIMIT: 1,
    BlockKind.SAMPLE_HOLD: 1,
    BlockKind.SWITCH: 1,
    BlockKind.MUX: None,
    BlockKind.COMPARATOR: 1,
    BlockKind.ADC: 1,
    BlockKind.DAC: 1,
    BlockKind.BUFFER: 1,
}


@dataclass
class Block:
    """One operational block of a signal-flow graph."""

    block_id: int
    kind: BlockKind
    name: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    n_inputs: int = 0

    def __post_init__(self) -> None:
        arity = _INPUT_ARITY[self.kind]
        if arity is not None:
            self.n_inputs = arity
        elif self.n_inputs < 2:
            self.n_inputs = 2
        if not self.name:
            self.name = f"{self.kind.value}{self.block_id}"

    @property
    def gain(self) -> float:
        return float(self.params.get("gain", 1.0))

    def describe(self) -> str:
        extra = ""
        if self.params:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            extra = f" [{inner}]"
        return f"#{self.block_id} {self.kind.value}{extra}"

    def __hash__(self) -> int:
        return hash((id(self),))


@dataclass(frozen=True)
class Endpoint:
    """A (block, input index) pair: one sink of a net."""

    block_id: int
    port: int  # data input index, or -1 for the control input

    @property
    def is_control(self) -> bool:
        return self.port == CONTROL_PORT


#: Input index used for the control input of switch/mux/S&H/ADC blocks.
CONTROL_PORT = -1


@dataclass
class Net:
    """A point-to-multipoint connection from one block output."""

    net_id: int
    driver: int  # block id whose (single) output drives this net
    sinks: List[Endpoint] = field(default_factory=list)
    name: str = ""


class SignalFlowGraph:
    """A mutable signal-flow graph with a builder-style API."""

    def __init__(self, name: str = "sfg"):
        self.name = name
        self._blocks: Dict[int, Block] = {}
        self._nets: Dict[int, Net] = {}
        self._next_block = 0
        self._next_net = 0
        # block id -> net id driven by that block's output (at most one).
        self._output_net: Dict[int, int] = {}
        # (block id, port) -> net id feeding that input.
        self._input_net: Dict[Tuple[int, int], int] = {}
        #: names of control signals (FSM outputs) -> endpoints they drive
        self.control_bindings: Dict[str, List[Endpoint]] = {}

    # -- construction -------------------------------------------------------

    def add(
        self,
        kind: BlockKind,
        name: str = "",
        n_inputs: int = 0,
        **params: object,
    ) -> Block:
        """Create a new block and return it."""
        block = Block(
            block_id=self._next_block,
            kind=kind,
            name=name,
            params=dict(params),
            n_inputs=n_inputs,
        )
        self._blocks[block.block_id] = block
        self._next_block += 1
        return block

    def connect(self, src: Block, dst: Block, port: int = 0) -> Net:
        """Connect ``src``'s output to input ``port`` of ``dst``."""
        if src.block_id not in self._blocks or dst.block_id not in self._blocks:
            raise VaseError("connect() with a block from another graph")
        if port != CONTROL_PORT and not 0 <= port < dst.n_inputs:
            raise VaseError(
                f"block {dst.describe()} has no input port {port}"
            )
        if port == CONTROL_PORT and not dst.kind.has_control():
            raise VaseError(f"block {dst.describe()} has no control input")
        if (dst.block_id, port) in self._input_net:
            raise VaseError(
                f"input {port} of {dst.describe()} is already driven"
            )
        net_id = self._output_net.get(src.block_id)
        if net_id is None:
            net = Net(net_id=self._next_net, driver=src.block_id)
            self._nets[net.net_id] = net
            self._output_net[src.block_id] = net.net_id
            self._next_net += 1
        else:
            net = self._nets[net_id]
        endpoint = Endpoint(block_id=dst.block_id, port=port)
        net.sinks.append(endpoint)
        self._input_net[(dst.block_id, port)] = net.net_id
        return net

    def bind_control(self, signal_name: str, dst: Block) -> None:
        """Attach FSM control signal ``signal_name`` to ``dst``'s control."""
        if not dst.kind.has_control():
            raise VaseError(f"block {dst.describe()} has no control input")
        endpoint = Endpoint(block_id=dst.block_id, port=CONTROL_PORT)
        self.control_bindings.setdefault(signal_name, []).append(endpoint)

    def disconnect(self, dst: Block, port: int) -> None:
        """Remove the connection feeding input ``port`` of ``dst``."""
        net_id = self._input_net.pop((dst.block_id, port), None)
        if net_id is None:
            raise VaseError(
                f"input {port} of {dst.describe()} is not connected"
            )
        net = self._nets[net_id]
        net.sinks = [
            s
            for s in net.sinks
            if not (s.block_id == dst.block_id and s.port == port)
        ]

    def rewire(self, dst: Block, port: int, new_src: Block) -> None:
        """Reconnect input ``port`` of ``dst`` to ``new_src``'s output."""
        self.disconnect(dst, port)
        self.connect(new_src, dst, port=port)

    def bypass(self, block: Block) -> None:
        """Remove a single-input block, routing its driver to its sinks.

        Control bindings and the control endpoints of sinks are left
        untouched; the block must have exactly one data input.
        """
        if block.n_inputs != 1:
            raise VaseError(f"cannot bypass {block.describe()}")
        driver = self.driver_of(block, 0)
        if driver is None:
            raise VaseError(f"{block.describe()} has no driver to bypass to")
        sinks = list(self.successors(block))
        for sink, port in sinks:
            self.disconnect(sink, port)
        self.remove_block(block)
        for sink, port in sinks:
            self.connect(driver, sink, port=port)

    def remove_block(self, block: Block) -> None:
        """Remove a block and every net touching it."""
        block_id = block.block_id
        if block_id not in self._blocks:
            raise VaseError("block not in graph")
        out_net = self._output_net.pop(block_id, None)
        if out_net is not None:
            for sink in self._nets[out_net].sinks:
                self._input_net.pop((sink.block_id, sink.port), None)
            del self._nets[out_net]
        for (bid, port), net_id in list(self._input_net.items()):
            if bid == block_id:
                net = self._nets[net_id]
                net.sinks = [
                    s for s in net.sinks if not (s.block_id == bid and s.port == port)
                ]
                del self._input_net[(bid, port)]
        for endpoints in self.control_bindings.values():
            endpoints[:] = [e for e in endpoints if e.block_id != block_id]
        del self._blocks[block_id]

    # -- queries --------------------------------------------------------------

    @property
    def blocks(self) -> List[Block]:
        return list(self._blocks.values())

    @property
    def nets(self) -> List[Net]:
        return list(self._nets.values())

    def block(self, block_id: int) -> Block:
        return self._blocks[block_id]

    def __contains__(self, block: Block) -> bool:
        return block.block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def blocks_of_kind(self, *kinds: BlockKind) -> List[Block]:
        return [b for b in self._blocks.values() if b.kind in kinds]

    @property
    def inputs(self) -> List[Block]:
        return self.blocks_of_kind(BlockKind.INPUT)

    @property
    def outputs(self) -> List[Block]:
        return self.blocks_of_kind(BlockKind.OUTPUT)

    def driver_of(self, block: Block, port: int = 0) -> Optional[Block]:
        """The block driving input ``port`` of ``block``, if connected."""
        net_id = self._input_net.get((block.block_id, port))
        if net_id is None:
            return None
        return self._blocks[self._nets[net_id].driver]

    def data_predecessors(self, block: Block) -> List[Optional[Block]]:
        """Drivers of each data input of ``block`` (None when unconnected)."""
        return [self.driver_of(block, port) for port in range(block.n_inputs)]

    def control_driver_of(self, block: Block) -> Optional[Block]:
        net_id = self._input_net.get((block.block_id, CONTROL_PORT))
        if net_id is None:
            return None
        return self._blocks[self._nets[net_id].driver]

    def control_signal_of(self, block: Block) -> Optional[str]:
        """FSM control signal bound to ``block``'s control input, if any."""
        for name, endpoints in self.control_bindings.items():
            for e in endpoints:
                if e.block_id == block.block_id:
                    return name
        return None

    def successors(self, block: Block) -> List[Tuple[Block, int]]:
        """(sink block, port) pairs fed by ``block``'s output."""
        net_id = self._output_net.get(block.block_id)
        if net_id is None:
            return []
        return [
            (self._blocks[e.block_id], e.port) for e in self._nets[net_id].sinks
        ]

    def fanout(self, block: Block) -> int:
        return len(self.successors(block))

    def output_net(self, block: Block) -> Optional[Net]:
        net_id = self._output_net.get(block.block_id)
        return self._nets[net_id] if net_id is not None else None

    # -- analysis ---------------------------------------------------------------

    def topological_order(self) -> List[Block]:
        """Blocks in dataflow order, breaking cycles at stateful blocks.

        Integrators and sample-and-holds consume last-step values of
        their inputs, so edges *into* them are ignored for ordering.
        Raises :class:`VaseError` when a purely combinational cycle
        remains (a delay-free algebraic loop, which VHIF forbids).
        """
        indegree: Dict[int, int] = {bid: 0 for bid in self._blocks}
        edges: Dict[int, List[int]] = {bid: [] for bid in self._blocks}
        for (bid, port), net_id in self._input_net.items():
            if port == CONTROL_PORT:
                continue  # control paths are sampled (one-step delayed)
            block = self._blocks[bid]
            if block.kind.is_stateful():
                continue  # state boundary breaks the cycle
            src = self._nets[net_id].driver
            edges[src].append(bid)
            indegree[bid] += 1
        ready = sorted(bid for bid, deg in indegree.items() if deg == 0)
        order: List[Block] = []
        while ready:
            bid = ready.pop(0)
            order.append(self._blocks[bid])
            for succ in sorted(edges[bid]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._blocks):
            cyclic = sorted(set(self._blocks) - {b.block_id for b in order})
            raise VaseError(
                "delay-free algebraic loop through blocks "
                + ", ".join(self._blocks[b].describe() for b in cyclic)
            )
        return order

    def has_algebraic_loop(self) -> bool:
        try:
            self.topological_order()
            return False
        except VaseError:
            return True

    def transitive_fanin(self, block: Block) -> Set[int]:
        """Ids of all blocks that can reach ``block`` through data edges."""
        seen: Set[int] = set()
        stack = [block.block_id]
        while stack:
            bid = stack.pop()
            for port in range(self._blocks[bid].n_inputs):
                net_id = self._input_net.get((bid, port))
                if net_id is None:
                    continue
                src = self._nets[net_id].driver
                if src not in seen:
                    seen.add(src)
                    stack.append(src)
        return seen

    def processing_blocks(self) -> List[Block]:
        """Blocks that perform signal processing (Table-1 block count)."""
        return [
            b
            for b in self._blocks.values()
            if b.kind not in (BlockKind.INPUT, BlockKind.OUTPUT, BlockKind.CONST)
        ]

    def iter_cones(
        self, root: Block, max_size: int = 4
    ) -> Iterator[FrozenSet[int]]:
        """Enumerate single-output sub-graphs ("cones") rooted at ``root``.

        A cone is a connected set of blocks containing ``root`` such that
        every non-root member's entire fanout stays inside the cone (so
        mapping the cone to one component never duplicates a signal that
        other logic still needs).  Source and IO blocks never join a
        cone.  Cones are produced in decreasing size order, matching the
        paper's sequencing rule.
        """
        cones: Set[FrozenSet[int]] = set()

        def grow(current: FrozenSet[int]) -> None:
            if current in cones:
                return
            cones.add(current)
            if len(current) >= max_size:
                return
            frontier: Set[int] = set()
            for bid in current:
                block = self._blocks[bid]
                for port in range(block.n_inputs):
                    pred = self.driver_of(block, port)
                    if pred is None or pred.block_id in current:
                        continue
                    if pred.kind.is_io() or pred.kind is BlockKind.CONST:
                        continue
                    # Entire fanout of pred must land inside the cone.
                    if all(
                        sink.block_id in current
                        for sink, _ in self.successors(pred)
                    ):
                        frontier.add(pred.block_id)
            for bid in frontier:
                grow(current | {bid})

        grow(frozenset({root.block_id}))
        for cone in sorted(cones, key=lambda c: (-len(c), sorted(c))):
            yield cone

    def cone_inputs(self, cone: Iterable[int]) -> List[Tuple[Block, Block, int]]:
        """External (driver, sink, port) triples feeding a cone."""
        cone_set = set(cone)
        result: List[Tuple[Block, Block, int]] = []
        for bid in sorted(cone_set):
            block = self._blocks[bid]
            for port in range(block.n_inputs):
                pred = self.driver_of(block, port)
                if pred is not None and pred.block_id not in cone_set:
                    result.append((pred, block, port))
        return result

    # -- cloning -------------------------------------------------------------------

    def copy(self) -> "SignalFlowGraph":
        """Deep structural copy preserving block ids."""
        clone = SignalFlowGraph(self.name)
        clone._next_block = self._next_block
        clone._next_net = self._next_net
        for bid, block in self._blocks.items():
            clone._blocks[bid] = Block(
                block_id=block.block_id,
                kind=block.kind,
                name=block.name,
                params=dict(block.params),
                n_inputs=block.n_inputs,
            )
        for net_id, net in self._nets.items():
            clone._nets[net_id] = Net(
                net_id=net.net_id,
                driver=net.driver,
                sinks=list(net.sinks),
                name=net.name,
            )
        clone._output_net = dict(self._output_net)
        clone._input_net = dict(self._input_net)
        clone.control_bindings = {
            k: list(v) for k, v in self.control_bindings.items()
        }
        return clone

    def describe(self) -> str:
        """Human-readable multi-line dump (for tests and the CLI)."""
        lines = [f"signal-flow graph {self.name!r}:"]
        for block in sorted(self._blocks.values(), key=lambda b: b.block_id):
            preds = []
            for port in range(block.n_inputs):
                pred = self.driver_of(block, port)
                preds.append(pred.name if pred is not None else "?")
            ctrl = self.control_signal_of(block)
            ctrl_driver = self.control_driver_of(block)
            suffix = ""
            if preds:
                suffix = " <- " + ", ".join(preds)
            if ctrl is not None:
                suffix += f" [ctrl={ctrl}]"
            elif ctrl_driver is not None:
                suffix += f" [ctrl={ctrl_driver.name}]"
            lines.append(f"  {block.describe()}{suffix}")
        return "\n".join(lines)
