"""Graphviz DOT export for VHIF designs (documentation / debugging)."""

from __future__ import annotations

from typing import List, Sequence

from repro.vhif.design import VhifDesign
from repro.vhif.fsm import Fsm, START_STATE
from repro.vhif.sfg import SignalFlowGraph

#: fill colors of the Figure-6 decision-tree statuses
_STATUS_COLORS = {
    "open": "#f0efec",
    "pruned": "#eb6834",
    "complete": "#1baf7a",
    "infeasible": "#e34948",
    "dead-end": "#c3c2b7",
}


def sfg_to_dot(sfg: SignalFlowGraph) -> str:
    """Render one signal-flow graph as a DOT digraph."""
    lines: List[str] = [f'digraph "{sfg.name}" {{', "  rankdir=LR;"]
    for block in sorted(sfg.blocks, key=lambda b: b.block_id):
        shape = "box"
        if block.kind.is_io():
            shape = "ellipse"
        elif block.kind.has_control():
            shape = "diamond"
        label = block.kind.value
        if "gain" in block.params:
            label += f"\\ngain={block.params['gain']}"
        if "value" in block.params:
            label += f"\\n{block.params['value']}"
        if "threshold" in block.params:
            label += f"\\nth={block.params['threshold']}"
        lines.append(
            f'  b{block.block_id} [label="{block.name}\\n{label}", shape={shape}];'
        )
    for net in sfg.nets:
        for sink in net.sinks:
            style = ' [style=dashed, label="ctrl"]' if sink.is_control else ""
            lines.append(f"  b{net.driver} -> b{sink.block_id}{style};")
    for signal, endpoints in sfg.control_bindings.items():
        node = f'ctrl_{signal.replace("-", "_")}'
        lines.append(f'  {node} [label="{signal}", shape=cds];')
        for endpoint in endpoints:
            lines.append(f"  {node} -> b{endpoint.block_id} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def fsm_to_dot(fsm: Fsm) -> str:
    """Render one FSM as a DOT digraph."""
    lines: List[str] = [f'digraph "{fsm.name}" {{']
    for state in fsm.states:
        shape = "doublecircle" if state.name == START_STATE else "circle"
        ops = "\\n".join(str(op) for op in state.operations)
        label = state.name if not ops else f"{state.name}\\n{ops}"
        lines.append(f'  "{state.name}" [label="{label}", shape={shape}];')
    for transition in fsm.transitions:
        label = str(transition.condition)
        lines.append(
            f'  "{transition.source}" -> "{transition.target}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def decision_tree_to_dot(tree: Sequence[object]) -> str:
    """Render a Figure-6 decision tree as a status-colored DOT digraph.

    ``tree`` is the :class:`~repro.synth.mapper.DecisionNode` list a
    mapper run collects under ``MapperOptions(collect_tree=True)``
    (duck-typed here to keep this module free of synth imports).
    Nodes are colored by search outcome: pruned orange, complete
    green, infeasible red, dead-end gray.
    """
    lines: List[str] = [
        'digraph "decision_tree" {',
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontsize=10];',
    ]
    for node in tree:
        color = _STATUS_COLORS.get(node.status, _STATUS_COLORS["open"])
        label = f"{node.decision}\\n{node.opamps} op amps"
        detail = getattr(node, "detail", "")
        if detail:
            label += f"\\n{detail}"
        if node.status not in ("open", "complete"):
            label += f"\\n[{node.status}]"
        label = label.replace('"', "'")
        lines.append(
            f'  n{node.node_id} [label="{label}", fillcolor="{color}"];'
        )
    for node in tree:
        if node.parent is not None:
            lines.append(f"  n{node.parent} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines)


def design_to_dot(design: VhifDesign) -> str:
    """Render a whole design as one DOT document with subgraph clusters."""
    parts = [f"// VHIF design {design.name}"]
    for sfg in design.sfgs:
        parts.append(sfg_to_dot(sfg))
    for fsm in design.fsms:
        parts.append(fsm_to_dot(fsm))
    return "\n\n".join(parts)
