"""Technology-independent optimization passes over signal-flow graphs.

The compile step's structural output sometimes carries redundant
arithmetic (gain chains from algebraic rearrangement, double
inversions).  These peephole passes clean it up while provably
preserving the graph's input/output function (the property suite
simulates before/after on random graphs):

* **scale fusion** — ``SCALE(g1) -> SCALE(g2)`` with private fan-out
  collapses to ``SCALE(g1*g2)``;
* **negation absorption** — ``NEG`` next to a ``SCALE`` folds into the
  gain's sign; ``NEG -> NEG`` cancels;
* **identity elimination** — ``SCALE(gain=1)`` disappears;
* **integrator gain absorption** — a private ``SCALE`` in front of an
  ``INTEGRATE`` multiplies into the integrator gain.

Blocks registered as quantity taps or event sources are pinned: their
identity is externally visible, so passes never remove them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.vhif.design import VhifDesign
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph


@dataclass
class OptimizeReport:
    """What the optimizer did."""

    fused_scales: int = 0
    cancelled_negations: int = 0
    absorbed_negations: int = 0
    removed_identities: int = 0
    absorbed_into_integrators: int = 0

    @property
    def total(self) -> int:
        return (
            self.fused_scales
            + self.cancelled_negations
            + self.absorbed_negations
            + self.removed_identities
            + self.absorbed_into_integrators
        )

    def describe(self) -> str:
        if not self.total:
            return "no rewrites applied"
        parts = []
        if self.fused_scales:
            parts.append(f"{self.fused_scales} scale fusions")
        if self.cancelled_negations:
            parts.append(f"{self.cancelled_negations} NEG pairs cancelled")
        if self.absorbed_negations:
            parts.append(f"{self.absorbed_negations} NEGs absorbed")
        if self.removed_identities:
            parts.append(f"{self.removed_identities} unity gains removed")
        if self.absorbed_into_integrators:
            parts.append(
                f"{self.absorbed_into_integrators} gains into integrators"
            )
        return ", ".join(parts)


def _private_successor(
    sfg: SignalFlowGraph, block: Block
) -> Optional[Block]:
    """The unique data sink of ``block``, or None."""
    successors = sfg.successors(block)
    if len(successors) != 1:
        return None
    sink, port = successors[0]
    if port < 0:
        return None
    return sink


def _single_pass(
    sfg: SignalFlowGraph, pinned: Set[int], report: OptimizeReport
) -> bool:
    """One sweep of all rewrites; returns True when something changed."""
    for block in list(sfg.blocks):
        if block not in sfg or block.block_id in pinned:
            continue
        kind = block.kind

        # SCALE(1.0) -> wire.
        if kind is BlockKind.SCALE and block.gain == 1.0:
            if sfg.driver_of(block, 0) is not None and sfg.fanout(block):
                sfg.bypass(block)
                report.removed_identities += 1
                return True

        # SCALE -> SCALE fusion (downstream must be private and unpinned).
        if kind is BlockKind.SCALE:
            sink = _private_successor(sfg, block)
            if (
                sink is not None
                and sink.kind is BlockKind.SCALE
                and sink.block_id not in pinned
            ):
                sink.params["gain"] = block.gain * sink.gain
                sfg.bypass(block)
                report.fused_scales += 1
                return True
            if (
                sink is not None
                and sink.kind is BlockKind.INTEGRATE
                and sink.block_id not in pinned
            ):
                sink.params["gain"] = sink.gain * block.gain
                sfg.bypass(block)
                report.absorbed_into_integrators += 1
                return True

        if kind is BlockKind.NEG:
            sink = _private_successor(sfg, block)
            if sink is not None and sink.block_id not in pinned:
                if sink.kind is BlockKind.NEG:
                    # NEG -> NEG cancels to a wire.
                    driver = sfg.driver_of(block, 0)
                    if driver is not None:
                        sfg.bypass(block)
                        sfg.bypass(sink)
                        report.cancelled_negations += 1
                        return True
                if sink.kind is BlockKind.SCALE:
                    sink.params["gain"] = -sink.gain
                    sfg.bypass(block)
                    report.absorbed_negations += 1
                    return True
                if sink.kind is BlockKind.INTEGRATE:
                    sink.params["gain"] = -sink.gain
                    sfg.bypass(block)
                    report.absorbed_negations += 1
                    return True
            # SCALE -> NEG: pull the sign into the scale.
            driver = sfg.driver_of(block, 0)
            if (
                driver is not None
                and driver.kind is BlockKind.SCALE
                and driver.block_id not in pinned
                and sfg.fanout(driver) == 1
            ):
                driver.params["gain"] = -driver.gain
                sfg.bypass(block)
                report.absorbed_negations += 1
                return True
    return False


def optimize_sfg(
    sfg: SignalFlowGraph, pinned: Optional[Set[int]] = None
) -> OptimizeReport:
    """Run all rewrites on one graph to a fixed point."""
    report = OptimizeReport()
    pinned = set(pinned or ())
    for _ in range(10 * max(len(sfg), 1)):
        if not _single_pass(sfg, pinned, report):
            break
    return report


def optimize_design(design: VhifDesign) -> OptimizeReport:
    """Optimize every SFG of a design, pinning externally visible blocks."""
    total = OptimizeReport()
    pinned_by_sfg: dict = {}
    for _name, (sfg_name, block_id) in design.quantity_taps.items():
        pinned_by_sfg.setdefault(sfg_name, set()).add(block_id)
    for _key, (sfg_name, block_id) in design.event_sources.items():
        pinned_by_sfg.setdefault(sfg_name, set()).add(block_id)
    for sfg in design.sfgs:
        report = optimize_sfg(sfg, pinned=pinned_by_sfg.get(sfg.name))
        total.fused_scales += report.fused_scales
        total.cancelled_negations += report.cancelled_negations
        total.absorbed_negations += report.absorbed_negations
        total.removed_identities += report.removed_identities
        total.absorbed_into_integrators += report.absorbed_into_integrators
    return total
