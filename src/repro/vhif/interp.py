"""Behavioral interpreter for VHIF designs.

Simulates the technology-independent representation directly: the
signal-flow graphs are evaluated block by block in dataflow order with a
fixed time step, integrators carry state, and the FSMs react to events
exactly as the paper's process model prescribes (resume on event,
execute the entire state chain, suspend).

The interpreter serves two purposes:

* it lets the compiler's output be *executed*, so integration tests can
  check that a compiled design computes what its VASS source specifies;
* it provides the reference behavior that the synthesized op-amp netlist
  (simulated by :mod:`repro.spice`) must track.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.diagnostics import SimulationError
from repro.vass import ast_nodes as ast
from repro.vhif.design import VhifDesign
from repro.vhif.fsm import Fsm, START_STATE, State
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph

InputFunction = Callable[[float], float]

_MATH_FUNCTIONS: Dict[str, Callable[..., float]] = {
    "log": math.log,
    "ln": math.log,
    "exp": math.exp,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "arctan": math.atan,
    "sign": lambda x: math.copysign(1.0, x) if x != 0 else 0.0,
}


def eval_discrete(expr: ast.Expression, env: Mapping[str, object]) -> object:
    """Evaluate a data-path expression against the discrete environment."""
    if isinstance(expr, ast.IntegerLiteral):
        return float(expr.value)
    if isinstance(expr, ast.RealLiteral):
        return expr.value
    if isinstance(expr, ast.CharacterLiteral):
        return expr.value
    if isinstance(expr, ast.BooleanLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.identifier not in env:
            raise SimulationError(
                f"name {expr.identifier!r} is not defined in the data-path "
                "environment"
            )
        return env[expr.identifier]
    if isinstance(expr, ast.UnaryOp):
        value = eval_discrete(expr.operand, env)
        if expr.operator == "-":
            return -float(value)  # type: ignore[arg-type]
        if expr.operator == "+":
            return float(value)  # type: ignore[arg-type]
        if expr.operator == "abs":
            return abs(float(value))  # type: ignore[arg-type]
        if expr.operator == "not":
            return not _truthy(value)
        raise SimulationError(f"unknown unary operator {expr.operator!r}")
    if isinstance(expr, ast.BinaryOp):
        op = expr.operator
        left = eval_discrete(expr.left, env)
        right = eval_discrete(expr.right, env)
        if op in ("and", "or", "xor", "nand", "nor", "xnor"):
            lb, rb = _truthy(left), _truthy(right)
            if op == "and":
                return lb and rb
            if op == "or":
                return lb or rb
            if op == "xor":
                return lb != rb
            if op == "nand":
                return not (lb and rb)
            if op == "nor":
                return not (lb or rb)
            return lb == rb
        if op == "=":
            return _values_equal(left, right)
        if op == "/=":
            return not _values_equal(left, right)
        lf, rf = float(left), float(right)  # type: ignore[arg-type]
        if op == "+":
            return lf + rf
        if op == "-":
            return lf - rf
        if op == "*":
            return lf * rf
        if op == "/":
            return lf / rf
        if op == "**":
            return lf ** rf
        if op == "mod":
            return lf % rf
        if op == "<":
            return lf < rf
        if op == "<=":
            return lf <= rf
        if op == ">":
            return lf > rf
        if op == ">=":
            return lf >= rf
        raise SimulationError(f"unknown operator {op!r}")
    if isinstance(expr, ast.FunctionCall):
        fn = _MATH_FUNCTIONS.get(expr.name)
        if fn is None:
            raise SimulationError(f"unknown function {expr.name!r}")
        args = [float(eval_discrete(a, env)) for a in expr.arguments]  # type: ignore[arg-type]
        return fn(*args)
    if isinstance(expr, ast.AttributeExpr):
        if expr.attribute == "above":
            prefix = eval_discrete(expr.prefix, env)
            threshold = float(eval_discrete(expr.arguments[0], env))  # type: ignore[arg-type]
            return float(prefix) > threshold  # type: ignore[arg-type]
        raise SimulationError(f"attribute '{expr.attribute} not supported here")
    raise SimulationError(f"cannot evaluate {type(expr).__name__}")


def _truthy(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return value == "1"
    return bool(value)


def _values_equal(left: object, right: object) -> bool:
    if isinstance(left, str) or isinstance(right, str):
        return str(left) == str(right)
    if isinstance(left, bool) or isinstance(right, bool):
        return _truthy(left) == _truthy(right)
    return float(left) == float(right)  # type: ignore[arg-type]


@dataclass
class TraceSet:
    """Recorded simulation traces, keyed by probe name."""

    time: np.ndarray
    values: Dict[str, np.ndarray]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.values[name]

    def final(self, name: str) -> float:
        return float(self.values[name][-1])

    def names(self) -> List[str]:
        return sorted(self.values)


class Interpreter:
    """Fixed-step behavioral simulator for a :class:`VhifDesign`."""

    def __init__(
        self,
        design: VhifDesign,
        dt: float = 1e-5,
        inputs: Optional[Mapping[str, InputFunction]] = None,
    ):
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self.design = design
        self.dt = dt
        self.inputs: Dict[str, InputFunction] = dict(inputs or {})
        self.time = 0.0

        # Per-SFG precomputed evaluation order.
        self._orders: Dict[str, List[Block]] = {
            sfg.name: sfg.topological_order() for sfg in design.sfgs
        }
        # Block outputs: (sfg name, block id) -> float or bool.
        self._values: Dict[Tuple[str, int], object] = {}
        # Integrator state / S&H held values / switch held values.
        self._state: Dict[Tuple[str, int], float] = {}
        self._prev_input: Dict[Tuple[str, int], float] = {}
        # Discrete environment: signals, process variables, constants.
        self.env: Dict[str, object] = dict(design.constants)
        # Previous values used for event (edge) detection.
        self._prev_event_values: Dict[str, object] = {}
        # FSM bookkeeping: all processes start suspended.
        self._fsm_state: Dict[str, str] = {
            fsm.name: START_STATE for fsm in design.fsms
        }
        self._initialize()

    # -- initialization -----------------------------------------------------

    def _initialize(self) -> None:
        for sfg in self.design.sfgs:
            for block in sfg.blocks:
                key = (sfg.name, block.block_id)
                if block.kind is BlockKind.INTEGRATE:
                    self._state[key] = float(block.params.get("initial", 0.0))
                elif block.kind in (BlockKind.SAMPLE_HOLD, BlockKind.SWITCH):
                    self._state[key] = float(block.params.get("initial", 0.0))
                elif block.kind is BlockKind.COMPARATOR:
                    self._state[key] = 0.0  # hysteresis memory (0/1)
                self._values[key] = 0.0
        # Signals default to '0' (bit) — the compiler records declared
        # signals in design.constants only when they are real constants.
        for fsm in self.design.fsms:
            for signal in fsm.output_signals():
                self.env.setdefault(signal, "0")
        for signal in self.design.external_signals:
            self.env.setdefault(signal, "0")
        self._input_block_names = {
            block.name
            for sfg in self.design.sfgs
            for block in sfg.inputs
        }

    # -- block evaluation -------------------------------------------------------

    def _control_value(self, sfg: SignalFlowGraph, block: Block) -> object:
        driver = sfg.control_driver_of(block)
        if driver is not None:
            return self._values[(sfg.name, driver.block_id)]
        signal = sfg.control_signal_of(block)
        if signal is not None:
            return self.env.get(signal, "0")
        return "1"  # uncontrolled blocks behave transparently

    def _eval_block(self, sfg: SignalFlowGraph, block: Block) -> object:
        key = (sfg.name, block.block_id)
        kind = block.kind

        def input_value(port: int) -> float:
            pred = sfg.driver_of(block, port)
            if pred is None:
                raise SimulationError(
                    f"{sfg.name}: input {port} of {block.describe()} undriven"
                )
            return float(self._values[(sfg.name, pred.block_id)])  # type: ignore[arg-type]

        if kind is BlockKind.INPUT:
            fn = self.inputs.get(block.name)
            if fn is None:
                return 0.0
            return float(fn(self.time))
        if kind is BlockKind.CONST:
            return float(block.params["value"])  # type: ignore[arg-type]
        if kind is BlockKind.OUTPUT:
            return input_value(0)
        if kind is BlockKind.ADD:
            return sum(input_value(p) for p in range(block.n_inputs))
        if kind is BlockKind.SUB:
            return input_value(0) - input_value(1)
        if kind is BlockKind.MUL:
            return input_value(0) * input_value(1)
        if kind is BlockKind.DIV:
            denominator = input_value(1)
            if abs(denominator) < 1e-12:
                denominator = math.copysign(1e-12, denominator or 1.0)
            return input_value(0) / denominator
        if kind is BlockKind.SCALE:
            return block.gain * input_value(0)
        if kind is BlockKind.NEG:
            return -input_value(0)
        if kind is BlockKind.INTEGRATE:
            return self._state[key]
        if kind is BlockKind.DIFFERENTIATE:
            previous = self._prev_input.get(key, input_value(0))
            current = input_value(0)
            return (current - previous) / self.dt
        if kind is BlockKind.LOG:
            argument = input_value(0)
            return math.log(max(argument, 1e-30))
        if kind is BlockKind.EXP:
            return math.exp(min(input_value(0), 700.0))
        if kind is BlockKind.ABS:
            return abs(input_value(0))
        if kind is BlockKind.LIMIT:
            low = float(block.params.get("low", -1.0))
            high = float(block.params.get("high", 1.0))
            return min(max(input_value(0), low), high)
        if kind is BlockKind.SAMPLE_HOLD:
            if _truthy(self._control_value(sfg, block)):
                self._state[key] = input_value(0)
            return self._state[key]
        if kind is BlockKind.SWITCH:
            if _truthy(self._control_value(sfg, block)):
                self._state[key] = input_value(0)
            return self._state[key]
        if kind is BlockKind.MUX:
            select = self._control_value(sfg, block)
            if isinstance(select, bool) or isinstance(select, str):
                index = 0 if _truthy(select) else 1
            else:
                index = int(select)
            index = min(max(index, 0), block.n_inputs - 1)
            return input_value(index)
        if kind is BlockKind.COMPARATOR:
            threshold = float(block.params.get("threshold", 0.0))
            hysteresis = float(block.params.get("hysteresis", 0.0))
            value = input_value(0)
            was_high = self._state[key] > 0.5
            if was_high:
                high = value > threshold - hysteresis
            else:
                high = value > threshold + hysteresis
            self._state[key] = 1.0 if high else 0.0
            if block.params.get("invert"):
                return not high
            return high
        if kind is BlockKind.ADC:
            bits = int(block.params.get("bits", 8))
            full_scale = float(block.params.get("full_scale", 5.0))
            if not _truthy(self._control_value(sfg, block)):
                return self._values[key]
            value = input_value(0)
            levels = (1 << bits) - 1
            code = round(min(max(value / full_scale, 0.0), 1.0) * levels)
            return code * full_scale / levels
        if kind is BlockKind.DAC:
            return input_value(0)
        if kind is BlockKind.BUFFER:
            return input_value(0)
        raise SimulationError(f"cannot evaluate block kind {kind.value!r}")

    def _integrate_states(self, sfg: SignalFlowGraph) -> None:
        """Advance integrator states with the current block outputs."""
        for block in sfg.blocks_of_kind(BlockKind.INTEGRATE):
            key = (sfg.name, block.block_id)
            pred = sfg.driver_of(block, 0)
            if pred is None:
                continue
            rate = float(self._values[(sfg.name, pred.block_id)])  # type: ignore[arg-type]
            self._state[key] += block.gain * rate * self.dt
        for block in sfg.blocks_of_kind(BlockKind.DIFFERENTIATE):
            key = (sfg.name, block.block_id)
            pred = sfg.driver_of(block, 0)
            if pred is not None:
                self._prev_input[key] = float(
                    self._values[(sfg.name, pred.block_id)]  # type: ignore[arg-type]
                )

    # -- event detection -----------------------------------------------------------

    def _detect_events(self) -> None:
        """Populate ``event:*`` entries of the environment for this step."""
        current: Dict[str, object] = {}
        # 'above events from comparator blocks registered as event sources.
        for event_name, (sfg_name, block_id) in self.design.event_sources.items():
            current[event_name] = self._values[(sfg_name, block_id)]
            # The FSM data-path may test the level of the 'above expression.
            self.env[event_name] = self._values[(sfg_name, block_id)]
        # Signal events: value changes of FSM-visible signals.
        for fsm in self.design.fsms:
            for name in fsm.event_names():
                if name in current or name.endswith("'above"):
                    continue
                if name in self.env:
                    current[name] = self.env[name]
        for name, value in current.items():
            if name not in self._prev_event_values:
                # VHDL semantics: every process executes once at time
                # zero, so the first observation counts as an event.
                self.env[f"event:{name}"] = True
            else:
                previous = self._prev_event_values[name]
                self.env[f"event:{name}"] = previous != value
            self._prev_event_values[name] = value
        # Quantity taps: make continuous values visible to data-paths.
        for qname, (sfg_name, block_id) in self.design.quantity_taps.items():
            self.env[qname] = self._values[(sfg_name, block_id)]

    # -- FSM execution -----------------------------------------------------------------

    def _run_fsm(self, fsm: Fsm) -> None:
        """Resume the process if an event fires; run to suspension."""
        current = self._fsm_state[fsm.name]
        if current != START_STATE:
            # A previous step left the FSM mid-chain (should not happen in
            # the paper's model, but be safe): continue from there.
            pass
        steps = 0
        while True:
            steps += 1
            if steps > 1000:
                raise SimulationError(
                    f"FSM {fsm.name!r} did not suspend after 1000 transitions"
                )
            moved = False
            for transition in fsm.transitions_from(current):
                if transition.condition.evaluate(self.env):
                    current = transition.target
                    if current != START_STATE:
                        self._execute_state(fsm.state(current))
                    moved = True
                    break
            if not moved:
                # No enabled outgoing arc: the process suspends.
                current = START_STATE
                break
            if current == START_STATE:
                break
        self._fsm_state[fsm.name] = current

    def _execute_state(self, state: State) -> None:
        # Operations of a state are concurrent: read all, then write all.
        updates: List[Tuple[str, object]] = []
        for op in state.operations:
            updates.append((op.target, eval_discrete(op.expr, self.env)))
        for target, value in updates:
            self.env[target] = value

    # -- stepping -------------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by one time step."""
        # External *signal* ports: sample their stimulus functions into
        # the discrete environment (bit values as '0'/'1' characters).
        for name, fn in self.inputs.items():
            if name in self._input_block_names:
                continue  # analog input, handled at its INPUT block
            value = fn(self.time)
            if isinstance(value, str):
                self.env[name] = value
            elif isinstance(value, bool):
                self.env[name] = "1" if value else "0"
            else:
                self.env[name] = "1" if float(value) > 0.5 else "0"
        for sfg in self.design.sfgs:
            for block in self._orders[sfg.name]:
                self._values[(sfg.name, block.block_id)] = self._eval_block(
                    sfg, block
                )
        self._detect_events()
        for fsm in self.design.fsms:
            self._run_fsm(fsm)
        for sfg in self.design.sfgs:
            self._integrate_states(sfg)
        self.time += self.dt

    def probe(self, name: str) -> object:
        """Current value of a named block output, port or signal."""
        for sfg in self.design.sfgs:
            for block in sfg.blocks:
                if block.name == name:
                    return self._values[(sfg.name, block.block_id)]
        if name in self.env:
            return self.env[name]
        raise SimulationError(f"no probe target named {name!r}")

    def run(
        self,
        t_end: float,
        probes: Sequence[str] = (),
    ) -> TraceSet:
        """Simulate until ``t_end`` and record the named probes."""
        n_steps = max(1, int(round(t_end / self.dt)))
        times = np.empty(n_steps)
        records: Dict[str, List[float]] = {name: [] for name in probes}
        for i in range(n_steps):
            self.step()
            times[i] = self.time
            for name in probes:
                value = self.probe(name)
                if isinstance(value, bool):
                    records[name].append(1.0 if value else 0.0)
                elif isinstance(value, str):
                    records[name].append(1.0 if value == "1" else 0.0)
                else:
                    records[name].append(float(value))  # type: ignore[arg-type]
        return TraceSet(
            time=times,
            values={name: np.asarray(vals) for name, vals in records.items()},
        )


def simulate(
    design: VhifDesign,
    t_end: float,
    dt: float = 1e-5,
    inputs: Optional[Mapping[str, InputFunction]] = None,
    probes: Sequence[str] = (),
) -> TraceSet:
    """One-call simulation of a VHIF design."""
    return Interpreter(design, dt=dt, inputs=inputs).run(t_end, probes=probes)
