"""Finite state machines: the event-driven half of VHIF.

Event-driven behavior (including event-driven *analog* functionality
such as comparators and Schmitt triggers) is represented by an FSM whose
states each denote a set of concurrent data-path operations, with arcs
optionally controlled by conditions (paper Section 4, Figure 3b).

Conditions form a small boolean algebra over *event terms*:

* :class:`AboveEvent` — an event on ``quantity'above(threshold)``
  (originates in the continuous-time part);
* :class:`PortEvent` — an event on an external port or a *signal*;
* :class:`SignalEquals` — a level test on a *signal*'s current value
  (used on conditional arcs, e.g. ``c1 = '1'``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Union

from repro.diagnostics import VaseError
from repro.vass import ast_nodes as ast


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Condition:
    """Base class of transition conditions."""

    def evaluate(self, env: Mapping[str, object]) -> bool:
        raise NotImplementedError

    def event_names(self) -> FrozenSet[str]:
        """Names of events/signals this condition depends on."""
        return frozenset()


@dataclass(frozen=True)
class AboveEvent(Condition):
    """Event on ``quantity'above(threshold)`` — true on either crossing."""

    quantity: str
    threshold: float = 0.0
    threshold_name: Optional[str] = None

    @property
    def key(self) -> str:
        """Canonical event name linking the FSM to its comparator block."""
        return f"{self.quantity}'above({self.threshold:g})"

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return bool(env.get(f"event:{self.key}", False))

    def event_names(self) -> FrozenSet[str]:
        return frozenset({self.key})

    def __str__(self) -> str:
        thr = self.threshold_name or repr(self.threshold)
        return f"event {self.quantity}'above({thr})"


@dataclass(frozen=True)
class PortEvent(Condition):
    """Event (any value change) on a signal or external port."""

    name: str

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return bool(env.get(f"event:{self.name}", False))

    def event_names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"event {self.name}"


@dataclass(frozen=True)
class SignalEquals(Condition):
    """Level test ``signal = value`` on a transition arc."""

    name: str
    value: object

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return env.get(self.name) == self.value

    def event_names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"{self.name} = {self.value!r}"


@dataclass(frozen=True)
class BoolTest(Condition):
    """Truth test of an arbitrary boolean-valued environment entry."""

    name: str
    negate: bool = False

    def evaluate(self, env: Mapping[str, object]) -> bool:
        value = bool(env.get(self.name, False))
        return (not value) if self.negate else value

    def event_names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"{'not ' if self.negate else ''}{self.name}"


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition = field(default_factory=Condition)

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return not self.operand.evaluate(env)

    def event_names(self) -> FrozenSet[str]:
        return self.operand.event_names()

    def __str__(self) -> str:
        return f"not ({self.operand})"


@dataclass(frozen=True)
class AnyOf(Condition):
    """Logical OR of conditions (e.g. the OR of sensitivity events)."""

    operands: tuple = ()

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return any(op.evaluate(env) for op in self.operands)

    def event_names(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for op in self.operands:
            names |= op.event_names()
        return frozenset(names)

    def __str__(self) -> str:
        return " or ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class AllOf(Condition):
    """Logical AND of conditions."""

    operands: tuple = ()

    def evaluate(self, env: Mapping[str, object]) -> bool:
        return all(op.evaluate(env) for op in self.operands)

    def event_names(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for op in self.operands:
            names |= op.event_names()
        return frozenset(names)

    def __str__(self) -> str:
        return " and ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class ExprCondition(Condition):
    """A condition given as a VASS expression over the environment.

    Evaluated with :func:`repro.vhif.interp.eval_discrete`; architecture
    synthesis lowers it onto comparator/level-detector circuits.  The
    canonical string of the expression serves as identity.
    """

    expr: object = None  # ast.Expression; object keeps the dataclass frozen
    text: str = ""

    def evaluate(self, env: Mapping[str, object]) -> bool:
        from repro.vhif.interp import eval_discrete

        value = eval_discrete(self.expr, env)  # type: ignore[arg-type]
        if isinstance(value, str):
            return value == "1"
        return bool(value)

    def event_names(self) -> FrozenSet[str]:
        names = {
            n.identifier
            for n in ast.walk_expression(self.expr)  # type: ignore[arg-type]
            if isinstance(n, ast.Name)
        }
        return frozenset(names)

    def __str__(self) -> str:
        return self.text or str(self.expr)


ALWAYS = AllOf(operands=())
ALWAYS_DOC = "unconditional transition"


# ---------------------------------------------------------------------------
# Data-path operations
# ---------------------------------------------------------------------------


@dataclass
class DataOp:
    """One operation of a state's data-path: ``target <- expr``.

    ``is_signal`` distinguishes *signal* assignments (which allocate a
    memory block in hardware) from process-local variable updates.
    Expressions are kept as VASS AST nodes and evaluated by the VHIF
    interpreter; architecture synthesis maps them onto data-path
    elements.
    """

    target: str
    expr: ast.Expression
    is_signal: bool = False

    def reads(self) -> List[str]:
        return ast.referenced_names(self.expr)

    def __str__(self) -> str:
        arrow = "<=" if self.is_signal else ":="
        return f"{self.target} {arrow} {self.expr}"


@dataclass
class State:
    """A set of concurrent data-path operations."""

    name: str
    operations: List[DataOp] = field(default_factory=list)

    def writes(self) -> Set[str]:
        return {op.target for op in self.operations}

    def reads(self) -> Set[str]:
        names: Set[str] = set()
        for op in self.operations:
            names.update(op.reads())
        return names

    def __str__(self) -> str:
        ops = "; ".join(str(op) for op in self.operations) or "(no ops)"
        return f"state {self.name}: {ops}"


@dataclass
class Transition:
    """An arc of the FSM, optionally controlled by a condition."""

    source: str
    target: str
    condition: Condition = ALWAYS

    def __str__(self) -> str:
        cond = str(self.condition) if self.condition is not ALWAYS else "always"
        return f"{self.source} -> {self.target} [{cond}]"


START_STATE = "start"


class Fsm:
    """The event-driven part of a VHIF design.

    Every FSM has a ``start`` state denoting the *suspended* status of
    the process; resuming by an event is the transition from ``start``
    controlled by the OR of sensitivity-list events.  After the last
    state the process suspends again (implicit return to ``start``).
    """

    def __init__(self, name: str = "fsm"):
        self.name = name
        self._states: Dict[str, State] = {START_STATE: State(name=START_STATE)}
        self._transitions: List[Transition] = []

    # -- construction --------------------------------------------------------

    def add_state(self, name: str) -> State:
        if name in self._states:
            raise VaseError(f"duplicate FSM state {name!r}")
        state = State(name=name)
        self._states[name] = state
        return state

    def add_transition(
        self, source: str, target: str, condition: Condition = ALWAYS
    ) -> Transition:
        for endpoint in (source, target):
            if endpoint not in self._states:
                raise VaseError(f"unknown FSM state {endpoint!r}")
        transition = Transition(source=source, target=target, condition=condition)
        self._transitions.append(transition)
        return transition

    # -- queries ----------------------------------------------------------------

    @property
    def start(self) -> State:
        return self._states[START_STATE]

    @property
    def states(self) -> List[State]:
        return list(self._states.values())

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions)

    def state(self, name: str) -> State:
        return self._states[name]

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def transitions_from(self, name: str) -> List[Transition]:
        return [t for t in self._transitions if t.source == name]

    def n_states(self) -> int:
        """Number of operational states (Table-1 count, excludes start)."""
        return len(self._states) - 1

    def datapath_elements(self) -> int:
        """Distinct data-path element count across states (Table 1).

        A data-path element is a hardware resource: one memory block per
        distinct assigned target (VASS guarantees one memory block per
        signal) plus one operator element per distinct non-trivial
        expression (an expression that is not a plain literal or name).
        """
        targets: Set[str] = set()
        operator_exprs: Set[str] = set()
        for state in self._states.values():
            for op in state.operations:
                targets.add(op.target)
                if not isinstance(
                    op.expr,
                    (
                        ast.CharacterLiteral,
                        ast.IntegerLiteral,
                        ast.RealLiteral,
                        ast.BooleanLiteral,
                        ast.StringLiteral,
                        ast.Name,
                    ),
                ):
                    operator_exprs.add(str(op.expr))
        return len(targets) + len(operator_exprs)

    def output_signals(self) -> Set[str]:
        """Signals assigned by any state's data-path (control outputs)."""
        out: Set[str] = set()
        for state in self._states.values():
            for op in state.operations:
                if op.is_signal:
                    out.add(op.target)
        return out

    def event_names(self) -> Set[str]:
        names: Set[str] = set()
        for transition in self._transitions:
            names |= set(transition.condition.event_names())
        return names

    def validate(self) -> None:
        """Check structural sanity; raises :class:`VaseError` on defects."""
        if not self.transitions_from(START_STATE) and self.n_states() > 0:
            raise VaseError(f"FSM {self.name!r}: start state has no resume arc")
        reachable: Set[str] = set()
        stack = [START_STATE]
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            for transition in self.transitions_from(current):
                stack.append(transition.target)
        unreachable = set(self._states) - reachable
        if unreachable:
            raise VaseError(
                f"FSM {self.name!r}: unreachable states "
                + ", ".join(sorted(unreachable))
            )

    def describe(self) -> str:
        lines = [f"fsm {self.name!r}:"]
        for state in self._states.values():
            lines.append(f"  {state}")
        for transition in self._transitions:
            lines.append(f"  {transition}")
        return "\n".join(lines)


def sensitivity_condition(events: Sequence[Condition]) -> Condition:
    """OR of sensitivity-list events (paper: no arbitration needed since
    only one event occurs at a time)."""
    if not events:
        raise VaseError("process must have at least one sensitivity event")
    if len(events) == 1:
        return events[0]
    return AnyOf(operands=tuple(events))
