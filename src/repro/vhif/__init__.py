"""VHIF: the VASE Hierarchical Intermediate Format (paper Section 4)."""

from repro.vhif.design import PortInfo, VhifDesign, VhifStatistics
from repro.vhif.fsm import (
    ALWAYS,
    AboveEvent,
    AllOf,
    AnyOf,
    BoolTest,
    Condition,
    DataOp,
    Fsm,
    Not,
    PortEvent,
    SignalEquals,
    START_STATE,
    State,
    Transition,
    sensitivity_condition,
)
from repro.vhif.interp import Interpreter, TraceSet, eval_discrete, simulate
from repro.vhif.optimize import OptimizeReport, optimize_design, optimize_sfg
from repro.vhif.serialize import design_from_json, design_to_json
from repro.vhif.sfg import (
    Block,
    BlockKind,
    CONTROL_PORT,
    Endpoint,
    Net,
    SignalFlowGraph,
)
from repro.vhif.validate import validate_design, validate_sfg

__all__ = [
    "ALWAYS",
    "AboveEvent",
    "AllOf",
    "AnyOf",
    "Block",
    "BlockKind",
    "BoolTest",
    "CONTROL_PORT",
    "Condition",
    "DataOp",
    "Endpoint",
    "Fsm",
    "Interpreter",
    "Net",
    "Not",
    "PortEvent",
    "PortInfo",
    "START_STATE",
    "SignalEquals",
    "SignalFlowGraph",
    "State",
    "TraceSet",
    "Transition",
    "VhifDesign",
    "VhifStatistics",
    "OptimizeReport",
    "design_from_json",
    "design_to_json",
    "eval_discrete",
    "optimize_design",
    "optimize_sfg",
    "sensitivity_condition",
    "simulate",
    "validate_design",
    "validate_sfg",
]
