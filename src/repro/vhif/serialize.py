"""JSON serialization of VHIF designs.

VHIF is "a representation for structural description of analog
systems" [2] — a persistent interchange format.  This module round-trips
a :class:`~repro.vhif.design.VhifDesign` through plain JSON so designs
can be stored, diffed, and reloaded without recompiling the VASS source.

FSM data-path expressions and transition conditions are serialized as
VASS expression text (via the pretty-printer) and re-parsed on load;
condition trees rebuild from a small tagged encoding.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.diagnostics import VaseError
from repro.vass.parser import parse_expression
from repro.vass.printer import print_expression
from repro.vhif.design import PortInfo, VhifDesign
from repro.vhif.fsm import (
    ALWAYS,
    AboveEvent,
    AllOf,
    AnyOf,
    BoolTest,
    Condition,
    DataOp,
    ExprCondition,
    Fsm,
    Not,
    PortEvent,
    SignalEquals,
    START_STATE,
)
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT, SignalFlowGraph

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def _condition_to_json(condition: Condition) -> dict:
    if isinstance(condition, AboveEvent):
        return {
            "kind": "above",
            "quantity": condition.quantity,
            "threshold": condition.threshold,
            "threshold_name": condition.threshold_name,
        }
    if isinstance(condition, PortEvent):
        return {"kind": "port_event", "name": condition.name}
    if isinstance(condition, SignalEquals):
        return {
            "kind": "signal_equals",
            "name": condition.name,
            "value": condition.value,
        }
    if isinstance(condition, BoolTest):
        return {
            "kind": "bool_test",
            "name": condition.name,
            "negate": condition.negate,
        }
    if isinstance(condition, Not):
        return {"kind": "not", "operand": _condition_to_json(condition.operand)}
    if isinstance(condition, AnyOf):
        return {
            "kind": "any_of",
            "operands": [_condition_to_json(c) for c in condition.operands],
        }
    if isinstance(condition, AllOf):
        return {
            "kind": "all_of",
            "operands": [_condition_to_json(c) for c in condition.operands],
        }
    if isinstance(condition, ExprCondition):
        return {
            "kind": "expr",
            "text": print_expression(condition.expr),  # type: ignore[arg-type]
        }
    raise VaseError(f"cannot serialize condition {type(condition).__name__}")


def _condition_from_json(data: dict) -> Condition:
    kind = data["kind"]
    if kind == "above":
        return AboveEvent(
            quantity=data["quantity"],
            threshold=data["threshold"],
            threshold_name=data.get("threshold_name"),
        )
    if kind == "port_event":
        return PortEvent(name=data["name"])
    if kind == "signal_equals":
        return SignalEquals(name=data["name"], value=data["value"])
    if kind == "bool_test":
        return BoolTest(name=data["name"], negate=data["negate"])
    if kind == "not":
        return Not(operand=_condition_from_json(data["operand"]))
    if kind == "any_of":
        return AnyOf(
            operands=tuple(
                _condition_from_json(c) for c in data["operands"]
            )
        )
    if kind == "all_of":
        return AllOf(
            operands=tuple(
                _condition_from_json(c) for c in data["operands"]
            )
        )
    if kind == "expr":
        text = data["text"]
        return ExprCondition(expr=parse_expression(text), text=text)
    raise VaseError(f"unknown condition kind {kind!r}")


# ---------------------------------------------------------------------------
# Signal-flow graphs
# ---------------------------------------------------------------------------


def _sfg_to_json(sfg: SignalFlowGraph) -> dict:
    blocks = []
    for block in sorted(sfg.blocks, key=lambda b: b.block_id):
        blocks.append(
            {
                "id": block.block_id,
                "kind": block.kind.value,
                "name": block.name,
                "n_inputs": block.n_inputs,
                "params": dict(block.params),
            }
        )
    edges = []
    for net in sfg.nets:
        for sink in net.sinks:
            edges.append(
                {"from": net.driver, "to": sink.block_id, "port": sink.port}
            )
    controls = {
        signal: [e.block_id for e in endpoints]
        for signal, endpoints in sfg.control_bindings.items()
    }
    return {
        "name": sfg.name,
        "blocks": blocks,
        "edges": edges,
        "control_bindings": controls,
    }


def _sfg_from_json(data: dict) -> SignalFlowGraph:
    sfg = SignalFlowGraph(data["name"])
    id_map: Dict[int, Block] = {}
    for entry in data["blocks"]:
        block = sfg.add(
            BlockKind(entry["kind"]),
            name=entry["name"],
            n_inputs=entry["n_inputs"],
            **entry["params"],
        )
        if block.block_id != entry["id"]:
            # Preserve original ids: adjust internal maps directly.
            sfg._blocks.pop(block.block_id)
            block.block_id = entry["id"]
            sfg._blocks[block.block_id] = block
            sfg._next_block = max(sfg._next_block, entry["id"] + 1)
        id_map[entry["id"]] = block
    for edge in data["edges"]:
        sfg.connect(
            id_map[edge["from"]], id_map[edge["to"]], port=edge["port"]
        )
    for signal, block_ids in data.get("control_bindings", {}).items():
        for block_id in block_ids:
            sfg.bind_control(signal, id_map[block_id])
    return sfg


# ---------------------------------------------------------------------------
# FSMs
# ---------------------------------------------------------------------------


def _fsm_to_json(fsm: Fsm) -> dict:
    states = []
    for state in fsm.states:
        states.append(
            {
                "name": state.name,
                "operations": [
                    {
                        "target": op.target,
                        "expr": print_expression(op.expr),
                        "is_signal": op.is_signal,
                    }
                    for op in state.operations
                ],
            }
        )
    transitions = [
        {
            "source": t.source,
            "target": t.target,
            "condition": (
                _condition_to_json(t.condition)
                if t.condition is not ALWAYS
                else None
            ),
        }
        for t in fsm.transitions
    ]
    return {"name": fsm.name, "states": states, "transitions": transitions}


def _fsm_from_json(data: dict) -> Fsm:
    fsm = Fsm(name=data["name"])
    for entry in data["states"]:
        state = (
            fsm.start if entry["name"] == START_STATE
            else fsm.add_state(entry["name"])
        )
        for op in entry["operations"]:
            state.operations.append(
                DataOp(
                    target=op["target"],
                    expr=parse_expression(op["expr"]),
                    is_signal=op["is_signal"],
                )
            )
    for entry in data["transitions"]:
        condition = (
            _condition_from_json(entry["condition"])
            if entry["condition"] is not None
            else ALWAYS
        )
        fsm.add_transition(entry["source"], entry["target"], condition)
    return fsm


# ---------------------------------------------------------------------------
# Designs
# ---------------------------------------------------------------------------


def design_to_json(design: VhifDesign) -> dict:
    """Serialize a design to a JSON-compatible dictionary."""
    return {
        "format": "vhif",
        "version": FORMAT_VERSION,
        "name": design.name,
        "sfgs": [_sfg_to_json(sfg) for sfg in design.sfgs],
        "fsms": [_fsm_to_json(fsm) for fsm in design.fsms],
        "ports": {name: vars(info) for name, info in design.ports.items()},
        "event_sources": {
            key: list(value) for key, value in design.event_sources.items()
        },
        "quantity_taps": {
            key: list(value) for key, value in design.quantity_taps.items()
        },
        "constants": dict(design.constants),
        "external_signals": sorted(design.external_signals),
    }


def design_from_json(data: dict) -> VhifDesign:
    """Rebuild a design from :func:`design_to_json` output."""
    if data.get("format") != "vhif":
        raise VaseError("not a VHIF document")
    if data.get("version") != FORMAT_VERSION:
        raise VaseError(
            f"unsupported VHIF format version {data.get('version')!r}"
        )
    design = VhifDesign(data["name"])
    for sfg_data in data["sfgs"]:
        design.add_sfg(_sfg_from_json(sfg_data))
    for fsm_data in data["fsms"]:
        design.add_fsm(_fsm_from_json(fsm_data))
    for name, info in data.get("ports", {}).items():
        fields = dict(info)
        for key in ("value_range", "frequency_range"):
            if fields.get(key) is not None:
                fields[key] = tuple(fields[key])
        design.add_port(PortInfo(**fields))
    design.event_sources = {
        key: tuple(value)
        for key, value in data.get("event_sources", {}).items()
    }
    design.quantity_taps = {
        key: tuple(value)
        for key, value in data.get("quantity_taps", {}).items()
    }
    design.constants = dict(data.get("constants", {}))
    design.external_signals = set(data.get("external_signals", []))
    return design


def dumps(design: VhifDesign, indent: int = 2) -> str:
    """Serialize a design to a JSON string."""
    return json.dumps(design_to_json(design), indent=indent, sort_keys=True)


def loads(text: str) -> VhifDesign:
    """Deserialize a design from a JSON string."""
    return design_from_json(json.loads(text))
