"""VhifDesign: the complete VHIF representation of a system.

A design bundles the signal-flow graphs of the continuous-time part,
the FSMs of the event-driven part, and the control links between them
(FSM output *signals* configure switch/mux/S&H blocks in the SFGs).
It also computes the structural statistics reported in Table 1 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.diagnostics import VaseError
from repro.vhif.fsm import Fsm
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph


@dataclass
class VhifStatistics:
    """The VHIF columns of Table 1."""

    n_blocks: int
    n_states: int
    n_datapath: int

    def as_row(self) -> Tuple[int, int, int]:
        return (self.n_blocks, self.n_states, self.n_datapath)


@dataclass
class PortInfo:
    """Connection metadata of a system port carried through to synthesis."""

    name: str
    direction: str  # "in" / "out"
    kind: str = "voltage"  # voltage / current
    limit_level: Optional[float] = None
    drive_load_ohms: Optional[float] = None
    drive_amplitude: Optional[float] = None
    value_range: Optional[Tuple[float, float]] = None
    frequency_range: Optional[Tuple[float, float]] = None
    impedance_ohms: Optional[float] = None


class VhifDesign:
    """Signal-flow graphs + FSMs + the control links between them."""

    def __init__(self, name: str):
        self.name = name
        self.sfgs: List[SignalFlowGraph] = []
        self.fsms: List[Fsm] = []
        self.ports: Dict[str, PortInfo] = {}
        #: quantities computed by the continuous part that the FSMs watch
        #: through 'above events: event name -> (sfg name, comparator block id)
        self.event_sources: Dict[str, Tuple[str, int]] = {}
        #: quantity name -> (sfg name, block id) whose output carries it;
        #: lets the event-driven part and the interpreter observe
        #: continuous-time values by name.
        self.quantity_taps: Dict[str, Tuple[str, int]] = {}
        #: constants visible to FSM data-path expressions.
        self.constants: Dict[str, float] = {}
        #: names of *signal* input ports (external event/control sources,
        #: e.g. a sampling strobe); legal control-binding producers.
        self.external_signals: Set[str] = set()

    # -- construction -------------------------------------------------------

    def add_sfg(self, sfg: SignalFlowGraph) -> SignalFlowGraph:
        if any(existing.name == sfg.name for existing in self.sfgs):
            raise VaseError(f"duplicate SFG name {sfg.name!r}")
        self.sfgs.append(sfg)
        return sfg

    def add_fsm(self, fsm: Fsm) -> Fsm:
        if any(existing.name == fsm.name for existing in self.fsms):
            raise VaseError(f"duplicate FSM name {fsm.name!r}")
        self.fsms.append(fsm)
        return fsm

    def add_port(self, info: PortInfo) -> None:
        self.ports[info.name] = info

    # -- queries -------------------------------------------------------------

    def sfg(self, name: str) -> SignalFlowGraph:
        for sfg in self.sfgs:
            if sfg.name == name:
                return sfg
        raise VaseError(f"no SFG named {name!r}")

    @property
    def main_sfg(self) -> SignalFlowGraph:
        if not self.sfgs:
            raise VaseError("design has no signal-flow graph")
        return self.sfgs[0]

    @property
    def fsm(self) -> Optional[Fsm]:
        return self.fsms[0] if self.fsms else None

    def control_signals(self) -> Set[str]:
        """Names of FSM output signals that configure SFG blocks."""
        names: Set[str] = set()
        for fsm in self.fsms:
            names |= fsm.output_signals()
        return names

    def controlled_blocks(self) -> List[Tuple[SignalFlowGraph, Block, str]]:
        """All (sfg, block, control signal) triples in the design."""
        result: List[Tuple[SignalFlowGraph, Block, str]] = []
        for sfg in self.sfgs:
            for signal, endpoints in sfg.control_bindings.items():
                for endpoint in endpoints:
                    result.append((sfg, sfg.block(endpoint.block_id), signal))
        return result

    # -- statistics (Table 1) ---------------------------------------------------

    def statistics(self) -> VhifStatistics:
        n_blocks = sum(len(sfg.processing_blocks()) for sfg in self.sfgs)
        n_states = sum(fsm.n_states() for fsm in self.fsms)
        n_datapath = sum(fsm.datapath_elements() for fsm in self.fsms)
        return VhifStatistics(
            n_blocks=n_blocks, n_states=n_states, n_datapath=n_datapath
        )

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks across the whole representation."""
        from repro.vhif.validate import validate_design

        validate_design(self)

    def describe(self) -> str:
        lines = [f"VHIF design {self.name!r}"]
        stats = self.statistics()
        lines.append(
            f"  blocks={stats.n_blocks} states={stats.n_states} "
            f"datapath={stats.n_datapath}"
        )
        for sfg in self.sfgs:
            lines.append("  " + sfg.describe().replace("\n", "\n  "))
        for fsm in self.fsms:
            lines.append("  " + fsm.describe().replace("\n", "\n  "))
        return "\n".join(lines)
