"""Compilation of simultaneous if/case statements (conditional DAEs).

A ``simultaneous if`` selects between alternative equation sets
depending on a condition.  VHIF realizes the selection with analog
multiplexers/switches in the signal path, configured either by an FSM
output *signal* (event-driven control, as in the receiver's ``c1``) or
by a comparator block when the condition tests a quantity directly.

Each branch's equations are solved symbolically for the statement's
unknowns (so branches may be written implicitly), compiled, and the
branch values are combined with a MUX chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.semantics import AnalyzedDesign, ValueType
from repro.compiler import symbolic
from repro.compiler.expressions import ExprCompiler
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT


class ConditionControl:
    """How a branch condition drives a MUX control input."""

    def __init__(
        self,
        signal: Optional[str] = None,
        polarity: bool = True,
        comparator: Optional[Block] = None,
    ):
        self.signal = signal
        self.polarity = polarity  # False: condition true when signal = '0'
        self.comparator = comparator

    def attach(self, compiler: ExprCompiler, mux: Block) -> None:
        if self.signal is not None:
            compiler.sfg.bind_control(self.signal, mux)
        elif self.comparator is not None:
            compiler.sfg.connect(self.comparator, mux, port=CONTROL_PORT)
        else:
            raise CompileError("condition control has no source")


def classify_condition(
    condition: ast.Expression,
    design: AnalyzedDesign,
    compiler: ExprCompiler,
) -> ConditionControl:
    """Map a condition onto a control source.

    ``signal = '1'`` / ``signal = '0'`` / bare bit signals become control
    bindings resolved against FSM outputs; analog comparisons become
    comparator blocks.
    """
    # signal = 'x'
    if isinstance(condition, ast.BinaryOp) and condition.operator == "=":
        left, right = condition.left, condition.right
        if isinstance(right, ast.Name) and isinstance(left, ast.CharacterLiteral):
            left, right = right, left
        if isinstance(left, ast.Name) and isinstance(right, ast.CharacterLiteral):
            symbol = design.scope.lookup(left.identifier)
            if symbol is not None and symbol.value_type is ValueType.BIT:
                return ConditionControl(
                    signal=left.identifier, polarity=right.value == "1"
                )
        if isinstance(left, ast.Name) and isinstance(right, ast.BooleanLiteral):
            symbol = design.scope.lookup(left.identifier)
            if symbol is not None and symbol.value_type is ValueType.BOOLEAN:
                return ConditionControl(
                    signal=left.identifier, polarity=right.value
                )
    # bare signal of bit/boolean type
    if isinstance(condition, ast.Name):
        symbol = design.scope.lookup(condition.identifier)
        if symbol is not None and symbol.value_type in (
            ValueType.BIT,
            ValueType.BOOLEAN,
        ):
            return ConditionControl(signal=condition.identifier, polarity=True)
    if isinstance(condition, ast.UnaryOp) and condition.operator == "not":
        inner = classify_condition(condition.operand, design, compiler)
        return ConditionControl(
            signal=inner.signal,
            polarity=not inner.polarity,
            comparator=inner.comparator,
        )
    # analog comparison -> comparator block
    comparator = compiler.compile_condition(condition)
    return ConditionControl(comparator=comparator)


def _equations_of(stmts: Sequence[ast.ConcurrentStmt]) -> List[ast.SimpleSimultaneous]:
    equations: List[ast.SimpleSimultaneous] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SimpleSimultaneous):
            equations.append(stmt)
        else:
            raise CompileError(
                "only simple simultaneous statements are supported inside "
                "simultaneous if/case branches",
                stmt.location,
            )
    return equations


def conditional_unknowns(
    stmt: ast.ConcurrentStmt, candidates: Sequence[str]
) -> List[str]:
    """Names from ``candidates`` defined by every branch of ``stmt``."""
    branch_bodies: List[Sequence[ast.ConcurrentStmt]] = []
    if isinstance(stmt, ast.SimultaneousIf):
        branch_bodies = [body for _, body in stmt.branches]
        if stmt.else_body:
            branch_bodies.append(stmt.else_body)
    elif isinstance(stmt, ast.SimultaneousCase):
        branch_bodies = [body for _, body in stmt.alternatives]
        if stmt.others is not None:
            branch_bodies.append(stmt.others)
    else:
        return []
    per_branch: List[set] = []
    for body in branch_bodies:
        names: set = set()
        for eq in _equations_of(body):
            names |= set(ast.referenced_names(eq.lhs))
            names |= set(ast.referenced_names(eq.rhs))
        per_branch.append(names)
    if not per_branch:
        return []
    common = set.intersection(*per_branch)
    return [name for name in candidates if name in common]


def _solve_branch(
    body: Sequence[ast.ConcurrentStmt],
    unknowns: Sequence[str],
    compiler: ExprCompiler,
    location,
) -> Dict[str, Block]:
    """Solve each branch equation for its unknown and compile the value."""
    equations = _equations_of(body)
    values: Dict[str, Block] = {}
    remaining = list(unknowns)
    for eq in equations:
        names = set(ast.referenced_names(eq.lhs)) | set(
            ast.referenced_names(eq.rhs)
        )
        involved = [u for u in remaining if u in names]
        if not involved:
            raise CompileError(
                f"branch equation {eq} does not define any unknown", eq.location
            )
        unknown = involved[0]
        solved = symbolic.solve_for(eq.lhs, eq.rhs, unknown)
        values[unknown] = compiler.compile(solved)
        remaining.remove(unknown)
    if remaining:
        raise CompileError(
            f"branch does not define unknowns {remaining}", location
        )
    return values


def compile_simultaneous_if(
    stmt: ast.SimultaneousIf,
    unknowns: Sequence[str],
    design: AnalyzedDesign,
    compiler: ExprCompiler,
) -> Dict[str, Block]:
    """Compile a simultaneous-if into per-unknown MUX chains.

    Returns a binding for every unknown.  The branch chain is built
    back-to-front: the innermost MUX selects between the last condition
    and the else value.
    """
    if not stmt.else_body and len(stmt.branches) < 2:
        raise CompileError(
            "simultaneous if needs an else branch (a quantity must be "
            "determined under every condition)",
            stmt.location,
        )
    controls: List[ConditionControl] = []
    branch_values: List[Dict[str, Block]] = []
    for condition, body in stmt.branches:
        controls.append(classify_condition(condition, design, compiler))
        branch_values.append(_solve_branch(body, unknowns, compiler, stmt.location))
    if stmt.else_body:
        else_values = _solve_branch(stmt.else_body, unknowns, compiler, stmt.location)
    else:
        raise CompileError(
            "simultaneous if without else cannot determine its unknowns "
            "in all modes",
            stmt.location,
        )

    result: Dict[str, Block] = {}
    for unknown in unknowns:
        current = else_values[unknown]
        for control, values in zip(reversed(controls), reversed(branch_values)):
            mux = compiler.sfg.add(BlockKind.MUX, n_inputs=2)
            true_value, false_value = values[unknown], current
            if not control.polarity:
                true_value, false_value = false_value, true_value
            compiler.sfg.connect(true_value, mux, port=0)
            compiler.sfg.connect(false_value, mux, port=1)
            control.attach(compiler, mux)
            current = mux
        current.name = f"q_{unknown}"
        result[unknown] = current
    return result


def compile_simultaneous_case(
    stmt: ast.SimultaneousCase,
    unknowns: Sequence[str],
    design: AnalyzedDesign,
    compiler: ExprCompiler,
) -> Dict[str, Block]:
    """Compile a simultaneous-case by lowering it to an if chain.

    The selector must be a *signal*; each alternative's choices become
    equality conditions.
    """
    if not isinstance(stmt.selector, ast.Name):
        raise CompileError(
            "simultaneous case selector must be a signal name", stmt.location
        )
    branches: List[Tuple[ast.Expression, List[ast.ConcurrentStmt]]] = []
    for choices, body in stmt.alternatives:
        condition: Optional[ast.Expression] = None
        for choice in choices:
            test = ast.BinaryOp(operator="=", left=stmt.selector, right=choice)
            condition = (
                test
                if condition is None
                else ast.BinaryOp(operator="or", left=condition, right=test)
            )
        assert condition is not None
        branches.append((condition, list(body)))
    if stmt.others is None:
        if not branches:
            raise CompileError("empty simultaneous case", stmt.location)
        # Use the last alternative as the default.
        last_condition, last_body = branches.pop()
        else_body = last_body
    else:
        else_body = list(stmt.others)
    lowered = ast.SimultaneousIf(
        branches=branches, else_body=else_body, location=stmt.location
    )
    return compile_simultaneous_if(lowered, unknowns, design, compiler)
