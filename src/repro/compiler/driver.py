"""The VASS-to-VHIF compiler driver.

Orchestrates the translation of an analyzed design into a
:class:`~repro.vhif.design.VhifDesign`:

1. input ports become INPUT blocks;
2. concurrent constructs are ordered by data dependence (a construct
   reading a quantity compiles after the construct defining it) and
   compiled: procedurals as dataflow, conditional simultaneous
   statements as MUX networks, the simple simultaneous set as one DAE
   "solver", processes as FSMs;
3. output ports grow their inferred interface blocks — the paper's
   *block 4*: a limiter and/or driving output stage derived from the
   port annotations, not from VHDL-AMS code;
4. the result is validated structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.parser import parse_source
from repro.vass.semantics import AnalyzedDesign, SemanticError, analyze, eval_static
from repro.compiler.conditional import (
    compile_simultaneous_case,
    compile_simultaneous_if,
    conditional_unknowns,
)
from repro.compiler.dae import Causalization, DaeCompiler
from repro.compiler.expressions import ExprCompiler
from repro.compiler.procedural import compile_procedural
from repro.compiler.process import compile_process
from repro.vhif.design import PortInfo, VhifDesign
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph


@dataclass
class CompilerOptions:
    """Knobs of the VASS compiler."""

    #: which DAE causalization ("solver") to emit; index into the
    #: enumeration order of :meth:`DaeCompiler.enumerate_causalizations`.
    solver_index: int = 0
    #: cap on enumerated causalizations.
    max_solvers: int = 16
    #: validate the produced VHIF (disable only in targeted tests).
    validate: bool = True


def _port_info(symbol) -> PortInfo:
    """Collect a port's annotation set into a :class:`PortInfo`."""
    info = PortInfo(
        name=symbol.name,
        direction="in" if symbol.mode is ast.PortMode.IN else "out",
    )
    for annotation in symbol.annotations:
        if isinstance(annotation, ast.KindAnnotation):
            info.kind = annotation.kind.value
        elif isinstance(annotation, ast.LimitAnnotation):
            info.limit_level = annotation.level
        elif isinstance(annotation, ast.DriveAnnotation):
            info.drive_load_ohms = annotation.load_ohms
            info.drive_amplitude = annotation.amplitude
        elif isinstance(annotation, ast.RangeAnnotation):
            info.value_range = (annotation.low, annotation.high)
        elif isinstance(annotation, ast.FrequencyAnnotation):
            info.frequency_range = (annotation.low, annotation.high)
        elif isinstance(annotation, ast.ImpedanceAnnotation):
            info.impedance_ohms = annotation.ohms
    return info


class DesignCompiler:
    """Compiles one analyzed design into VHIF."""

    def __init__(self, design: AnalyzedDesign, options: CompilerOptions):
        self.design = design
        self.options = options
        self.vhif = VhifDesign(design.name)
        self.sfg = SignalFlowGraph(name="main")
        self.vhif.add_sfg(self.sfg)
        self.compiler = ExprCompiler(self.sfg, design.scope)
        self.bindings: Dict[str, Block] = {}

    # -- construct classification ----------------------------------------------

    def _classify(self):
        simples: List[ast.SimpleSimultaneous] = []
        conditionals: List[Union[ast.SimultaneousIf, ast.SimultaneousCase]] = []
        procedurals: List[ast.ProceduralStmt] = []
        processes: List[ast.ProcessStmt] = []
        for stmt in self.design.architecture.statements:
            if isinstance(stmt, ast.SimpleSimultaneous):
                simples.append(stmt)
            elif isinstance(stmt, (ast.SimultaneousIf, ast.SimultaneousCase)):
                conditionals.append(stmt)
            elif isinstance(stmt, ast.ProceduralStmt):
                procedurals.append(stmt)
            elif isinstance(stmt, ast.ProcessStmt):
                processes.append(stmt)
            else:
                raise CompileError(
                    f"unsupported concurrent statement "
                    f"{type(stmt).__name__}",
                    stmt.location,
                )
        return simples, conditionals, procedurals, processes

    def _analog_names(self) -> Set[str]:
        """Quantities (including ports) visible to the continuous part."""
        return {
            s.name
            for s in self.design.scope.symbols()
            if s.object_class is ast.ObjectClass.QUANTITY
        }

    def _input_names(self) -> Set[str]:
        return {s.name for s in self.design.input_quantities()}

    # -- compile steps ----------------------------------------------------------

    def _make_inputs(self) -> None:
        for symbol in self.design.ports():
            if symbol.object_class is ast.ObjectClass.QUANTITY:
                self.vhif.add_port(_port_info(symbol))
        for symbol in self.design.input_quantities():
            block = self.sfg.add(BlockKind.INPUT, name=symbol.name)
            self.bindings[symbol.name] = block
        for symbol in self.design.ports():
            if (
                symbol.object_class is ast.ObjectClass.SIGNAL
                and symbol.mode is ast.PortMode.IN
            ):
                self.vhif.external_signals.add(symbol.name)

    def _initial_values(self) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for symbol in self.design.quantities():
            if symbol.initial is None:
                continue
            try:
                value = eval_static(symbol.initial, self.design.scope)
                values[symbol.name] = float(value)  # type: ignore[arg-type]
            except (SemanticError, TypeError, ValueError):
                continue
        return values

    def _procedural_outputs(self, procedural: ast.ProceduralStmt) -> List[str]:
        locals_ = {d.name for d in procedural.declarations}
        outputs: List[str] = []
        for stmt in ast.walk_sequential(procedural.body):
            if isinstance(stmt, ast.VariableAssignment):
                if stmt.target in locals_:
                    continue
                symbol = self.design.scope.lookup(stmt.target)
                if (
                    symbol is not None
                    and symbol.object_class is ast.ObjectClass.QUANTITY
                    and stmt.target not in outputs
                ):
                    outputs.append(stmt.target)
        return outputs

    def _order_constructs(self, items: List[dict]) -> List[dict]:
        """Topologically order constructs by quantity define/use edges."""
        defined_by: Dict[str, int] = {}
        for index, item in enumerate(items):
            for name in item["defines"]:
                if name in defined_by:
                    raise CompileError(
                        f"quantity {name!r} is defined by more than one "
                        "concurrent construct"
                    )
                defined_by[name] = index
        order: List[dict] = []
        done: Set[int] = set()
        visiting: Set[int] = set()

        def visit(index: int) -> None:
            if index in done:
                return
            if index in visiting:
                raise CompileError(
                    "cyclic dependence between concurrent constructs "
                    "(an algebraic loop not broken by an integrator)"
                )
            visiting.add(index)
            for name in items[index]["reads"]:
                producer = defined_by.get(name)
                if producer is not None and producer != index:
                    visit(producer)
            visiting.discard(index)
            done.add(index)
            order.append(items[index])

        for index in range(len(items)):
            visit(index)
        return order

    def compile(self) -> VhifDesign:
        simples, conditionals, procedurals, processes = self._classify()
        self._make_inputs()
        analog = self._analog_names()
        inputs = self._input_names()
        claimed: Set[str] = set(inputs)

        items: List[dict] = []
        for procedural in procedurals:
            defines = self._procedural_outputs(procedural)
            reads = {
                name
                for stmt in ast.walk_sequential(procedural.body)
                if isinstance(stmt, (ast.VariableAssignment, ast.SignalAssignment))
                for name in ast.referenced_names(stmt.value)
                if name in analog and name not in defines
            }
            claimed |= set(defines)
            items.append(
                {
                    "kind": "procedural",
                    "stmt": procedural,
                    "defines": defines,
                    "reads": reads,
                }
            )
        for conditional in conditionals:
            candidates = sorted(analog - claimed)
            defines = conditional_unknowns(conditional, candidates)
            if not defines:
                raise CompileError(
                    "simultaneous if/case does not define any quantity",
                    conditional.location,
                )
            claimed |= set(defines)
            reads: Set[str] = set()
            for eq in ast.walk_concurrent([conditional]):
                if isinstance(eq, ast.SimpleSimultaneous):
                    reads |= set(ast.referenced_names(eq.lhs))
                    reads |= set(ast.referenced_names(eq.rhs))
            reads = {n for n in reads if n in analog} - set(defines)
            items.append(
                {
                    "kind": "conditional",
                    "stmt": conditional,
                    "defines": defines,
                    "reads": reads,
                }
            )
        if simples:
            unknowns = sorted(analog - claimed)
            if not unknowns:
                raise CompileError(
                    "quantities of the simultaneous statements are defined "
                    "by more than one concurrent construct (each quantity "
                    "may have exactly one defining construct)"
                )
            reads = set()
            for eq in simples:
                reads |= set(ast.referenced_names(eq.lhs))
                reads |= set(ast.referenced_names(eq.rhs))
            reads = {n for n in reads if n in analog} - set(unknowns)
            claimed |= set(unknowns)
            items.append(
                {
                    "kind": "dae",
                    "stmt": simples,
                    "defines": unknowns,
                    "reads": reads,
                }
            )

        undefined = {
            s.name
            for s in self.design.output_quantities()
            if s.name not in claimed
        }
        if undefined:
            raise CompileError(
                f"output quantities {sorted(undefined)} are never defined"
            )

        for item in self._order_constructs(items):
            self.compiler.bindings = self.bindings
            if item["kind"] == "procedural":
                produced = compile_procedural(
                    item["stmt"], self.design, self.compiler, self.bindings
                )
                for name in item["defines"]:
                    block = produced.get(name)
                    if block is None:
                        raise CompileError(
                            f"procedural does not produce {name!r}"
                        )
                    if not block.name or block.name.startswith(block.kind.value):
                        block.name = f"q_{name}"
                    self.bindings[name] = block
            elif item["kind"] == "conditional":
                stmt = item["stmt"]
                if isinstance(stmt, ast.SimultaneousIf):
                    produced = compile_simultaneous_if(
                        stmt, item["defines"], self.design, self.compiler
                    )
                else:
                    produced = compile_simultaneous_case(
                        stmt, item["defines"], self.design, self.compiler
                    )
                self.bindings.update(produced)
            else:  # dae
                dae = DaeCompiler(
                    item["stmt"],
                    item["defines"],
                    initial_values=self._initial_values(),
                    max_solvers=self.options.max_solvers,
                )
                causalizations = dae.enumerate_causalizations()
                if not causalizations:
                    raise CompileError(
                        "no causalization solves the simultaneous statement "
                        "set"
                    )
                index = min(self.options.solver_index, len(causalizations) - 1)
                produced = dae.emit(
                    self.compiler,
                    causalizations[index],
                    chosen_index=index,
                    n_alternatives=len(causalizations),
                )
                for name, block in produced.items():
                    self.bindings[name] = block

        for process in enumerate_processes(processes):
            index, stmt = process
            self.compiler.bindings = self.bindings
            fsm = compile_process(
                stmt,
                self.design,
                self.vhif,
                self.compiler,
                name=stmt.label or f"proc{index}",
            )
            self.vhif.add_fsm(fsm)

        self._make_outputs()
        self._register_taps_and_constants()
        self._prune_dead_blocks()
        if self.options.validate:
            self.vhif.validate()
        return self.vhif

    def _prune_dead_blocks(self) -> None:
        """Remove blocks whose outputs nothing consumes.

        Branch merging and loop unrolling can leave behind values that
        no surviving expression uses (e.g. the pre-branch constant of a
        variable rewritten in both arms).  Protected blocks — ports,
        quantity taps, event sources — always stay.
        """
        protected = {
            block_id for (_s, block_id) in self.vhif.quantity_taps.values()
        }
        protected |= {
            block_id for (_s, block_id) in self.vhif.event_sources.values()
        }
        changed = True
        while changed:
            changed = False
            for block in list(self.sfg.blocks):
                if block.kind in (BlockKind.INPUT, BlockKind.OUTPUT):
                    continue
                if block.block_id in protected:
                    continue
                if self.sfg.fanout(block) == 0:
                    self.sfg.remove_block(block)
                    changed = True

    def _make_outputs(self) -> None:
        """Create output chains, inferring interface blocks from
        annotations (the paper's *block 4*)."""
        for symbol in self.design.output_quantities():
            block = self.bindings.get(symbol.name)
            if block is None:
                raise CompileError(
                    f"output port {symbol.name!r} has no defining construct"
                )
            info = self.vhif.ports[symbol.name]
            current = block
            if info.limit_level is not None or info.drive_load_ohms is not None:
                params: Dict[str, object] = {"role": "output_stage"}
                if info.limit_level is not None:
                    params["low"] = -info.limit_level
                    params["high"] = info.limit_level
                if info.drive_load_ohms is not None:
                    params["load_ohms"] = info.drive_load_ohms
                if info.drive_amplitude is not None:
                    params["amplitude"] = info.drive_amplitude
                if info.limit_level is not None:
                    stage = self.sfg.add(
                        BlockKind.LIMIT, name=f"stage_{symbol.name}", **params
                    )
                else:
                    stage = self.sfg.add(
                        BlockKind.BUFFER, name=f"stage_{symbol.name}", **params
                    )
                self.sfg.connect(current, stage)
                current = stage
            elif info.impedance_ohms is not None and info.direction == "out":
                stage = self.sfg.add(
                    BlockKind.BUFFER,
                    name=f"stage_{symbol.name}",
                    role="follower",
                    impedance_ohms=info.impedance_ohms,
                )
                self.sfg.connect(current, stage)
                current = stage
            out = self.sfg.add(BlockKind.OUTPUT, name=symbol.name)
            self.sfg.connect(current, out)

    def _register_taps_and_constants(self) -> None:
        for name, block in self.bindings.items():
            if name.endswith("__dot"):
                continue
            self.vhif.quantity_taps[name] = (self.sfg.name, block.block_id)
        for symbol in self.design.scope.symbols():
            if symbol.static_value is not None:
                self.vhif.constants[symbol.name] = symbol.static_value


def enumerate_processes(processes: Sequence[ast.ProcessStmt]):
    return list(enumerate(processes))


def compile_design(
    source: Union[str, ast.SourceFile, AnalyzedDesign],
    entity_name: Optional[str] = None,
    options: Optional[CompilerOptions] = None,
    architecture_name: Optional[str] = None,
    source_filename: Optional[str] = None,
) -> VhifDesign:
    """Compile VASS source (text, AST or analyzed design) into VHIF.

    ``source_filename`` names the origin of ``source`` text in
    diagnostics (``file:line:col``); ignored for pre-parsed input.
    """
    options = options or CompilerOptions()
    if isinstance(source, str):
        analyzed = analyze(
            parse_source(source, filename=source_filename or "<string>"),
            entity_name=entity_name,
            architecture_name=architecture_name,
        )
    elif isinstance(source, ast.SourceFile):
        analyzed = analyze(
            source,
            entity_name=entity_name,
            architecture_name=architecture_name,
        )
    else:
        analyzed = source
    return DesignCompiler(analyzed, options).compile()


def enumerate_solvers(
    source: Union[str, ast.SourceFile, AnalyzedDesign],
    entity_name: Optional[str] = None,
    max_solvers: int = 16,
) -> List[Causalization]:
    """All DAE causalizations ("solvers") of a design's simultaneous set.

    Exposes the paper's claim that the synthesis tool considers all VHIF
    topologies that solve a DAE set; the mapper and the ablation bench
    iterate over these.
    """
    if isinstance(source, str):
        analyzed = analyze(parse_source(source), entity_name=entity_name)
    elif isinstance(source, ast.SourceFile):
        analyzed = analyze(source, entity_name=entity_name)
    else:
        analyzed = source
    compiler = DesignCompiler(analyzed, CompilerOptions(max_solvers=max_solvers))
    simples, conditionals, procedurals, _ = compiler._classify()
    if not simples:
        return []
    analog = compiler._analog_names()
    claimed = set(compiler._input_names())
    for procedural in procedurals:
        claimed |= set(compiler._procedural_outputs(procedural))
    for conditional in conditionals:
        claimed |= set(
            conditional_unknowns(conditional, sorted(analog - claimed))
        )
    unknowns = sorted(analog - claimed)
    dae = DaeCompiler(
        simples,
        unknowns,
        initial_values=compiler._initial_values(),
        max_solvers=max_solvers,
    )
    return dae.enumerate_causalizations()
