"""Compilation of VASS expressions into signal-flow blocks.

The expression compiler lowers an analog-valued expression tree onto
:class:`~repro.vhif.sfg.SignalFlowGraph` blocks, performing:

* constant folding (static sub-expressions become CONST blocks);
* strength selection (multiplication by a static value becomes a SCALE
  block — an amplifier — instead of a MUL block — a multiplier circuit);
* n-ary flattening of additions (so weighted sums map onto a single
  summing amplifier later);
* common sub-expression elimination keyed on the canonical form of the
  expression *under the current name bindings*, so equal sub-trees share
  one block (the compile-time face of the paper's hardware sharing);
* lowering of the VHDL-AMS attributes: ``'dot`` → differentiator,
  ``'integ`` → integrator, ``'above`` → comparator.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.semantics import Scope, SemanticError, eval_static
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph


class ExprCompiler:
    """Compiles expressions into blocks of one signal-flow graph.

    ``bindings`` maps VASS names to the blocks currently producing their
    values.  Procedural compilation rebinds names as assignments execute;
    the CSE cache keys include block identities, so stale cache hits
    cannot occur.
    """

    def __init__(self, sfg: SignalFlowGraph, scope: Optional[Scope] = None):
        self.sfg = sfg
        self.scope = scope
        self.bindings: Dict[str, Block] = {}
        #: names currently bound to compile-time numeric values (e.g.
        #: unrolled for-loop variables); substituted before compilation.
        self.static_bindings: Dict[str, float] = {}
        self._cache: Dict[str, Block] = {}
        self._const_cache: Dict[float, Block] = {}

    # -- bindings -------------------------------------------------------------

    def bind(self, name: str, block: Block) -> None:
        self.bindings[name] = block

    def lookup(self, name: str) -> Optional[Block]:
        return self.bindings.get(name)

    # -- const / cache helpers ---------------------------------------------------

    def const(self, value: float) -> Block:
        """A CONST block for ``value`` (deduplicated)."""
        value = float(value)
        block = self._const_cache.get(value)
        if block is None or block not in self.sfg:
            block = self.sfg.add(BlockKind.CONST, value=value)
            self._const_cache[value] = block
        return block

    def _key(self, expr: ast.Expression) -> str:
        """Canonical cache key resolving names to their bound blocks."""
        if isinstance(expr, ast.Name):
            bound = self.bindings.get(expr.identifier)
            if bound is not None:
                return f"@{bound.block_id}"
            return expr.identifier
        if isinstance(expr, ast.RealLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.IntegerLiteral):
            return repr(float(expr.value))
        if isinstance(expr, ast.UnaryOp):
            return f"({expr.operator} {self._key(expr.operand)})"
        if isinstance(expr, ast.BinaryOp):
            left, right = self._key(expr.left), self._key(expr.right)
            if expr.operator in ("+", "*") and right < left:
                left, right = right, left
            return f"({left} {expr.operator} {right})"
        if isinstance(expr, ast.FunctionCall):
            args = ",".join(self._key(a) for a in expr.arguments)
            return f"{expr.name}({args})"
        if isinstance(expr, ast.AttributeExpr):
            args = ",".join(self._key(a) for a in expr.arguments)
            return f"{self._key(expr.prefix)}'{expr.attribute}({args})"
        return repr(expr)

    def _static_value(self, expr: ast.Expression) -> Optional[float]:
        """Evaluate ``expr`` statically if possible, else None.

        A name bound to a block is *not* static even if it also denotes
        a constant in the scope (the binding wins).
        """
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.Name) and node.identifier in self.bindings:
                return None
            if isinstance(node, ast.AttributeExpr):
                return None
        try:
            value = eval_static(expr, self.scope)
        except SemanticError:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    # -- main entry -------------------------------------------------------------

    def compile(self, expr: ast.Expression) -> Block:
        """Return a block whose output carries the value of ``expr``."""
        if self.static_bindings:
            from repro.compiler import symbolic

            for name, value in self.static_bindings.items():
                expr = symbolic.substitute(
                    expr, name, ast.RealLiteral(value=value)
                )
        static = self._static_value(expr)
        if static is not None:
            return self.const(static)
        key = self._key(expr)
        cached = self._cache.get(key)
        if cached is not None and cached in self.sfg:
            return cached
        block = self._compile_uncached(expr)
        self._cache[key] = block
        return block

    # -- structural compilation ---------------------------------------------------

    def _compile_uncached(self, expr: ast.Expression) -> Block:
        if isinstance(expr, ast.Name):
            bound = self.bindings.get(expr.identifier)
            if bound is None:
                raise CompileError(
                    f"no value available for {expr.identifier!r} "
                    "(undriven quantity?)",
                    expr.location,
                )
            return bound
        if isinstance(expr, (ast.RealLiteral, ast.IntegerLiteral)):
            value = (
                expr.value
                if isinstance(expr, ast.RealLiteral)
                else float(expr.value)
            )
            return self.const(float(value))
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._compile_call(expr)
        if isinstance(expr, ast.AttributeExpr):
            return self._compile_attribute(expr)
        raise CompileError(
            f"cannot compile {type(expr).__name__} to signal flow",
            getattr(expr, "location", None) or expr.location,
        )

    def _compile_unary(self, expr: ast.UnaryOp) -> Block:
        operand = self.compile(expr.operand)
        if expr.operator == "-":
            block = self.sfg.add(BlockKind.NEG)
            self.sfg.connect(operand, block)
            return block
        if expr.operator == "+":
            return operand
        if expr.operator == "abs":
            block = self.sfg.add(BlockKind.ABS)
            self.sfg.connect(operand, block)
            return block
        raise CompileError(
            f"operator {expr.operator!r} has no signal-flow realization",
            expr.location,
        )

    def _collect_add_terms(
        self, expr: ast.Expression
    ) -> List[Tuple[ast.Expression, float]]:
        """Flatten nested +/- into (term, sign) pairs."""
        terms: List[Tuple[ast.Expression, float]] = []

        def walk(node: ast.Expression, sign: float) -> None:
            if isinstance(node, ast.BinaryOp) and node.operator == "+":
                walk(node.left, sign)
                walk(node.right, sign)
            elif isinstance(node, ast.BinaryOp) and node.operator == "-":
                walk(node.left, sign)
                walk(node.right, -sign)
            elif isinstance(node, ast.UnaryOp) and node.operator == "-":
                walk(node.operand, -sign)
            else:
                terms.append((node, sign))

        walk(expr, 1.0)
        return terms

    def _compile_binary(self, expr: ast.BinaryOp) -> Block:
        op = expr.operator
        if op in ("+", "-"):
            return self._compile_sum(expr)
        if op == "*":
            return self._compile_product(expr)
        if op == "/":
            return self._compile_division(expr)
        if op == "**":
            return self._compile_power(expr)
        if op in ("mod", "rem"):
            raise CompileError(
                f"operator {op!r} has no continuous-time realization",
                expr.location,
            )
        raise CompileError(
            f"operator {op!r} is not an analog operation", expr.location
        )

    def _compile_sum(self, expr: ast.BinaryOp) -> Block:
        terms = self._collect_add_terms(expr)
        positive = [t for t, s in terms if s > 0]
        negative = [t for t, s in terms if s < 0]
        if positive and negative and len(terms) == 2:
            sub = self.sfg.add(BlockKind.SUB)
            self.sfg.connect(self.compile(positive[0]), sub, port=0)
            self.sfg.connect(self.compile(negative[0]), sub, port=1)
            return sub
        compiled: List[Block] = []
        for term, sign in terms:
            block = self.compile(term)
            if sign < 0:
                negated = self.sfg.add(BlockKind.NEG)
                self.sfg.connect(block, negated)
                block = negated
            compiled.append(block)
        if len(compiled) == 1:
            return compiled[0]
        adder = self.sfg.add(BlockKind.ADD, n_inputs=len(compiled))
        for port, block in enumerate(compiled):
            self.sfg.connect(block, adder, port=port)
        return adder

    def _compile_product(self, expr: ast.BinaryOp) -> Block:
        left_static = self._static_value(expr.left)
        right_static = self._static_value(expr.right)
        if left_static is not None or right_static is not None:
            gain = left_static if left_static is not None else right_static
            signal = expr.right if left_static is not None else expr.left
            operand = self.compile(signal)
            if gain == 1.0:
                return operand
            if gain == -1.0:
                block = self.sfg.add(BlockKind.NEG)
                self.sfg.connect(operand, block)
                return block
            block = self.sfg.add(BlockKind.SCALE, gain=float(gain))
            self.sfg.connect(operand, block)
            return block
        mul = self.sfg.add(BlockKind.MUL)
        self.sfg.connect(self.compile(expr.left), mul, port=0)
        self.sfg.connect(self.compile(expr.right), mul, port=1)
        return mul

    def _compile_division(self, expr: ast.BinaryOp) -> Block:
        right_static = self._static_value(expr.right)
        if right_static is not None:
            if right_static == 0.0:
                raise CompileError("division by constant zero", expr.location)
            operand = self.compile(expr.left)
            gain = 1.0 / right_static
            if gain == 1.0:
                return operand
            block = self.sfg.add(BlockKind.SCALE, gain=gain)
            self.sfg.connect(operand, block)
            return block
        div = self.sfg.add(BlockKind.DIV)
        self.sfg.connect(self.compile(expr.left), div, port=0)
        self.sfg.connect(self.compile(expr.right), div, port=1)
        return div

    def _compile_power(self, expr: ast.BinaryOp) -> Block:
        exponent = self._static_value(expr.right)
        if exponent is None:
            raise CompileError(
                "exponent of ** must be static in VASS", expr.location
            )
        base = self.compile(expr.left)
        if exponent == 1.0:
            return base
        if float(exponent).is_integer() and 2 <= exponent <= 4:
            # Small integer powers become multiplier chains.
            result = base
            for _ in range(int(exponent) - 1):
                mul = self.sfg.add(BlockKind.MUL)
                self.sfg.connect(result, mul, port=0)
                self.sfg.connect(base, mul, port=1)
                result = mul
            return result
        # General powers through the log/antilog pair: x**c = exp(c*log(x)).
        log_block = self.sfg.add(BlockKind.LOG)
        self.sfg.connect(base, log_block)
        scale = self.sfg.add(BlockKind.SCALE, gain=float(exponent))
        self.sfg.connect(log_block, scale)
        exp_block = self.sfg.add(BlockKind.EXP)
        self.sfg.connect(scale, exp_block)
        return exp_block

    def _compile_call(self, expr: ast.FunctionCall) -> Block:
        if expr.name in ("log", "ln"):
            block = self.sfg.add(BlockKind.LOG)
            self.sfg.connect(self.compile(expr.arguments[0]), block)
            return block
        if expr.name == "exp":
            block = self.sfg.add(BlockKind.EXP)
            self.sfg.connect(self.compile(expr.arguments[0]), block)
            return block
        if expr.name == "sqrt":
            # sqrt(x) = exp(0.5 * log(x))
            log_block = self.sfg.add(BlockKind.LOG)
            self.sfg.connect(self.compile(expr.arguments[0]), log_block)
            scale = self.sfg.add(BlockKind.SCALE, gain=0.5)
            self.sfg.connect(log_block, scale)
            exp_block = self.sfg.add(BlockKind.EXP)
            self.sfg.connect(scale, exp_block)
            return exp_block
        if expr.name == "limit":
            if len(expr.arguments) != 3:
                raise CompileError("limit(x, low, high) takes 3 arguments",
                                   expr.location)
            low = self._static_value(expr.arguments[1])
            high = self._static_value(expr.arguments[2])
            if low is None or high is None:
                raise CompileError("limit bounds must be static", expr.location)
            block = self.sfg.add(BlockKind.LIMIT, low=low, high=high)
            self.sfg.connect(self.compile(expr.arguments[0]), block)
            return block
        raise CompileError(
            f"function {expr.name!r} has no signal-flow realization",
            expr.location,
        )

    def _compile_attribute(self, expr: ast.AttributeExpr) -> Block:
        attribute = expr.attribute
        if attribute == "dot":
            block = self.sfg.add(BlockKind.DIFFERENTIATE)
            self.sfg.connect(self.compile(expr.prefix), block)
            return block
        if attribute == "integ":
            block = self.sfg.add(BlockKind.INTEGRATE, gain=1.0, initial=0.0)
            self.sfg.connect(self.compile(expr.prefix), block)
            return block
        if attribute == "above":
            threshold = self._static_value(expr.arguments[0])
            if threshold is None:
                raise CompileError(
                    "'above threshold must be static", expr.location
                )
            block = self.sfg.add(BlockKind.COMPARATOR, threshold=threshold)
            self.sfg.connect(self.compile(expr.prefix), block)
            return block
        if attribute == "ltf":
            return self._compile_ltf(expr)
        raise CompileError(
            f"attribute '{attribute} has no signal-flow realization",
            expr.location,
        )

    def _coefficient_vector(self, expr: ast.Expression) -> List[float]:
        """Static coefficient list of an 'ltf argument (ascending powers)."""
        if not isinstance(expr, ast.Aggregate):
            value = self._static_value(expr)
            if value is None:
                raise CompileError(
                    "'ltf coefficients must be a static aggregate",
                    expr.location,
                )
            return [value]
        values: List[float] = []
        for element in expr.elements:
            value = self._static_value(element)
            if value is None:
                raise CompileError(
                    "'ltf coefficients must be static", element.location
                )
            values.append(value)
        return values

    def _compile_ltf(self, expr: ast.AttributeExpr) -> Block:
        """Lower ``u'ltf(num, den)`` to an integrator chain.

        Coefficients are in ascending powers of s.  The realization is
        the phase-variable (controllable canonical) analog-computer
        form: an n-integrator chain whose head computes::

            w^(n) = (u - a_{n-1} w^(n-1) - ... - a_0 w) / a_n

        and whose output taps realize ``y = sum b_k w^(k)`` (plus a
        direct feed-through term when the function is only proper).
        """
        if len(expr.arguments) != 2:
            raise CompileError("'ltf takes (num, den)", expr.location)
        num = self._coefficient_vector(expr.arguments[0])
        den = self._coefficient_vector(expr.arguments[1])
        while len(den) > 1 and den[-1] == 0.0:
            den.pop()
        order = len(den) - 1
        if order < 1:
            raise CompileError(
                "'ltf denominator must have order >= 1", expr.location
            )
        if den[-1] == 0.0:
            raise CompileError(
                "'ltf leading denominator coefficient is zero", expr.location
            )
        if len(num) > len(den):
            raise CompileError(
                "'ltf transfer function must be proper "
                "(len(num) <= len(den))",
                expr.location,
            )
        an = den[-1]
        direct = 0.0
        num = list(num) + [0.0] * (len(den) - len(num))
        if num[-1] != 0.0:
            # Proper but not strictly proper: split off the direct term.
            direct = num[-1] / an
            num = [b - direct * a for b, a in zip(num, den)]
        num = num[:-1]  # strictly-proper numerator, degree < order

        source = self.compile(expr.prefix)

        # Integrator chain: taps[k] carries w^(k); taps[order] is the
        # head node (the adder output), taps[0] is w.
        integrators: List[Block] = []
        for k in range(order):
            integrators.append(
                self.sfg.add(
                    BlockKind.INTEGRATE,
                    name=f"ltf_x{k}_{self.sfg.name}_{len(self.sfg.blocks)}",
                    gain=1.0,
                    initial=0.0,
                )
            )
        # Chain: integrator[k] integrates taps[k+1] -> taps[k].
        for k in range(order - 1):
            self.sfg.connect(integrators[k + 1], integrators[k], port=0)
        taps: List[Block] = list(integrators)  # taps[k] = w^(k)

        # Head adder: u/an - sum(a_k/an * w^(k)).
        feedback_terms: List[Block] = []
        for k in range(order):
            coefficient = -den[k] / an
            if coefficient == 0.0:
                continue
            scale = self.sfg.add(BlockKind.SCALE, gain=coefficient)
            self.sfg.connect(taps[k], scale)
            feedback_terms.append(scale)
        if an != 1.0:
            driven = self.sfg.add(BlockKind.SCALE, gain=1.0 / an)
            self.sfg.connect(source, driven)
        else:
            driven = source
        if feedback_terms:
            head = self.sfg.add(
                BlockKind.ADD, n_inputs=1 + len(feedback_terms)
            )
            self.sfg.connect(driven, head, port=0)
            for port, term in enumerate(feedback_terms, start=1):
                self.sfg.connect(term, head, port=port)
        else:
            head = driven
        self.sfg.connect(head, integrators[order - 1], port=0)

        # Output combination: y = sum b_k w^(k) (+ direct * u).  The
        # 1/a_n normalization already lives in the head adder, so the
        # numerator coefficients apply unscaled.
        output_terms: List[Block] = []
        for k, coefficient in enumerate(num):
            if coefficient == 0.0:
                continue
            if coefficient == 1.0:
                output_terms.append(taps[k])
            else:
                scale = self.sfg.add(BlockKind.SCALE, gain=coefficient)
                self.sfg.connect(taps[k], scale)
                output_terms.append(scale)
        if direct != 0.0:
            scale = self.sfg.add(BlockKind.SCALE, gain=direct)
            self.sfg.connect(source, scale)
            output_terms.append(scale)
        if not output_terms:
            raise CompileError("'ltf numerator is zero", expr.location)
        if len(output_terms) == 1:
            return output_terms[0]
        combiner = self.sfg.add(BlockKind.ADD, n_inputs=len(output_terms))
        for port, term in enumerate(output_terms):
            self.sfg.connect(term, combiner, port=port)
        return combiner

    # -- boolean conditions ------------------------------------------------------

    def compile_condition(self, expr: ast.Expression) -> Block:
        """Compile a boolean condition over quantities to a comparator.

        Supported forms: relational comparisons of analog expressions
        (``a > b`` etc.), ``q'above(th)``, and negations thereof.  The
        resulting block outputs a boolean suitable for a control input.
        """
        if isinstance(expr, ast.UnaryOp) and expr.operator == "not":
            inner = self.compile_condition(expr.operand)
            # Invert by comparing the (0/1) output against 0.5 downward:
            # a NEG + comparator at -0.5 realizes the complement.
            neg = self.sfg.add(BlockKind.NEG)
            self.sfg.connect(inner, neg)
            cmp = self.sfg.add(BlockKind.COMPARATOR, threshold=-0.5)
            self.sfg.connect(neg, cmp)
            return cmp
        if isinstance(expr, ast.AttributeExpr) and expr.attribute == "above":
            return self._compile_attribute(expr)
        if isinstance(expr, ast.BinaryOp) and expr.operator in (
            ">",
            ">=",
            "<",
            "<=",
        ):
            left, right = expr.left, expr.right
            flip = expr.operator in ("<", "<=")
            diff = ast.BinaryOp(operator="-", left=left, right=right)
            operand = self.compile(diff)
            if flip:
                negated = self.sfg.add(BlockKind.NEG)
                self.sfg.connect(operand, negated)
                operand = negated
            cmp = self.sfg.add(BlockKind.COMPARATOR, threshold=0.0)
            self.sfg.connect(operand, cmp)
            return cmp
        raise CompileError(
            "condition cannot be realized as an analog comparator",
            getattr(expr, "location", None) or expr.location,
        )
