"""Compilation of simultaneous statements (DAE sets) into signal flow.

"Except for cases where input and output signals are explicitly known or
can be inferred, simple simultaneous statements can not be mapped into a
unique signal-flow structure.  Each structure represents a distinct
'solver' for the DAE set.  Our synthesis tool considers all VHIF
topologies that 'solve' a DAE set" (paper Section 4).

The implementation follows classical analog-computer causalization:

1. every ``x'dot`` occurrence is replaced by a fresh algebraic name and
   an integrator ``x = (1/s) x_dot`` is planned — *integral causality*
   makes states known and their derivatives unknown;
2. equations are matched to the remaining unknowns with a bipartite
   matching; **every** perfect matching is a candidate causalization
   (solver), enumerated by backtracking;
3. each matched equation is solved symbolically for its unknown
   (:func:`repro.compiler.symbolic.solve_for`);
4. solved expressions are ordered by data dependence; dependence cycles
   among purely algebraic unknowns disqualify a causalization (the
   hardware would contain a delay-free loop);
5. the chosen causalization is emitted as blocks: integrators for the
   states, expression cones for the algebraic unknowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics import CompileError
from repro.instrument import active_explog
from repro.vass import ast_nodes as ast
from repro.compiler import symbolic
from repro.compiler.expressions import ExprCompiler
from repro.vhif.sfg import Block, BlockKind

DOT_SUFFIX = "__dot"


def dot_name(quantity: str) -> str:
    """The synthetic algebraic name standing for ``quantity'dot``."""
    return quantity + DOT_SUFFIX


def strip_dots(expr: ast.Expression) -> ast.Expression:
    """Replace ``q'dot`` attribute nodes with references to dot names."""
    if isinstance(expr, ast.AttributeExpr) and expr.attribute == "dot":
        prefix = strip_dots(expr.prefix)
        if isinstance(prefix, ast.Name):
            return ast.Name(identifier=dot_name(prefix.identifier))
        raise CompileError("'dot prefix must be a quantity name", expr.location)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(operator=expr.operator, operand=strip_dots(expr.operand))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            operator=expr.operator,
            left=strip_dots(expr.left),
            right=strip_dots(expr.right),
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            name=expr.name, arguments=[strip_dots(a) for a in expr.arguments]
        )
    if isinstance(expr, ast.AttributeExpr):
        return ast.AttributeExpr(
            prefix=strip_dots(expr.prefix),
            attribute=expr.attribute,
            arguments=[strip_dots(a) for a in expr.arguments],
        )
    return expr


@dataclass
class Equation:
    """One preprocessed equation of the DAE set."""

    lhs: ast.Expression
    rhs: ast.Expression
    index: int = 0

    def names(self) -> Set[str]:
        return set(ast.referenced_names(self.lhs)) | set(
            ast.referenced_names(self.rhs)
        )

    def __str__(self) -> str:
        return f"{self.lhs} == {self.rhs}"


@dataclass
class Causalization:
    """One solver: an assignment of equations to unknowns, solved."""

    #: unknown -> solved explicit expression (free of the unknown)
    solutions: Dict[str, ast.Expression]
    #: states realized as integrators: state name -> initial value
    states: Dict[str, float]
    #: evaluation order of the algebraic unknowns
    order: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"  {u} := {e}" for u, e in self.solutions.items()]
        if self.states:
            lines.append("  states: " + ", ".join(sorted(self.states)))
        return "\n".join(lines)


class DaeCompiler:
    """Causalizes a DAE set and emits the chosen solver's blocks."""

    def __init__(
        self,
        equations: Sequence[ast.SimpleSimultaneous],
        unknowns: Sequence[str],
        initial_values: Optional[Dict[str, float]] = None,
        max_solvers: int = 16,
    ):
        self.raw_equations = list(equations)
        self.requested_unknowns = list(unknowns)
        self.initial_values = dict(initial_values or {})
        self.max_solvers = max_solvers

        self.equations: List[Equation] = []
        self.states: Dict[str, float] = {}
        self.algebraic_unknowns: List[str] = []
        self._preprocess()

    # -- preprocessing -------------------------------------------------------

    def _preprocess(self) -> None:
        """Strip 'dot attributes and apply integral causality."""
        dotted: Set[str] = set()
        for index, eq in enumerate(self.raw_equations):
            lhs = strip_dots(eq.lhs)
            rhs = strip_dots(eq.rhs)
            equation = Equation(lhs=lhs, rhs=rhs, index=index)
            for name in equation.names():
                if name.endswith(DOT_SUFFIX):
                    dotted.add(name[: -len(DOT_SUFFIX)])
            self.equations.append(equation)

        unknown_set = set(self.requested_unknowns)
        for state in sorted(dotted):
            if state in unknown_set:
                # Integral causality: the state becomes known (integrator
                # output), its derivative becomes the unknown.
                self.states[state] = self.initial_values.get(state, 0.0)
                unknown_set.discard(state)
                unknown_set.add(dot_name(state))
            # Dotted knowns (inputs) stay: 'dot of a known compiles to a
            # differentiator block inside the expression compiler, so we
            # re-materialize the attribute for them.
        self.algebraic_unknowns = sorted(unknown_set)
        if len(self.equations) < len(self.algebraic_unknowns):
            raise CompileError(
                f"DAE set is underdetermined: {len(self.equations)} equations "
                f"for unknowns {self.algebraic_unknowns}"
            )

    def _restore_known_dots(self, expr: ast.Expression) -> ast.Expression:
        """Turn dot-names of *known* quantities back into 'dot attributes."""
        for name in set(ast.referenced_names(expr)):
            if not name.endswith(DOT_SUFFIX):
                continue
            base = name[: -len(DOT_SUFFIX)]
            if base in self.states or name in self.algebraic_unknowns:
                continue
            expr = symbolic.substitute(
                expr,
                name,
                ast.AttributeExpr(
                    prefix=ast.Name(identifier=base), attribute="dot"
                ),
            )
        return expr

    # -- matching enumeration ------------------------------------------------------

    def _candidate_equations(self, unknown: str) -> List[int]:
        return [
            eq.index for eq in self.equations if unknown in eq.names()
        ]

    def enumerate_causalizations(self) -> List[Causalization]:
        """All valid solvers of the DAE set, up to ``max_solvers``.

        A valid solver pairs every unknown with a distinct equation that
        can be solved for it and whose solved expressions contain no
        delay-free dependence cycle.
        """
        unknowns = self.algebraic_unknowns
        results: List[Causalization] = []
        used: Set[int] = set()
        assignment: Dict[str, int] = {}

        # Order unknowns by scarcity of candidate equations (fail fast).
        ordered = sorted(unknowns, key=lambda u: len(self._candidate_equations(u)))

        def backtrack(position: int) -> None:
            if len(results) >= self.max_solvers:
                return
            if position == len(ordered):
                causalization = self._try_solve(assignment)
                if causalization is not None:
                    results.append(causalization)
                return
            unknown = ordered[position]
            for eq_index in self._candidate_equations(unknown):
                if eq_index in used:
                    continue
                used.add(eq_index)
                assignment[unknown] = eq_index
                backtrack(position + 1)
                used.discard(eq_index)
                del assignment[unknown]

        backtrack(0)
        if not unknowns and self.equations:
            raise CompileError(
                "DAE set has equations but no unknowns to solve for"
            )
        return results

    def _try_solve(self, assignment: Dict[str, int]) -> Optional[Causalization]:
        solutions: Dict[str, ast.Expression] = {}
        for unknown, eq_index in assignment.items():
            equation = self.equations[eq_index]
            try:
                solved = symbolic.solve_for(equation.lhs, equation.rhs, unknown)
            except CompileError:
                return None
            solutions[unknown] = self._restore_known_dots(solved)
        order = self._topological_order(solutions)
        if order is None:
            return None
        return Causalization(
            solutions=solutions, states=dict(self.states), order=order
        )

    def _topological_order(
        self, solutions: Dict[str, ast.Expression]
    ) -> Optional[List[str]]:
        """Order algebraic unknowns by dependence; None when cyclic."""
        unknown_set = set(solutions)
        dependencies: Dict[str, Set[str]] = {}
        for unknown, expr in solutions.items():
            dependencies[unknown] = {
                n for n in ast.referenced_names(expr) if n in unknown_set
            }
        order: List[str] = []
        remaining = dict(dependencies)
        while remaining:
            ready = sorted(u for u, deps in remaining.items() if not deps)
            if not ready:
                return None  # delay-free algebraic loop
            for unknown in ready:
                order.append(unknown)
                del remaining[unknown]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    # -- emission -----------------------------------------------------------------

    def emit(
        self,
        compiler: ExprCompiler,
        causalization: Optional[Causalization] = None,
        chosen_index: Optional[int] = None,
        n_alternatives: Optional[int] = None,
    ) -> Dict[str, Block]:
        """Emit the solver's blocks into ``compiler``'s graph.

        All names that the equations *read* (inputs, quantities computed
        by other constructs) must already be bound in ``compiler``.
        Returns the new bindings: one block per unknown and per state.
        ``chosen_index``/``n_alternatives`` document which enumerated
        causalization this is for the exploration log.
        """
        if causalization is None:
            candidates = self.enumerate_causalizations()
            if not candidates:
                raise CompileError(
                    "no causalization solves the DAE set "
                    + "; ".join(str(eq) for eq in self.equations)
                )
            causalization = candidates[0]
            chosen_index = 0
            n_alternatives = len(candidates)
        explog = active_explog()
        if explog is not None:
            explog.emit(
                "causalization",
                sfg=compiler.sfg.name,
                chosen_index=chosen_index,
                n_alternatives=n_alternatives,
                states=sorted(causalization.states),
                order=list(causalization.order),
                solutions={
                    unknown: str(expr)
                    for unknown, expr in causalization.solutions.items()
                },
            )

        produced: Dict[str, Block] = {}
        # 1. Integrators first: their outputs are the known states, and
        #    they may appear inside any solved expression (feedback).
        for state, initial in sorted(causalization.states.items()):
            integrator = compiler.sfg.add(
                BlockKind.INTEGRATE, name=state, gain=1.0, initial=initial
            )
            compiler.bind(state, integrator)
            produced[state] = integrator
        # 2. Algebraic unknowns in dependence order.
        for unknown in causalization.order:
            block = compiler.compile(causalization.solutions[unknown])
            if not unknown.endswith(DOT_SUFFIX) and block.name.startswith(
                block.kind.value
            ):
                # Rename only auto-named blocks: an aliased input or an
                # already-labeled block keeps its identity.
                block.name = f"q_{unknown}"
            compiler.bind(unknown, block)
            produced[unknown] = block
        # 3. Close integrator feedback: connect x__dot into x's integrator.
        for state in causalization.states:
            derivative = produced.get(dot_name(state))
            if derivative is None:
                raise CompileError(
                    f"no equation determines {state}'dot"
                )
            compiler.sfg.connect(derivative, produced[state], port=0)
        return produced
